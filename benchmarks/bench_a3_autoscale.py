"""A6 — dynamic multiprogramming over pooled memory (Sec 3.2).

"How would an engine operate under a dynamically changing
multiprogramming level?" — a bursty query stream served by:

* a fixed fleet provisioned for the peak (zero waits, maximum cost);
* a warm autoscaler (CXL-pooled buffer: spawned engines are at full
  speed in ~200 us);
* a cold autoscaler (local buffer pools: spawned engines ramp while
  faulting their working set in).

Warm elasticity buys most of the fixed fleet's latency at a fraction
of its engine-time; cold elasticity is strictly worse than warm on
both axes — the pooled buffer is what makes elasticity usable.
"""

from repro.core.autoscale import Autoscaler, bursty_jobs
from repro.metrics.report import Table
from repro.units import fmt_ns

MAX_WORKERS = 16


def run_experiment(show=False):
    results = {}
    for mode, kwargs in (
        ("fixed", dict(max_workers=MAX_WORKERS)),
        ("warm", dict(min_workers=2, max_workers=MAX_WORKERS)),
        ("cold", dict(min_workers=2, max_workers=MAX_WORKERS)),
    ):
        scaler = Autoscaler(mode=mode, **kwargs)
        results[mode] = scaler.run(bursty_jobs())

    table = Table("A6: autoscaling under a bursty load (Sec 3.2)", [
        "fleet", "p95 wait", "mean wait", "engine-seconds",
        "spawns", "peak engines",
    ])
    for mode, report in results.items():
        table.add_row(
            mode,
            fmt_ns(report.p95_wait_ns),
            fmt_ns(report.mean_wait_ns),
            f"{report.engine_seconds:.4f}",
            report.spawns,
            report.peak_workers,
        )
    if show:
        table.show()
    return results


def test_a6_autoscale(benchmark):
    benchmark(run_experiment)
    results = run_experiment(show=True)
    fixed, warm, cold = (results[m] for m in ("fixed", "warm", "cold"))
    assert warm.engine_seconds < 0.6 * fixed.engine_seconds
    assert warm.p95_wait_ns < cold.p95_wait_ns
    assert warm.engine_seconds <= cold.engine_seconds
