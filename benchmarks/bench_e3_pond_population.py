"""E3 — Pond's workload population under CXL latency (Sec 2.4, [31]).

Paper values reproduced:
* of 158 cloud workloads run entirely from CXL-latency memory, ~26%
  slow down by less than 1% and another ~17% by less than 5%;
* TPC-H overheads are highly query-dependent, mostly below ~20-25%
  under a partial-CXL (Pond-like) placement.
"""

from repro.core import ScaleUpEngine, StaticPolicy
from repro.metrics.report import Table
from repro.query import tpch
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile
from repro.workloads.cloudmix import generate_population


def _engine(pages, cxl_only):
    if cxl_only:
        return ScaleUpEngine.build(
            dram_pages=1, cxl_pages=pages,
            placement=StaticPolicy(lambda _p: 1), with_storage=False,
        )
    return ScaleUpEngine.build(dram_pages=pages, with_storage=False)


def run_population(count=158, num_ops=1_500):
    """Run every workload all-DRAM and all-CXL; return slowdowns."""
    slowdowns = []
    for workload in generate_population(count=count, num_ops=num_ops):
        pages = workload.working_set_pages + 8
        dram = _engine(pages, cxl_only=False).run(workload.trace())
        cxl = _engine(pages, cxl_only=True).run(workload.trace())
        slowdowns.append(cxl.total_ns / dram.total_ns - 1.0)
    return slowdowns


def run_tpch(lineitem_rows=12_000, cxl_fraction=0.4):
    """TPC-H overhead with a Pond-like placement: a fixed fraction of
    pages interleaved onto CXL (Pond stripes memory in hardware, the
    engine does not get to choose)."""
    cxl_pct = int(cxl_fraction * 100)

    def striped(page_id: int) -> int:
        return 1 if (page_id * 2_654_435_761) % 100 < cxl_pct else 0

    overheads = {}
    for name, query in tpch.QUERIES.items():
        results = {}
        for mode in ("dram", "mixed"):
            pf = PageFile(StorageDevice())
            data = tpch.generate(pf, lineitem_rows=lineitem_rows)
            pages = data.total_pages + 8
            if mode == "dram":
                engine = ScaleUpEngine.build(dram_pages=pages,
                                             backing=pf)
            else:
                engine = ScaleUpEngine.build(
                    dram_pages=pages, cxl_pages=pages, backing=pf,
                    placement=StaticPolicy(striped),
                )
            query(engine, data)  # warm
            start = engine.pool.clock.now
            query(engine, data)
            results[mode] = engine.pool.clock.now - start
        overheads[name] = results["mixed"] / results["dram"] - 1.0
    return overheads


def run_experiment(show=False):
    slowdowns = run_population()
    n = len(slowdowns)
    under_1 = sum(1 for s in slowdowns if s < 0.01) / n
    under_5 = sum(1 for s in slowdowns if 0.01 <= s < 0.05) / n
    over_25 = sum(1 for s in slowdowns if s >= 0.25) / n

    overheads = run_tpch()

    table = Table("E3: Pond population + TPC-H (Sec 2.4)", [
        "metric", "paper", "measured",
    ])
    table.add_row("population size", "158", f"{n}")
    table.add_row("<1% slowdown", "~26%", f"{under_1:.0%}")
    table.add_row("1-5% slowdown", "+~17%", f"{under_5:.0%}")
    table.add_row(">=25% slowdown", "(tail exists)", f"{over_25:.0%}")
    for name in sorted(overheads):
        table.add_row(f"TPC-H {name} overhead",
                      "query-dependent, mostly <20%",
                      f"{overheads[name]:+.1%}")
    if show:
        table.show()
    return under_1, under_5, overheads


def test_e3_pond_population(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    under_1, under_5, overheads = run_experiment(show=True)
    assert abs(under_1 - 0.26) < 0.08
    assert abs(under_5 - 0.17) < 0.08
    below_20 = sum(1 for o in overheads.values() if o < 0.20)
    assert below_20 >= len(overheads) / 2  # "mostly below 20%"
