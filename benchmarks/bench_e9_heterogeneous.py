"""E9 — Composable heterogeneous racks (paper Sec 5).

Shapes reproduced:
* pooling accelerators behind the fabric (any task -> best free
  device) beats fixed per-server devices on a mixed DB+ML operator
  stream, in both mean completion time and makespan;
* the win comes from device-task matching: GPU utilization rises and
  CPU fallback work falls under pooling;
* ML operators run inside the data engine instead of exporting data
  (the Sec 5 motivation).
"""

from repro.core.hetero import (
    ComposableRack,
    FixedServerRack,
    mixed_workload,
)
from repro.metrics.report import Table, fmt_ratio
from repro.units import fmt_ns

TASKS = 400


def run_experiment(show=False):
    tasks = mixed_workload(num_tasks=TASKS, ml_fraction=0.3,
                           compress_fraction=0.2)
    pooled_rack = ComposableRack(gpus=4, fpgas=4, dpus=4, cpus=8)
    pooled = pooled_rack.schedule(list(tasks))

    fixed_rack = FixedServerRack(num_servers=8, gpus_every=2,
                                 fpgas_every=2)
    fixed = fixed_rack.schedule(
        mixed_workload(num_tasks=TASKS, ml_fraction=0.3,
                       compress_fraction=0.2))

    def gpu_share(report):
        total = sum(report.per_class_busy.values())
        return report.per_class_busy.get("gpu", 0.0) / total if total \
            else 0.0

    table = Table("E9: composable vs fixed heterogeneous rack (Sec 5)", [
        "metric", "fixed servers", "composable pool", "expected",
    ])
    table.add_row("mean task completion",
                  fmt_ns(fixed.mean_completion_ns),
                  fmt_ns(pooled.mean_completion_ns),
                  "pool wins")
    table.add_row("makespan",
                  fmt_ns(fixed.makespan_ns),
                  fmt_ns(pooled.makespan_ns),
                  "pool wins")
    table.add_row("completion advantage", "-",
                  fmt_ratio(fixed.mean_completion_ns
                            / pooled.mean_completion_ns), ">1x")
    table.add_row("GPU share of busy time",
                  f"{gpu_share(fixed):.0%}", f"{gpu_share(pooled):.0%}",
                  "rises under pooling")
    table.add_row("unschedulable tasks",
                  fixed.unschedulable, pooled.unschedulable, "0")
    if show:
        table.show()
    return pooled, fixed


def test_e9_heterogeneous(benchmark):
    benchmark(run_experiment)
    pooled, fixed = run_experiment(show=True)
    assert pooled.mean_completion_ns < fixed.mean_completion_ns
    assert pooled.makespan_ns <= fixed.makespan_ns
    assert pooled.unschedulable == 0
