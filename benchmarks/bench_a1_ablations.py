"""Ablations — the design choices DESIGN.md calls out.

A1  scan resistance: what the engine's scan knowledge is worth;
A2  replacement policy choice under Zipf + scan mixes;
A3  the prefetch model: why streaming workloads tolerate CXL;
A4  switch depth: the latency ladder from Fig 2(a) to Fig 2(c).
"""

from repro import config
from repro.core import DbCostPolicy, ScaleUpEngine
from repro.core.buffer import Tier, TieredBufferPool
from repro.core.replacement import make_policy
from repro.core.temperature import ExactTracker
from repro.metrics.report import Table
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.units import PAGE_SIZE
from repro.workloads import (
    YCSBConfig,
    interleave,
    scan_trace,
    ycsb_trace,
)

OLTP_PAGES = 800


def _htap_trace(seed=3):
    oltp = ycsb_trace(YCSBConfig(
        mix="B", num_pages=OLTP_PAGES, num_ops=12_000,
        theta=0.99, think_ns=0, seed=seed,
    ))
    olap = scan_trace(first_page=OLTP_PAGES, num_pages=4_000, repeats=1)
    return interleave(oltp, olap, weights=[3, 1])


def run_a1_scan_resistance():
    """Scan-aware vs scan-blind engine placement."""
    results = {}
    for name, policy, tracker in (
        ("scan-aware", DbCostPolicy(rebalance_interval=2_000,
                                    scan_admit_slow=True),
         ExactTracker(scan_weight=0.1)),
        ("scan-blind", DbCostPolicy(rebalance_interval=2_000,
                                    scan_admit_slow=False),
         ExactTracker(scan_weight=1.0)),
    ):
        engine = ScaleUpEngine.build(
            dram_pages=1_000, cxl_pages=8_000, placement=policy,
            with_storage=False,
        )
        engine.pool.tracker = tracker
        policy._tracker = tracker
        engine.run(_htap_trace())
        results[name] = sum(
            1 for p in engine.pool.resident_in(0) if p < OLTP_PAGES
        )
    return results


def run_a2_replacement():
    """Hit rate by replacement policy, one tier under real eviction
    pressure: Zipfian point traffic polluted by a one-shot scan."""
    from repro.core.placement import StaticPolicy
    results = {}
    for name in ("lru", "clock", "2q", "lruk"):
        dram = Tier(
            name="dram",
            path=AccessPath(device=MemoryDevice(config.local_ddr5())),
            capacity_pages=1_000, policy=make_policy(name),
        )
        pool = TieredBufferPool(
            tiers=[dram], placement=StaticPolicy(lambda _p: 0),
        )
        engine = ScaleUpEngine(pool, name=name)
        engine.warm_with(ycsb_trace(YCSBConfig(
            mix="C", num_pages=OLTP_PAGES, num_ops=4_000,
            theta=0.99, think_ns=0, seed=8,
        )))
        report = engine.run(_htap_trace())
        results[name] = report.hit_rate
    return results


def run_a3_prefetch():
    """Scan time over CXL with and without latency amortization."""
    engine = ScaleUpEngine.build(dram_pages=1, cxl_pages=4_100,
                                 with_storage=False)
    pool = engine.pool
    for page in range(4_000):
        pool.access(page, is_scan=True)  # populate the CXL tier
    with_prefetch = sum(
        pool.access(page, nbytes=PAGE_SIZE, is_scan=True)
        for page in range(4_000)
    )
    without_prefetch = sum(
        pool.access(page, nbytes=PAGE_SIZE, is_scan=False)
        for page in range(4_000)
    )
    return with_prefetch, without_prefetch


def run_a4_switch_depth():
    """Per-access CXL latency vs fabric depth."""
    rows = []
    for hops, label in ((0, "direct attach (Fig 2a)"),
                        (1, "one switch (Fig 2b)"),
                        (2, "cascaded switches (Fig 2c)")):
        links = tuple(Link(config.cxl_switch_hop()) for _ in range(hops))
        path = AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5()),
            links=(Link(config.cxl_port()), *links),
        )
        rows.append((label, path.read_latency_ns()))
    return rows


def run_experiment(show=False):
    a1 = run_a1_scan_resistance()
    a2 = run_a2_replacement()
    a3_with, a3_without = run_a3_prefetch()
    a4 = run_a4_switch_depth()

    table = Table("A1: scan knowledge (OLTP pages kept in DRAM)", [
        "engine", "OLTP pages in DRAM", f"of {OLTP_PAGES}",
    ])
    for name, kept in a1.items():
        table.add_row(name, kept, f"{kept / OLTP_PAGES:.0%}")

    table2 = Table("A2: replacement policy under scan pressure", [
        "policy", "fast-tier hit rate",
    ])
    for name, rate in sorted(a2.items(), key=lambda kv: -kv[1]):
        table2.add_row(name, f"{rate:.1%}")

    table3 = Table("A3: prefetch model on 4k-page CXL scan", [
        "model", "scan time", "per page",
    ])
    table3.add_row("prefetched (streaming)", f"{a3_with / 1e6:.2f} ms",
                   f"{a3_with / 4_000:.0f} ns")
    table3.add_row("latency-bound (no prefetch)",
                   f"{a3_without / 1e6:.2f} ms",
                   f"{a3_without / 4_000:.0f} ns")

    table4 = Table("A4: fabric depth ladder", [
        "attachment", "load latency",
    ])
    for label, latency in a4:
        table4.add_row(label, f"{latency:.0f} ns")
    if show:
        table.show()
        table2.show()
        table3.show()
        table4.show()
    return a1, a2, (a3_with, a3_without), a4


def test_a_ablations(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    a1, a2, (a3_with, a3_without), a4 = run_experiment(show=True)
    assert a1["scan-aware"] > a1["scan-blind"]
    assert a2["2q"] >= a2["lru"] - 0.02  # 2Q at least matches LRU
    assert a3_without > 1.3 * a3_with
    latencies = [latency for _label, latency in a4]
    assert latencies == sorted(latencies)
    assert latencies[2] - latencies[0] == 140.0  # two switch hops
