"""Shared helpers for the experiment benchmarks.

Every benchmark prints a table of the rows the paper reports next to
what the simulator measures, then hands a representative kernel to
pytest-benchmark. Run with::

    pytest benchmarks/ --benchmark-only -s

(`-s` shows the tables; EXPERIMENTS.md archives one captured run.)
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _spacer():
    """Blank line so tables don't collide with pytest's dots."""
    yield
    print()
