"""A8 — scheduling competing queries on a rack (Sec 3.3).

A shared morsel queue in coherent CXL memory turns the whole rack
into one work-stealing pool: skew that strands static partitions gets
absorbed, at the price of a fabric CAS per morsel. Fair round-robin
over the same queue then clusters query completions without hurting
the makespan.
"""

from repro.core.morsel import RackScheduler, skewed_queries
from repro.metrics.report import Table
from repro.units import fmt_ns


def run_experiment(show=False):
    scheduler = RackScheduler(hosts=4, threads_per_host=8)
    queries = skewed_queries(num_queries=4, morsels_per_query=400)

    static = scheduler.run_static([list(q) for q in queries])
    fifo = scheduler.run_shared_queue([list(q) for q in queries],
                                      policy="fifo")
    fair = scheduler.run_shared_queue([list(q) for q in queries],
                                      policy="fair")

    table = Table("A8: scheduling 4 skewed queries on 32 threads", [
        "scheduler", "makespan", "mean query completion",
        "thread idle time", "queue overhead",
    ])
    for outcome in (static, fifo, fair):
        table.add_row(
            outcome.name,
            fmt_ns(outcome.makespan_ns),
            fmt_ns(outcome.mean_completion_ns),
            fmt_ns(outcome.idle_ns),
            fmt_ns(outcome.queue_overhead_ns),
        )
    if show:
        table.show()
    return static, fifo, fair


def test_a8_morsel_scheduling(benchmark):
    benchmark(run_experiment)
    static, fifo, fair = run_experiment(show=True)
    assert fifo.makespan_ns < static.makespan_ns      # stealing wins
    assert fair.mean_completion_ns <= fifo.makespan_ns
    assert fair.makespan_ns <= 1.05 * fifo.makespan_ns
