"""E1 — CXL vs NUMA latency and bandwidth (paper Sec 2.4, Intel [52]).

Paper values reproduced:
* a CXL load takes ~35% longer than a remote NUMA load;
* stores show slightly lower but comparable overheads;
* streaming-load efficiency: ~70% over a NUMA link vs ~46% over CXL.
"""

from repro import config
from repro.metrics.report import Table, fmt_ratio
from repro.sim.memory import MemoryDevice
from repro.sim.numa import NUMASystem
from repro.units import CACHE_LINE, MIB


def build_system():
    """Two sockets plus a direct-attached expander."""
    system = NUMASystem()
    s0 = system.add_socket(MemoryDevice(config.local_ddr5(), name="s0"))
    s1 = system.add_socket(MemoryDevice(config.local_ddr5(), name="s1"))
    cxl = system.add_cxl_expander(
        MemoryDevice(config.cxl_expander_ddr5()), attached_to=s0
    )
    return system, s0, s1, cxl


def pointer_chase_latency(path, accesses=10_000):
    """Mean dependent-load latency over a chain of line accesses."""
    total = 0.0
    for _ in range(accesses):
        total += path.read_time(CACHE_LINE)
    return total / accesses


def run_experiment(show=False):
    system, s0, s1, cxl = build_system()
    local = system.path(s0, s0)
    numa = system.path(s0, s1)
    cxl_path = system.path(s0, cxl)

    load_local = pointer_chase_latency(local)
    load_numa = pointer_chase_latency(numa)
    load_cxl = pointer_chase_latency(cxl_path)
    store_numa = numa.write_latency_ns()
    store_cxl = cxl_path.write_latency_ns()

    # Efficiency as Intel reports it: payload over raw link capacity.
    numa_eff = config.numa_link().protocol_efficiency
    cxl_eff = cxl_path.device.spec.load_efficiency
    stream_numa = (64 * MIB) / numa.read_time_sequential(64 * MIB)
    stream_cxl = (64 * MIB) / cxl_path.read_time_sequential(64 * MIB)

    table = Table("E1: CXL vs NUMA (paper Sec 2.4)", [
        "metric", "paper", "measured",
    ])
    table.add_row("local DRAM load", "~80 ns", f"{load_local:.0f} ns")
    table.add_row("remote NUMA load", "~140 ns", f"{load_numa:.0f} ns")
    table.add_row("CXL load", "200-400 ns range",
                  f"{load_cxl:.0f} ns")
    table.add_row("CXL/NUMA load ratio", "1.35x",
                  fmt_ratio(load_cxl / load_numa))
    table.add_row("CXL/NUMA store ratio", "slightly lower",
                  fmt_ratio(store_cxl / store_numa))
    table.add_row("NUMA load efficiency", "70%", f"{numa_eff:.0%}")
    table.add_row("CXL load efficiency", "46%", f"{cxl_eff:.0%}")
    table.add_row("NUMA streaming GB/s", "-", f"{stream_numa:.1f}")
    table.add_row("CXL streaming GB/s", "~64 (Meta)",
                  f"{stream_cxl:.1f}")
    if show:
        table.show()
    return load_cxl / load_numa


def test_e1_latency_bandwidth(benchmark):
    benchmark(run_experiment)
    ratio = run_experiment(show=True)
    assert 1.30 < ratio < 1.40
