"""A10 — OLTP/OLAP bandwidth interference on expanders (Sec 3.1).

"Are memory expanders fast enough for OLTP or will they be suitable
mainly for OLAP? Can they be used to perform both on the same machine
and what are the implications?"

Concurrent point-lookup threads share one expander with scanning
threads that issue 64 KiB readahead requests. The scan streams
saturate the expander channel and inflate point-lookup tail latency;
giving the analytical data its *own* expander (two-device HTAP
isolation — the capacity-level isolation of E5 taken down to the
bandwidth level) restores the tail.
"""

import random

from repro import config
from repro.core import ScaleUpEngine, StaticPolicy
from repro.core.buffer import Tier, TieredBufferPool
from repro.metrics.report import Table
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.units import fmt_ns
from repro.workloads import Access

OLTP_PAGES = 1_000
OLAP_PAGES = 4_000
POINT_THREADS = 2
SCAN_THREADS = 4


def point_trace(seed, ops=2_000):
    rng = random.Random(seed)
    return [Access(page_id=rng.randrange(OLTP_PAGES), think_ns=150.0)
            for _ in range(ops)]


def readahead_scan(repeats=4, chunk_pages=16):
    out = []
    for _ in range(repeats):
        for start in range(0, OLAP_PAGES, chunk_pages):
            out.append(Access(
                page_id=OLTP_PAGES + start, is_scan=True,
                nbytes=chunk_pages * 4096, think_ns=0.0,
            ))
    return out


def one_expander_engine():
    engine = ScaleUpEngine.build(
        dram_pages=1, cxl_pages=OLTP_PAGES + OLAP_PAGES + 16,
        placement=StaticPolicy(lambda _p: 1), with_storage=False,
    )
    for page in range(OLTP_PAGES + OLAP_PAGES):
        engine.pool.access(page)
    return engine


def two_expander_engine():
    tiers = [
        Tier("dram", AccessPath(
            device=MemoryDevice(config.local_ddr5())), 1),
        Tier("cxl-oltp", AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5(),
                                name="oltp-exp"),
            links=(Link(config.cxl_port()),)), OLTP_PAGES + 8),
        Tier("cxl-olap", AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5(),
                                name="olap-exp"),
            links=(Link(config.cxl_port()),)), OLAP_PAGES + 8),
    ]
    pool = TieredBufferPool(
        tiers=tiers,
        placement=StaticPolicy(lambda p: 1 if p < OLTP_PAGES else 2),
    )
    engine = ScaleUpEngine(pool)
    for page in range(OLTP_PAGES + OLAP_PAGES):
        pool.access(page)
    return engine


def run_experiment(show=False):
    point_ids = tuple(range(POINT_THREADS))

    quiet = one_expander_engine()
    alone = quiet.run_concurrent(
        [point_trace(s) for s in range(POINT_THREADS)])

    shared = one_expander_engine()
    mixed_shared = shared.run_concurrent(
        [point_trace(s) for s in range(POINT_THREADS)]
        + [readahead_scan() for _ in range(SCAN_THREADS)])

    isolated = two_expander_engine()
    mixed_isolated = isolated.run_concurrent(
        [point_trace(s) for s in range(POINT_THREADS)]
        + [readahead_scan() for _ in range(SCAN_THREADS)])

    rows = [
        ("OLTP alone", alone),
        ("OLTP + scans, one expander", mixed_shared),
        ("OLTP + scans, two expanders", mixed_isolated),
    ]
    table = Table("A10: expander bandwidth interference (Sec 3.1)", [
        "configuration", "OLTP p95 latency", "vs alone",
    ])
    base = alone.p95_for(point_ids)
    for name, report in rows:
        p95 = report.p95_for(point_ids)
        table.add_row(name, fmt_ns(p95), f"{p95 / base:.2f}x")
    if show:
        table.show()
    return (alone.p95_for(point_ids),
            mixed_shared.p95_for(point_ids),
            mixed_isolated.p95_for(point_ids))


def test_a10_bandwidth_interference(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    alone, shared, isolated = run_experiment(show=True)
    assert shared > 1.3 * alone          # scans hurt the OLTP tail
    assert isolated < 0.8 * shared       # a second expander fixes it
    assert isolated < 1.3 * alone        # ...nearly back to baseline