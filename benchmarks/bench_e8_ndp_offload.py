"""E8 — Near-data processing on the CXL controller, Fig 3 (Sec 4).

Shapes reproduced:
* offloaded selection wins at low selectivity (ships only matches
  over the fabric) and converges to the host path as selectivity
  approaches 1;
* fabric traffic drops proportionally to selectivity;
* coherent host+controller *parallel* scans beat either side alone —
  impossible for non-coherent (classic) NDP;
* active memory regions: streaming a computed view beats
  materialize-then-read, drastically so for partial reads (Fig 3b).
"""

from repro import config
from repro.core.ndp import (
    ActiveMemoryRegion,
    NDPController,
    NDPOperatorLibrary,
)
from repro.metrics.report import Table, fmt_ratio
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.units import KIB, MIB, fmt_bytes, fmt_ns

PAGES = 100_000  # ~400 MiB table


def build_controller() -> NDPController:
    device = MemoryDevice(config.cxl_expander_ddr5())
    path = AccessPath(device=device, links=(Link(config.cxl_port()),))
    return NDPController(path)


def run_selectivity_sweep(controller):
    rows = []
    for selectivity in (0.001, 0.01, 0.1, 0.5, 1.0):
        host = controller.host_filter_time(PAGES, selectivity)
        ndp = controller.offload_filter_time(PAGES, selectivity)
        parallel = controller.parallel_filter_time(
            PAGES, selectivity,
            controller.best_host_fraction(PAGES, selectivity),
        )
        rows.append((selectivity, host, ndp, parallel))
    return rows


def run_active_region():
    device = MemoryDevice(config.cxl_expander_ddr5())
    path = AccessPath(device=device, links=(Link(config.cxl_port()),))
    region = ActiveMemoryRegion(path, view_bytes=256 * MIB,
                                expansion=4.0)
    full_stream = region.streaming_read_time()
    full_mat = region.materialized_read_time()
    partial_stream = region.streaming_read_time(64 * KIB)
    partial_mat = region.materialized_read_time(64 * KIB)
    return full_stream, full_mat, partial_stream, partial_mat


def run_experiment(show=False):
    controller = build_controller()
    sweep = run_selectivity_sweep(controller)

    table = Table("E8: NDP operator offload (Fig 3a, Sec 4)", [
        "selectivity", "host", "offload", "parallel",
        "offload speedup", "fabric bytes saved",
    ])
    for selectivity, host, ndp, parallel in sweep:
        saved = 1.0 - ndp.fabric_bytes / host.fabric_bytes
        table.add_row(
            f"{selectivity:.1%}",
            fmt_ns(host.time_ns), fmt_ns(ndp.time_ns),
            fmt_ns(parallel.time_ns),
            fmt_ratio(host.time_ns / ndp.time_ns),
            f"{saved:.0%}",
        )

    library = NDPOperatorLibrary(controller.path)
    table_ops = Table(
        "E8c: the Sec 4 operator candidates (256 MiB input)", [
            "operator", "runs on", "host", "offloaded", "speedup",
            "fabric bytes",
        ])
    placements = library.placement_table(256 * MIB)
    for placement in placements:
        table_ops.add_row(
            placement.op,
            "controller" if placement.offload else "host",
            fmt_ns(placement.host_time_ns),
            fmt_ns(placement.ndp_time_ns),
            fmt_ratio(placement.speedup),
            f"{placement.host_fabric_bytes >> 20} ->"
            f" {placement.ndp_fabric_bytes >> 20} MiB",
        )

    full_stream, full_mat, partial_stream, partial_mat = \
        run_active_region()
    table2 = Table("E8b: active memory region (Fig 3b)", [
        "read", "streaming", "materialized", "advantage",
    ])
    table2.add_row(f"full view ({fmt_bytes(256 * MIB)})",
                   fmt_ns(full_stream), fmt_ns(full_mat),
                   fmt_ratio(full_mat / full_stream))
    table2.add_row("first 64 KiB",
                   fmt_ns(partial_stream), fmt_ns(partial_mat),
                   fmt_ratio(partial_mat / partial_stream))
    if show:
        table.show()
        table_ops.show()
        table2.show()
    return sweep, (full_stream, full_mat, partial_stream, partial_mat), \
        placements


def test_e8_ndp_offload(benchmark):
    benchmark(run_experiment)
    (sweep, (full_stream, full_mat, partial_stream, partial_mat),
     placements) = run_experiment(show=True)
    by_op = {p.op: p for p in placements}
    assert by_op["selection"].offload
    assert by_op["like_filter"].offload
    assert not by_op["decompression"].offload  # expanding op stays home
    speedups = [host.time_ns / ndp.time_ns
                for _s, host, ndp, _p in sweep]
    assert speedups[0] > 1.2                 # low selectivity wins
    assert speedups[0] > speedups[-1]        # win shrinks with sel.
    for _s, host, ndp, parallel in sweep:
        assert parallel.time_ns <= min(host.time_ns, ndp.time_ns) + 1e-6
    assert full_mat > full_stream
    assert partial_mat > 50 * partial_stream
