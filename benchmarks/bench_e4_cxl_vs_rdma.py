"""E4 — CXL fabric vs RDMA networking (paper Sec 2.5).

Paper values reproduced:
* CXL remote-memory latency in the low hundreds of ns vs a few us for
  the fastest RDMA exchanges — at least a 2.5x gap;
* a 400 Gb/s NIC (50 GB/s) on a PCIe Gen5 x16 slot (63-64 GB/s)
  wastes over 20% of the slot's bandwidth; CXL adapters use all of it.
"""

from repro import config
from repro.metrics.report import Table, fmt_ratio
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.sim.rdma import RDMAFabric
from repro.units import CACHE_LINE, KIB, MIB


def build_paths():
    fabric = RDMAFabric()
    fabric.add_host("a")
    fabric.add_host("b")
    cxl = AccessPath(
        device=MemoryDevice(config.cxl_expander_ddr5()),
        links=(Link(config.cxl_port()), Link(config.cxl_switch_hop())),
    )
    return fabric, cxl


def run_experiment(show=False):
    fabric, cxl = build_paths()

    sizes = [CACHE_LINE, KIB, 64 * KIB, MIB]
    table = Table("E4: CXL vs RDMA (Sec 2.5)", [
        "transfer", "RDMA", "CXL", "advantage", "paper",
    ])
    advantages = []
    for size in sizes:
        rdma_ns = fabric.one_sided_read_time("a", "b", size)
        cxl_ns = cxl.read_time(size)
        advantage = rdma_ns / cxl_ns
        advantages.append(advantage)
        label = f"{size} B" if size < KIB else f"{size // KIB} KiB"
        expected = ">=2.5x" if size <= KIB else "shrinks with size"
        table.add_row(label, f"{rdma_ns:,.0f} ns", f"{cxl_ns:,.0f} ns",
                      fmt_ratio(advantage), expected)

    nic = fabric.nic("a")
    slot = config.pcie_bandwidth(config.PCIeGeneration.GEN5, 16)
    port = config.cxl_port()
    table.add_row("NIC payload of PCIe slot", "50/64 GB/s",
                  f"{nic.effective_bandwidth:.0f}/{slot:.0f} GB/s",
                  f"{nic.wasted_pcie_fraction:.0%} wasted", ">20% wasted")
    table.add_row("CXL payload of PCIe slot", "full",
                  f"{port.effective_bandwidth:.0f}/{slot:.0f} GB/s",
                  "0% wasted", "full bandwidth")
    if show:
        table.show()
    return advantages, nic.wasted_pcie_fraction


def test_e4_cxl_vs_rdma(benchmark):
    benchmark(run_experiment)
    advantages, wasted = run_experiment(show=True)
    assert advantages[0] >= 2.5          # small transfers
    assert advantages[0] > advantages[-1]  # gap shrinks with size
    assert wasted > 0.20
