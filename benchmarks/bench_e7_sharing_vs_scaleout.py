"""E7 — Rack-scale memory sharing vs scale-out, Fig 2(c) (Sec 3.3).

Shapes reproduced:
* throughput vs distributed-transaction fraction: the sharded 2PC
  engine wins when everything is partitionable and degrades steeply
  as cross-partition transactions appear; the shared-memory engine is
  flat, with a crossover near ~10% distributed transactions;
* the shared engine scales with added compute hosts without any
  repartitioning;
* coherency traffic depends on the data structure (a contended
  counter vs a partitioned structure) — the Sec 3.3 research question;
* hash-vs-sort: with work memory at GFAM latency, the planner's
  crossover moves toward sort for large inputs.
"""

from repro import config
from repro.core.scaleout import ScaleOutConfig, ScaleOutEngine
from repro.core.shared import SharedEngineConfig, SharedRackEngine
from repro.metrics.report import Table
from repro.query.hashjoin import HashJoin
from repro.query.operators import TableScan
from repro.query.schema import Column, Schema
from repro.query.sort import SortMergeJoin
from repro.query.table import Table as RelTable
from repro.sim.coherence import CoherenceDirectory
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile
from repro.workloads.tpcc import TPCCLite

NODES = 4
TXNS = 1_500


def run_distribution_sweep():
    rows = []
    for remote in (0.0, 0.01, 0.05, 0.10, 0.20, 0.30):
        txns = list(TPCCLite(num_warehouses=16,
                             remote_probability=remote,
                             seed=3).transactions(TXNS))
        up = SharedRackEngine(
            SharedEngineConfig(num_hosts=NODES)).run(txns)
        out = ScaleOutEngine(
            ScaleOutConfig(num_nodes=NODES)).run(txns)
        rows.append((remote, up.throughput_tps, out.throughput_tps))
    return rows


def run_host_scaling():
    txns = list(TPCCLite(num_warehouses=64, remote_probability=0.1,
                         seed=4).transactions(TXNS))
    rows = []
    for hosts in (1, 2, 4, 8):
        report = SharedRackEngine(
            SharedEngineConfig(num_hosts=hosts)).run(txns)
        rows.append((hosts, report.throughput_tps))
    return rows


def run_coherency_traffic(writes=2_000, agents=8):
    contended = CoherenceDirectory()
    ids = [contended.register_agent() for _ in range(agents)]
    for i in range(writes):
        contended.write(ids[i % agents], 0)

    partitioned = CoherenceDirectory()
    ids2 = [partitioned.register_agent() for _ in range(agents)]
    for i in range(writes):
        partitioned.write(ids2[i % agents], i % agents)
    return (contended.stats.invalidations_per_write,
            partitioned.stats.invalidations_per_write)


def run_hash_vs_sort():
    """Planner cost crossover for DRAM vs GFAM work memory."""
    pf = PageFile(StorageDevice())
    schema = Schema([Column("k"), Column("v")])
    table = RelTable("t", schema, pf)
    table.bulk_load([(0, 0)])
    dram = AccessPath(device=MemoryDevice(config.local_ddr5()))
    gfam = AccessPath(
        device=MemoryDevice(config.cxl_expander_ddr5()),
        links=(Link(config.cxl_port()), Link(config.cxl_switch_hop()),
               Link(config.cxl_switch_hop())),
    )
    rows = []
    for size in (4_000, 100_000, 1_000_000, 10_000_000):
        choices = {}
        for name, path in (("dram", dram), ("gfam", gfam)):
            hash_cost = HashJoin(
                TableScan(table), TableScan(table), "k", "k",
                work_path=path, work_mem_rows=50_000_000,
            ).estimated_cost_ns(size, size)
            sort_cost = SortMergeJoin(
                TableScan(table), TableScan(table), "k", "k",
                work_path=path, work_mem_rows=50_000_000,
            ).estimated_cost_ns(size, size)
            choices[name] = "hash" if hash_cost <= sort_cost \
                else "sort-merge"
        rows.append((size, choices["dram"], choices["gfam"]))
    return rows


def run_experiment(show=False):
    sweep = run_distribution_sweep()
    scaling = run_host_scaling()
    inv_contended, inv_partitioned = run_coherency_traffic()
    hash_sort = run_hash_vs_sort()

    table = Table("E7: scale-up vs scale-out (Fig 2c, Sec 3.3)", [
        "distributed txns", "scale-up tps", "scale-out tps", "ratio",
        "expected",
    ])
    for remote, up, out in sweep:
        expected = "scale-out wins" if remote < 0.05 else (
            "near crossover" if remote <= 0.10 else "scale-up wins")
        table.add_row(f"{remote:.0%}", f"{up:,.0f}", f"{out:,.0f}",
                      f"{up / out:.2f}", expected)

    table2 = Table("E7b: shared-engine host scaling", [
        "hosts", "tps", "speedup vs 1 host",
    ])
    base = scaling[0][1]
    for hosts, tps in scaling:
        table2.add_row(hosts, f"{tps:,.0f}", f"{tps / base:.1f}x")

    table3 = Table("E7c: coherency traffic by data structure", [
        "structure", "invalidations/write", "expected",
    ])
    table3.add_row("contended shared counter",
                   f"{inv_contended:.2f}", "~1 (ping-pong)")
    table3.add_row("partitioned per-host lines",
                   f"{inv_partitioned:.2f}", "~0")

    table4 = Table("E7d: hash vs sort with GFAM work memory", [
        "rows per side", "DRAM choice", "GFAM choice",
    ])
    for size, dram_choice, gfam_choice in hash_sort:
        table4.add_row(f"{size:,}", dram_choice, gfam_choice)
    if show:
        table.show()
        table2.show()
        table3.show()
        table4.show()
    return sweep, scaling, (inv_contended, inv_partitioned), hash_sort


def test_e7_sharing_vs_scaleout(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    sweep, scaling, (inv_c, inv_p), hash_sort = run_experiment(show=True)
    ratios = {remote: up / out for remote, up, out in sweep}
    assert ratios[0.0] < 1.0          # scale-out wins partitionable
    assert ratios[0.30] > 1.2         # scale-up wins distributed
    assert scaling[-1][1] > 3 * scaling[0][1]  # hosts scale
    assert inv_c > 10 * max(inv_p, 0.01)
    # Cache-resident joins stay hash everywhere; large joins flip to
    # sort-merge when work memory is GFAM (the crossover moved).
    assert hash_sort[0][1] == "hash" and hash_sort[0][2] == "hash"
    assert hash_sort[-1][1] == "hash"
    assert hash_sort[-1][2] == "sort-merge"
