"""E2 — OS-driven CXL tiering, TPP-style (paper Sec 2.4, Meta [34]).

Paper values reproduced:
* the expander delivers ~64 GB/s effective bandwidth;
* with cold pages demoted to CXL and hot pages promoted back by the
  OS, end-to-end slowdown vs all-DRAM stays small for skewed
  workloads (TPP reports single-digit percentages);
* without tiering (pages pinned where they land), the slowdown is
  materially larger.
"""

from repro.core import OSPagingPolicy, ScaleUpEngine, StaticPolicy
from repro.metrics.report import Table
from repro.units import MIB
from repro.workloads import YCSBConfig, ycsb_trace

PAGES = 4_000
DRAM_SHARE = 0.50  # Meta ran local:CXL near 1:1


def _cfg(seed):
    # Meta's production services are compute-heavy per memory touch;
    # 300 ns of CPU work per access reflects that profile.
    return YCSBConfig(mix="B", num_pages=PAGES, num_ops=25_000,
                      theta=0.99, think_ns=300.0, seed=seed)


def run_experiment(show=False):
    dram_pages = int(PAGES * DRAM_SHARE)

    all_dram = ScaleUpEngine.build(dram_pages=PAGES + 8,
                                   with_storage=False)
    all_dram.warm_with(ycsb_trace(_cfg(1)))
    r_dram = all_dram.run(ycsb_trace(_cfg(2)))

    tpp = ScaleUpEngine.build(
        dram_pages=dram_pages, cxl_pages=PAGES + 8,
        placement=OSPagingPolicy(sample_rate=0.05, check_interval=1_000),
        with_storage=False,
    )
    tpp.warm_with(ycsb_trace(_cfg(1)))
    r_tpp = tpp.run(ycsb_trace(_cfg(2)))

    # No tiering: first-touch placement, pages never move.
    static = ScaleUpEngine.build(
        dram_pages=dram_pages, cxl_pages=PAGES + 8,
        placement=StaticPolicy(lambda p: 0 if p < dram_pages else 1),
        with_storage=False,
    )
    static.warm_with(ycsb_trace(_cfg(1)))
    r_static = static.run(ycsb_trace(_cfg(2)))

    expander = tpp.pool.tiers[1].path
    stream_gbps = (64 * MIB) / expander.read_time_sequential(64 * MIB)

    table = Table("E2: OS-tiered CXL memory, TPP-style (Sec 2.4)", [
        "configuration", "paper", "measured",
    ])
    table.add_row("expander streaming GB/s", "~64",
                  f"{stream_gbps:.1f}")
    table.add_row("all-DRAM runtime", "baseline",
                  f"{r_dram.total_ns / 1e6:.2f} ms")
    table.add_row(
        "TPP tiering slowdown", "small (single-digit %)",
        f"{(r_tpp.total_ns / r_dram.total_ns - 1):+.1%}",
    )
    table.add_row(
        "no-tiering slowdown", "(worse)",
        f"{(r_static.total_ns / r_dram.total_ns - 1):+.1%}",
    )
    table.add_row("TPP fast-tier hit rate", "-",
                  f"{r_tpp.tier_hit_rates[0]:.1%}")
    table.add_row("TPP promotions+demotions", "-",
                  f"{r_tpp.migrations:,}")
    if show:
        table.show()
    return r_tpp.total_ns / r_dram.total_ns, \
        r_static.total_ns / r_dram.total_ns


def test_e2_tpp_tiering(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    tpp_slowdown, static_slowdown = run_experiment(show=True)
    assert tpp_slowdown < 1.15
    assert static_slowdown > tpp_slowdown
