"""F1 — The coherency domain, Fig 1(a) vs 1(b) (paper Sec 2.1-2.2).

Shapes reproduced:
* Fig 1(a): a PCIe device's DMA copy "quietly becomes stale" when the
  host keeps writing — stale-read rate grows with host write rate and
  is only repaired by explicit (expensive) re-copies;
* Fig 1(b): a CXL Type-1/2 device in the coherency domain never reads
  stale data; the cost appears instead as bounded invalidation
  traffic, which we count.
"""

import random

from repro.metrics.report import Table
from repro.sim.cache import AgentCache
from repro.sim.coherence import CoherenceDirectory, NonCoherentCopy
from repro.units import KIB

LINES = 64
OPS = 5_000


def run_pcie_side(host_write_prob):
    """Fig 1(a): device reads a DMA snapshot while the host writes."""
    rng = random.Random(5)
    copy = NonCoherentCopy()
    copy.dma_copy(list(range(LINES)))
    for _ in range(OPS):
        line = rng.randrange(LINES)
        if rng.random() < host_write_prob:
            copy.host_write(line)
        else:
            copy.device_read(line)
    total_reads = copy.fresh_reads + copy.stale_reads
    return copy.stale_reads / total_reads if total_reads else 0.0


def run_cxl_side(host_write_prob):
    """Fig 1(b): host and device share lines coherently."""
    rng = random.Random(5)
    directory = CoherenceDirectory()
    host = AgentCache(directory, capacity_bytes=64 * KIB)
    device = AgentCache(directory, capacity_bytes=64 * KIB)
    for _ in range(OPS):
        line_addr = rng.randrange(LINES) * 64
        if rng.random() < host_write_prob:
            host.store(line_addr)
        else:
            device.load(line_addr)
    # Coherence guarantees freshness; the cost is message traffic.
    return directory.stats.invalidations_sent / OPS


def run_experiment(show=False):
    table = Table("F1: non-coherent PCIe vs coherent CXL (Fig 1)", [
        "host write ratio", "PCIe stale reads", "CXL stale reads",
        "CXL invalidations/op",
    ])
    results = []
    for write_prob in (0.1, 0.3, 0.5):
        stale = run_pcie_side(write_prob)
        inv_rate = run_cxl_side(write_prob)
        results.append((write_prob, stale, inv_rate))
        table.add_row(f"{write_prob:.0%}", f"{stale:.1%}", "0.0%",
                      f"{inv_rate:.3f}")
    if show:
        table.show()
    return results


def test_f1_coherency_domain(benchmark):
    benchmark(run_experiment)
    results = run_experiment(show=True)
    stale_rates = [stale for _w, stale, _i in results]
    assert stale_rates[0] > 0.05           # stale reads happen at all
    assert stale_rates == sorted(stale_rates)  # grow with write rate
    for _w, _stale, inv_rate in results:
        assert 0.0 < inv_rate < 1.0        # bounded coherence cost
