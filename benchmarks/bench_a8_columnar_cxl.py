"""A11 — specialized analytical structures in CXL memory (Sec 3.1).

"The data structures in the CXL memory could be specialized ones,
such as data cubes, materialized tables, denormalized tables." The
simplest specialized structure is a column store: scanning k of N
columns moves k/N of the bytes, so the CXL bandwidth tax shrinks with
the projection — while a row store drags every byte across the fabric
regardless.
"""

from repro.core import ScaleUpEngine, StaticPolicy
from repro.metrics.report import Table as ReportTable
from repro.query.columnar import ColumnScan, ColumnTable
from repro.query.operators import TableScan, collect
from repro.query.schema import Column, ColumnType, Schema
from repro.query.table import Table
from repro.storage.disk import StorageDevice
from repro.storage.file import PageFile

SCHEMA = Schema([
    Column("id"), Column("a", ColumnType.FLOAT),
    Column("b", ColumnType.FLOAT), Column("c", ColumnType.STR),
    Column("d", ColumnType.STR), Column("e", ColumnType.DATE),
])
ROWS = 30_000


def build(cxl: bool):
    pf = PageFile(StorageDevice())
    col = ColumnTable("col", SCHEMA, pf)
    row = Table("row", SCHEMA, pf)
    data = [
        (i, float(i), float(i) * 2, f"c{i}", f"d{i}", i % 365)
        for i in range(ROWS)
    ]
    col.bulk_load(data)
    row.bulk_load(data)
    pages = col.total_pages + row.page_count + 16
    if cxl:
        engine = ScaleUpEngine.build(
            dram_pages=1, cxl_pages=pages,
            placement=StaticPolicy(lambda _p: 1), backing=pf,
        )
    else:
        engine = ScaleUpEngine.build(dram_pages=pages, backing=pf)
    # Warm everything.
    collect(ColumnScan(col, SCHEMA.names), engine)
    collect(TableScan(row), engine)
    return engine, col, row


def run_experiment(show=False):
    table = ReportTable(
        "A11: row vs column scans, DRAM vs CXL (Sec 3.1)", [
            "projection", "layout", "DRAM scan", "CXL scan",
            "CXL overhead",
        ])
    results = {}
    for projection in (["a"], ["a", "b"], SCHEMA.names):
        label = f"{len(projection)}/{len(SCHEMA.names)} columns"
        times = {}
        for cxl in (False, True):
            engine, col, row = build(cxl)
            _r, t_col = collect(ColumnScan(col, projection), engine)
            _r, t_row = collect(
                TableScan(row, projection=projection), engine)
            times[("col", cxl)] = t_col
            times[("row", cxl)] = t_row
        for layout in ("col", "row"):
            overhead = times[(layout, True)] / times[(layout, False)] - 1
            table.add_row(
                label, "column" if layout == "col" else "row",
                f"{times[(layout, False)] / 1e6:.2f} ms",
                f"{times[(layout, True)] / 1e6:.2f} ms",
                f"{overhead:+.1%}",
            )
        results[len(projection)] = times
    if show:
        table.show()
    return results


def test_a11_columnar_cxl(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    results = run_experiment(show=True)
    narrow = results[1]
    # On CXL, the narrow column scan beats the row scan decisively.
    assert narrow[("col", True)] < 0.5 * narrow[("row", True)]
    # Full-width projection: the layouts converge (same bytes moved).
    wide = results[len(SCHEMA.names)]
    ratio = wide[("col", True)] / wide[("row", True)]
    assert 0.7 < ratio < 1.4
