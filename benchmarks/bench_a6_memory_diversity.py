"""A9 — designed memory tiers (Sec 3.1's "killer app" paragraph).

"The memory tiers can be carefully designed ... slower/cheaper or
faster/more expensive memory than the CPU at the system architect's
discretion, even enabling the recycling of DRAM from older
generations."

The same engine runs a point-lookup (OLTP-ish) and a scan (OLAP-ish)
workload with its overflow tier built three ways — new DDR5, recycled
DDR4, HBM — and the table reports performance *and* performance per
dollar under representative $/GB figures. Two findings:

* recycled DDR4 costs a few percent of runtime and is the clear
  perf-per-dollar winner — the paper's recycling/cost argument;
* HBM behind a Gen5 x16 port is *port-bound*: 6x the $/GB buys ~1%
  on scans, quantifying why expander bandwidth "highly depends on the
  expander's characteristics" (Sec 2.4) — the port, not the media,
  can be the ceiling.
"""

from repro import config
from repro.core import ScaleUpEngine, StaticPolicy
from repro.metrics.report import Table
from repro.units import GIB
from repro.workloads import YCSBConfig, scan_trace, ycsb_trace

#: Representative street prices, $/GiB.
DOLLARS_PER_GIB = {
    "ddr5-expander": 4.0,
    "ddr4-recycled": 1.5,
    "hbm-expander": 25.0,
}

EXPANDERS = {
    "ddr5-expander": config.cxl_expander_ddr5,
    "ddr4-recycled": config.cxl_expander_ddr4_recycled,
    "hbm-expander": config.cxl_expander_hbm,
}

PAGES = 4_000


def _point_trace(seed=3):
    return ycsb_trace(YCSBConfig(
        mix="B", num_pages=PAGES, num_ops=20_000, theta=0.99,
        think_ns=0, seed=seed,
    ))


def _scan_workload():
    return scan_trace(first_page=0, num_pages=PAGES, repeats=4,
                      think_ns=0)


def run_experiment(show=False):
    results = {}
    for name, spec_factory in EXPANDERS.items():
        spec = spec_factory()
        point_engine = ScaleUpEngine.build(
            dram_pages=400, cxl_pages=PAGES + 8, cxl_spec=spec,
            with_storage=False,
        )
        point_engine.warm_with(_point_trace())
        point = point_engine.run(_point_trace(), label=name)

        scan_engine = ScaleUpEngine.build(
            dram_pages=400, cxl_pages=PAGES + 8, cxl_spec=spec,
            placement=StaticPolicy(lambda _p: 1), with_storage=False,
        )
        scan_engine.warm_with(_scan_workload())
        scan = scan_engine.run(_scan_workload(), label=name)
        results[name] = (point, scan)

    table = Table("A9: expander memory diversity (Sec 3.1)", [
        "expander", "$/GiB", "point runtime", "scan runtime",
        "point ops/s/$ (64GiB)", "scan MB/s/$ (64GiB)",
    ])
    efficiency = {}
    for name, (point, scan) in results.items():
        cost = DOLLARS_PER_GIB[name] * 64
        point_eff = point.throughput_ops_per_s / cost
        scan_bytes = PAGES * 4 * 4096
        scan_eff = (scan_bytes / scan.total_ns * 1e3) / cost
        efficiency[name] = (point_eff, scan_eff)
        table.add_row(
            name, f"${DOLLARS_PER_GIB[name]:.2f}",
            f"{point.total_ns / 1e6:.2f} ms",
            f"{scan.total_ns / 1e6:.2f} ms",
            f"{point_eff:,.0f}",
            f"{scan_eff:,.1f}",
        )
    if show:
        table.show()
    return results, efficiency


def test_a9_memory_diversity(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    results, efficiency = run_experiment(show=True)
    # HBM is the fastest scanner in absolute terms.
    scan_times = {name: scan.total_ns
                  for name, (_p, scan) in results.items()}
    assert scan_times["hbm-expander"] <= scan_times["ddr5-expander"]
    # Recycled DDR4 wins point-lookup efficiency (the recycling claim).
    point_eff = {name: eff[0] for name, eff in efficiency.items()}
    assert point_eff["ddr4-recycled"] > point_eff["ddr5-expander"]
    assert point_eff["ddr4-recycled"] > point_eff["hbm-expander"]
