"""E10 — Fault tolerance: RAS vs software detection (paper Sec 2.6).

Shapes reproduced:
* hardware (protocol-level) failure detection reacts orders of
  magnitude faster than heartbeat timeouts over TCP;
* the path to a CXL memory pool crosses fewer components than the
  path to a remote server's memory, so its failure probability is a
  fraction of the remote-memory path's.
"""

import random

from repro import config
from repro.metrics.report import Table, fmt_ratio
from repro.sim.events import Simulator
from repro.sim.memory import MemoryDevice
from repro.sim.ras import (
    CXL_POOL_PATH,
    REMOTE_SERVER_PATH,
    FailureInjector,
    RASMonitor,
    TimeoutMonitor,
    path_failure_probability,
)
from repro.units import fmt_ns, ms

FAILURES = 50


def run_detection_sweep():
    sim = Simulator()
    injector = FailureInjector(sim)
    ras = RASMonitor()
    timeout = TimeoutMonitor()
    injector.attach(ras)
    injector.attach(timeout)
    rng = random.Random(13)
    for i in range(FAILURES):
        device = MemoryDevice(config.cxl_expander_ddr5(),
                              name=f"expander{i}")
        injector.fail_at(device, ms(rng.uniform(1.0, 1_000.0)))
    sim.run()
    ras_delays = [r.detection_delay_ns for r in ras.records]
    sw_delays = [r.detection_delay_ns for r in timeout.records]
    return ras_delays, sw_delays


def run_experiment(show=False):
    ras_delays, sw_delays = run_detection_sweep()
    mean_ras = sum(ras_delays) / len(ras_delays)
    mean_sw = sum(sw_delays) / len(sw_delays)

    pool_p = path_failure_probability(CXL_POOL_PATH)
    remote_p = path_failure_probability(REMOTE_SERVER_PATH)

    table = Table("E10: failure detection and path reliability (Sec 2.6)", [
        "metric", "paper claim", "measured",
    ])
    table.add_row("failures injected", "-", FAILURES)
    table.add_row("RAS mean detection", "built into the protocol",
                  fmt_ns(mean_ras))
    table.add_row("TCP-timeout mean detection",
                  "traditional distributed system", fmt_ns(mean_sw))
    table.add_row("RAS advantage", "likely faster",
                  fmt_ratio(mean_sw / mean_ras))
    table.add_row("CXL pool path components", "lower number",
                  len(CXL_POOL_PATH))
    table.add_row("remote server path components", "-",
                  len(REMOTE_SERVER_PATH))
    table.add_row("pool path P(fail, 1y)", "better scenario",
                  f"{pool_p:.1%}")
    table.add_row("remote path P(fail, 1y)", "-", f"{remote_p:.1%}")
    if show:
        table.show()
    return mean_ras, mean_sw, pool_p, remote_p


def test_e10_ras_failures(benchmark):
    benchmark(run_experiment)
    mean_ras, mean_sw, pool_p, remote_p = run_experiment(show=True)
    assert mean_sw / mean_ras > 1_000
    assert remote_p > 3 * pool_p
