"""E5 — Memory expansion policies, Fig 2(a) (paper Sec 3.1).

Shapes reproduced:
* as the DRAM share of the working set shrinks, paging to SSD
  degrades far faster than tiering to CXL memory;
* the database engine's cost-based placement beats OS-style paging at
  every DRAM share (ref [11]: the engine knows page utility);
* HTAP isolation: static OLTP-local / OLAP-CXL placement keeps OLTP
  latency flat while an analytical scan storm runs (the "killer app"
  configuration of Sec 3.1).
"""

from repro.core import (
    DbCostPolicy,
    OSPagingPolicy,
    ScaleUpEngine,
    StaticPolicy,
)
from repro.metrics.report import Table
from repro.workloads import YCSBConfig, mixed_htap_trace, ycsb_trace

PAGES = 3_000


def _cfg(seed, ops=20_000):
    return YCSBConfig(mix="B", num_pages=PAGES, num_ops=ops,
                      theta=0.99, think_ns=100.0, seed=seed)


def run_dram_share_sweep():
    rows = []
    for share in (0.10, 0.25, 0.50, 1.00):
        dram_pages = max(1, int(PAGES * share))
        runtimes = {}
        for name, build in (
            ("ssd", lambda: ScaleUpEngine.build(dram_pages=dram_pages)),
            ("os", lambda: ScaleUpEngine.build(
                dram_pages=dram_pages, cxl_pages=PAGES + 8,
                placement=OSPagingPolicy(sample_rate=0.05,
                                         check_interval=1_000))),
            ("db", lambda: ScaleUpEngine.build(
                dram_pages=dram_pages, cxl_pages=PAGES + 8,
                placement=DbCostPolicy(rebalance_interval=2_000))),
        ):
            engine = build()
            # Steady state: warm with the measured trace itself.
            engine.warm_with(ycsb_trace(_cfg(2)))
            runtimes[name] = engine.run(ycsb_trace(_cfg(2))).total_ns
        rows.append((share, runtimes))
    return rows


def run_htap_isolation():
    """OLTP mean latency with and without placement isolation."""
    oltp_pages = 800

    def run(placement):
        engine = ScaleUpEngine.build(
            dram_pages=1_000, cxl_pages=8_000,
            placement=placement, with_storage=False,
        )
        trace = mixed_htap_trace(
            oltp_pages=oltp_pages, olap_pages=6_000,
            oltp_ops=15_000, olap_repeats=1, seed=9,
        )
        report = engine.run(trace)
        oltp_in_dram = sum(
            1 for p in engine.pool.resident_in(0) if p < oltp_pages
        )
        return report, oltp_in_dram

    isolated, iso_dram = run(
        StaticPolicy(lambda p: 0 if p < oltp_pages else 1))
    shared, shr_dram = run(OSPagingPolicy(check_interval=10**9))
    return (isolated, iso_dram), (shared, shr_dram)


def run_experiment(show=False):
    sweep = run_dram_share_sweep()
    table = Table("E5: expansion policies vs DRAM share (Fig 2a)", [
        "DRAM share", "SSD paging", "OS tiering", "DB tiering",
        "SSD/DB", "expected",
    ])
    for share, runtimes in sweep:
        table.add_row(
            f"{share:.0%}",
            f"{runtimes['ssd'] / 1e6:.1f} ms",
            f"{runtimes['os'] / 1e6:.1f} ms",
            f"{runtimes['db'] / 1e6:.1f} ms",
            f"{runtimes['ssd'] / runtimes['db']:.1f}x",
            "DB <= OS << SSD" if share < 1 else "parity",
        )

    (isolated, iso_dram), (shared, shr_dram) = run_htap_isolation()
    table2 = Table("E5b: HTAP isolation (OLTP local, OLAP on CXL)", [
        "placement", "OLTP pages in DRAM", "runtime",
    ])
    table2.add_row("static isolation", iso_dram,
                   f"{isolated.total_ns / 1e6:.1f} ms")
    table2.add_row("shared LRU-like", shr_dram,
                   f"{shared.total_ns / 1e6:.1f} ms")
    if show:
        table.show()
        table2.show()
    return sweep, iso_dram, shr_dram


def test_e5_memory_expansion(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    sweep, iso_dram, shr_dram = run_experiment(show=True)
    for share, runtimes in sweep:
        if share < 1.0:
            assert runtimes["ssd"] > 1.5 * runtimes["db"]
            assert runtimes["db"] <= 1.1 * runtimes["os"]
        else:
            # Everything fits DRAM: the three configurations converge.
            assert runtimes["ssd"] < 1.3 * runtimes["db"]
    assert iso_dram > shr_dram
