"""A5 — data structures spanning tiers (Sec 3.1 research question).

"Should data structures span conventional and CXL memory?" Measured
answer: a B+tree with inner levels in DRAM and leaves in CXL pays a
fraction of the all-CXL lookup penalty while occupying a rounding
error of DRAM — the hybrid dominates whenever DRAM is scarce.
"""

from repro import config
from repro.core.btree import TieredBTree
from repro.core.buffer import Tier, TieredBufferPool
from repro.core.placement import StaticPolicy
from repro.metrics.report import Table
from repro.sim.interconnect import AccessPath, Link
from repro.sim.memory import MemoryDevice

KEYS = 200_000
PROBES = 2_000


def make_pool(classifier):
    tiers = [
        Tier("dram", AccessPath(device=MemoryDevice(config.local_ddr5())),
             8_192),
        Tier("cxl", AccessPath(
            device=MemoryDevice(config.cxl_expander_ddr5()),
            links=(Link(config.cxl_port()),)), 8_192),
    ]
    return TieredBufferPool(tiers=tiers,
                            placement=StaticPolicy(classifier))


def measure(classifier_factory):
    items = [(key, key) for key in range(KEYS)]
    shape_tree = TieredBTree.bulk_build(make_pool(lambda _p: 1), items,
                                        first_page_id=0)
    pool = make_pool(classifier_factory(shape_tree))
    tree = TieredBTree.bulk_build(pool, items, first_page_id=0)
    for key in range(0, KEYS, 61):  # warm every page
        tree.lookup(key)
    start = pool.clock.now
    step = KEYS // PROBES
    for key in range(0, KEYS, step):
        tree.lookup(key)
    mean_ns = (pool.clock.now - start) / PROBES
    return mean_ns, tree, pool


def run_experiment(show=False):
    results = {}
    dram_pages = {}
    for name, factory in (
        ("all-DRAM", lambda _t: (lambda _p: 0)),
        ("hybrid (inner DRAM)", lambda tree: tree.page_classifier(0, 1)),
        ("all-CXL", lambda _t: (lambda _p: 1)),
    ):
        mean_ns, tree, pool = measure(factory)
        results[name] = mean_ns
        dram_pages[name] = pool.tier_residents(0)

    table = Table("A5: B+tree lookup by node placement (Sec 3.1)", [
        "placement", "mean lookup", "DRAM pages held",
        "penalty vs all-DRAM",
    ])
    base = results["all-DRAM"]
    for name, mean_ns in results.items():
        table.add_row(name, f"{mean_ns:.0f} ns", dram_pages[name],
                      f"{mean_ns / base - 1:+.0%}")
    if show:
        table.show()
    return results, dram_pages


def test_a5_index_placement(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    results, dram_pages = run_experiment(show=True)
    dram = results["all-DRAM"]
    hybrid = results["hybrid (inner DRAM)"]
    cxl = results["all-CXL"]
    assert dram < hybrid < cxl
    assert (hybrid - dram) < 0.5 * (cxl - dram)
    assert dram_pages["hybrid (inner DRAM)"] < \
        dram_pages["all-DRAM"] / 20
