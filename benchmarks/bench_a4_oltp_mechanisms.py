"""A7 — OLTP mechanisms over the new hierarchy (Sec 4 + Sec 2.6/3.2).

Three mechanisms the paper says CXL can improve:

* **logging** — group-commit latency/throughput by durability
  backend: NVMe vs CXL-NVM vs RDMA-replicated vs battery DRAM;
* **timestamps** — a shared fetch-and-add in CXL memory vs a local
  atomic vs an RPC timestamp server;
* **failover** — end-to-end downtime when an engine dies: RAS +
  warm attach + CXL-NVM replay vs timeouts + cold NVMe restart.
"""

from repro.core.failover import FailoverOrchestrator
from repro.core.timestamps import compare_oracles
from repro.core.wal import (
    BatteryDRAMLogBackend,
    CXLNVMLogBackend,
    NVMeLogBackend,
    RDMAReplicatedLogBackend,
    WriteAheadLog,
)
from repro.metrics.report import Table
from repro.storage.disk import StorageDevice
from repro.units import fmt_ns

RECORD_BYTES = 256
TXNS = 4_000


def run_wal_comparison():
    rows = []
    for backend in (
        NVMeLogBackend(StorageDevice()),
        RDMAReplicatedLogBackend.build(replicas=2),
        CXLNVMLogBackend.build(),
        BatteryDRAMLogBackend.build(),
    ):
        log = WriteAheadLog(backend, group_size=8)
        now = 0.0
        for i in range(TXNS):
            now = i * 500.0  # a txn every 500 ns
            log.append(RECORD_BYTES, now)
        log.flush(now)
        rows.append((
            backend.name,
            log.commit_latency.mean,
            log.throughput_bound_tps(RECORD_BYTES),
        ))
    return rows


def run_experiment(show=False):
    wal_rows = run_wal_comparison()
    table = Table("A7: log placement (group commit of 8 x 256 B)", [
        "backend", "mean commit latency", "throughput bound",
    ])
    for name, latency, bound in wal_rows:
        table.add_row(name, fmt_ns(latency), f"{bound:,.0f} tps")

    oracle_rows = compare_oracles(hosts=4, draws=2_000,
                                  rpc_batch=1).rows
    table2 = Table("A7b: timestamp oracle (4 contending hosts)", [
        "oracle", "cost per timestamp", "throughput bound",
    ])
    for name, cost, bound in oracle_rows:
        table2.add_row(name, fmt_ns(cost), f"{bound:,.0f} ts/s")

    pooled, classic, ratio = FailoverOrchestrator().compare()
    table3 = Table("A7c: failover downtime (2 GiB working set)", [
        "strategy", "detection", "state recovery", "log replay",
        "total downtime",
    ])
    for outcome in (classic, pooled):
        table3.add_row(
            outcome.name,
            fmt_ns(outcome.detection_ns),
            fmt_ns(outcome.state_recovery_ns),
            fmt_ns(outcome.log_replay_ns),
            fmt_ns(outcome.total_downtime_ns),
        )
    if show:
        table.show()
        table2.show()
        table3.show()
    return wal_rows, oracle_rows, ratio


def test_a7_oltp_mechanisms(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    wal_rows, oracle_rows, failover_ratio = run_experiment(show=True)
    latency = {name: lat for name, lat, _b in wal_rows}
    assert latency["cxl-nvm"] < latency["rdma-replicated"] \
        < latency["nvme"]
    costs = {name: cost for name, cost, _b in oracle_rows}
    assert costs["local-atomic"] < costs["cxl-shared"] < costs["rpc"]
    # Pooled failover is an order of magnitude faster end to end; the
    # residual is log *apply* work, which both strategies share — the
    # detection+state-recovery part shrinks by >1000x.
    assert failover_ratio > 10
    pooled, classic, _ = FailoverOrchestrator().compare()
    non_replay_pooled = pooled.detection_ns + pooled.state_recovery_ns
    non_replay_classic = (classic.detection_ns
                          + classic.state_recovery_ns)
    assert non_replay_classic > 1_000 * non_replay_pooled
