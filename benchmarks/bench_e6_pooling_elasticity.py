"""E6 — Memory pooling and elasticity, Fig 2(b) (paper Sec 3.2).

Shapes reproduced:
* stranded memory: per-server provisioning strands a large share of
  installed DRAM under skewed demand; a rack pool sized for aggregate
  demand needs materially less memory (Pond's provisioning argument);
* warm spawn: an engine attached to a pooled buffer pool answers at
  full speed immediately — no warm-up phase;
* migration: moving an engine whose state lives in the pool is a
  remap (microseconds), not a state copy (hundreds of ms over RDMA).
"""

import random

from repro.core.elastic import DemandSeries, ElasticCluster, StrandingModel
from repro.metrics.report import Table
from repro.units import GIB, fmt_bytes, fmt_ns
from repro.workloads import YCSBConfig, ycsb_trace

DATASET_PAGES = 2_000


def run_stranding():
    rng = random.Random(31)
    # Skewed per-server demands, as hyperscalers report.
    demands = [int(rng.choice([6, 10, 18, 30, 52, 60]) * GIB)
               for _ in range(16)]
    return StrandingModel(
        demands_bytes=demands, per_server_dram=64 * GIB,
        base_dram=16 * GIB,
    )


def run_elasticity():
    cluster = ElasticCluster(dataset_pages=DATASET_PAGES)
    cfg = YCSBConfig(mix="C", num_pages=DATASET_PAGES, num_ops=10_000,
                     theta=0.9, think_ns=0, seed=7)
    cold, spawn_cold = cluster.spawn_engine(
        "cold", local_pages=256, slice_pages=DATASET_PAGES + 64)
    r_cold = cold.run(ycsb_trace(cfg))
    slice_ = cluster.detach_engine(cold)
    warm, spawn_warm = cluster.spawn_engine(
        "warm", local_pages=256, warm_from=slice_)
    r_warm = warm.run(ycsb_trace(cfg))
    migration_pooled = cluster.migration_time_ns(8 * GIB, pooled=True)
    migration_copy = cluster.migration_time_ns(8 * GIB, pooled=False)
    return (r_cold, r_warm, spawn_cold, spawn_warm,
            migration_pooled, migration_copy)


def run_experiment(show=False):
    model = run_stranding()
    (r_cold, r_warm, _sc, spawn_warm,
     mig_pool, mig_copy) = run_elasticity()

    table = Table("E6: pooling and elasticity (Fig 2b, Sec 3.2)", [
        "metric", "paper claim", "measured",
    ])
    table.add_row("per-server DRAM installed", "-",
                  fmt_bytes(model.provisioned_bytes))
    table.add_row("stranded under per-server", "major inefficiency",
                  f"{model.stranded_fraction:.0%}")
    table.add_row("pooled total installed", "less memory needed",
                  fmt_bytes(model.pooled_total_bytes))
    table.add_row("memory saved by pooling", "-",
                  f"{model.savings_fraction:.0%}")
    table.add_row("cold-engine run", "needs warm-up",
                  fmt_ns(r_cold.total_ns))
    table.add_row("warm-spawned engine run", "immediately ready",
                  fmt_ns(r_warm.total_ns))
    table.add_row("warm-up penalty avoided", "-",
                  f"{r_cold.total_ns / r_warm.total_ns:.1f}x")
    table.add_row("warm spawn time", "no state load",
                  fmt_ns(spawn_warm))
    table.add_row("migration (state in pool)", "far simpler",
                  fmt_ns(mig_pool))
    table.add_row("migration (copy 8 GiB/RDMA)", "-",
                  fmt_ns(mig_copy))

    # Pond's sweep: DRAM savings vs pool fraction over a diurnal fleet.
    curve = DemandSeries.diurnal().savings_curve()
    table2 = Table("E6b: DRAM savings vs pool fraction (Pond curve)", [
        "pool fraction", "DRAM savings", "paper (Pond)",
    ])
    for fraction, savings in curve:
        note = "~7-9% at realistic fractions" \
            if 0.25 <= fraction <= 0.5 else "-"
        table2.add_row(f"{fraction:.0%}", f"{savings:.1%}", note)
    if show:
        table.show()
        table2.show()
    return model, r_cold, r_warm, mig_pool, mig_copy, curve


def test_e6_pooling_elasticity(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    model, r_cold, r_warm, mig_pool, mig_copy, curve = \
        run_experiment(show=True)
    assert model.stranded_fraction > 0.3
    assert model.savings_fraction > 0.2
    assert r_cold.total_ns > 2 * r_warm.total_ns
    assert mig_copy > 100 * mig_pool
    savings = dict(curve)
    assert 0.03 < savings[0.5] < 0.25  # Pond's realistic band
    assert savings[1.0] > savings[0.25] > savings[0.0] == 0.0
