"""cxlmem: CXL rack-scale memory simulation and a tiered scale-up
database engine.

A reproduction of Lerner & Alonso, *CXL and the Return of Scale-Up
Database Engines* (PVLDB 17(10), 2024). The package layers:

* :mod:`repro.sim` — the hardware substrate (memory devices, CXL
  fabric, coherence, NUMA, RDMA baseline, failures);
* :mod:`repro.storage` — pages, block devices, page files;
* :mod:`repro.core` — the CXL-tiered buffer pool, placement policies,
  pooling/elasticity, rack-scale shared engine vs scale-out baseline,
  near-data processing, heterogeneous composition;
* :mod:`repro.query` — a mini relational engine (scans, joins, sorts,
  TPC-H-shaped queries);
* :mod:`repro.workloads` — YCSB, TPC-C-lite, scans, Zipf, and the
  Pond-style cloud-workload population;
* :mod:`repro.metrics` — streaming stats and report tables.

Quickstart::

    from repro.core import ScaleUpEngine, DbCostPolicy
    from repro.workloads import ycsb_trace, YCSBConfig

    engine = ScaleUpEngine.build(dram_pages=2_000, cxl_pages=20_000,
                                 placement=DbCostPolicy())
    report = engine.run(ycsb_trace(YCSBConfig(mix="B")))
    print(report)
"""

from . import config, errors, units
from .core import ScaleUpEngine
from .version import __version__

__all__ = ["ScaleUpEngine", "__version__", "config", "errors", "units"]
