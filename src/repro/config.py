"""Calibrated device and link presets.

Every latency/bandwidth constant the simulator uses lives here, together
with the source it was calibrated against:

* Intel CXL characterization (Sun et al., MICRO'23) — paper ref [52]:
  CXL load latency ~= 1.35x remote-NUMA load latency; bandwidth
  efficiency ~0.70 for NUMA links vs ~0.46 for CXL links.
* Meta TPP (Maruf et al., ASPLOS'23) — paper ref [34]: expander
  effective bandwidth around 64 GB/s; latency slightly above NUMA.
* Microsoft Pond (Li et al., ASPLOS'23) — paper ref [31]: pool access
  latency in the 200-400 ns range.
* NVIDIA ConnectX-7 datasheet — paper ref [37]: 400 Gb/s NIC (50 GB/s)
  on a PCIe Gen5 x16 slot (64 GB/s) — >20% of the slot unused.
* PCI-SIG roadmap — paper refs [43, 44]: per-lane rates through Gen7.

Units follow :mod:`repro.units`: ns, bytes, bytes/ns (== GB/s).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .units import GBPS, GIB, us


class MemoryKind(enum.Enum):
    """Broad classes of byte-addressable memory devices."""

    LOCAL_DRAM = "local_dram"
    REMOTE_NUMA = "remote_numa"
    CXL_DRAM = "cxl_dram"
    CXL_HBM = "cxl_hbm"
    CXL_NVM = "cxl_nvm"


class StorageKind(enum.Enum):
    """Block storage classes used as the bottom of the hierarchy."""

    NVME_SSD = "nvme_ssd"
    SATA_SSD = "sata_ssd"
    HDD = "hdd"


@dataclass(frozen=True)
class MemorySpec:
    """Performance envelope of one byte-addressable memory device.

    ``load_latency_ns`` / ``store_latency_ns`` are unloaded single-access
    latencies for a cache line. ``peak_bandwidth`` is the raw device
    bandwidth; ``load_efficiency`` / ``store_efficiency`` scale it to the
    *achievable* streaming bandwidth through the access path (the Intel
    study's 70%-vs-46% observation lives here).
    """

    name: str
    kind: MemoryKind
    capacity_bytes: int
    load_latency_ns: float
    store_latency_ns: float
    peak_bandwidth: float  # bytes/ns
    load_efficiency: float = 1.0
    store_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if self.load_latency_ns <= 0 or self.store_latency_ns <= 0:
            raise ConfigError(f"{self.name}: latencies must be positive")
        if self.peak_bandwidth <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        for eff in (self.load_efficiency, self.store_efficiency):
            if not 0.0 < eff <= 1.0:
                raise ConfigError(
                    f"{self.name}: efficiency must be in (0, 1], got {eff}"
                )

    @property
    def effective_load_bandwidth(self) -> float:
        """Achievable streaming read bandwidth (bytes/ns)."""
        return self.peak_bandwidth * self.load_efficiency

    @property
    def effective_store_bandwidth(self) -> float:
        """Achievable streaming write bandwidth (bytes/ns)."""
        return self.peak_bandwidth * self.store_efficiency

    def with_capacity(self, capacity_bytes: int) -> "MemorySpec":
        """Return a copy of this spec with a different capacity."""
        return replace(self, capacity_bytes=capacity_bytes)


@dataclass(frozen=True)
class StorageSpec:
    """Performance envelope of a block storage device."""

    name: str
    kind: StorageKind
    capacity_bytes: int
    read_latency_ns: float
    write_latency_ns: float
    read_bandwidth: float   # bytes/ns
    write_bandwidth: float  # bytes/ns

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if min(self.read_latency_ns, self.write_latency_ns) <= 0:
            raise ConfigError(f"{self.name}: latencies must be positive")
        if min(self.read_bandwidth, self.write_bandwidth) <= 0:
            raise ConfigError(f"{self.name}: bandwidths must be positive")


class PCIeGeneration(enum.IntEnum):
    """PCIe generations with their effective per-lane bandwidth."""

    GEN3 = 3
    GEN4 = 4
    GEN5 = 5
    GEN6 = 6
    GEN7 = 7


#: Effective per-lane bandwidth in bytes/ns (== GB/s), after encoding
#: overhead. x16 Gen7 == 242 GB/s, matching Sec 6 of the paper.
PCIE_LANE_BANDWIDTH: dict[PCIeGeneration, float] = {
    PCIeGeneration.GEN3: 0.985 * GBPS,
    PCIeGeneration.GEN4: 1.969 * GBPS,
    PCIeGeneration.GEN5: 3.938 * GBPS,
    PCIeGeneration.GEN6: 7.563 * GBPS,
    PCIeGeneration.GEN7: 15.125 * GBPS,
}


def pcie_bandwidth(gen: PCIeGeneration, lanes: int) -> float:
    """Aggregate bandwidth of a PCIe slot (bytes/ns)."""
    if lanes not in (1, 2, 4, 8, 16):
        raise ConfigError(f"invalid PCIe lane count: {lanes}")
    return PCIE_LANE_BANDWIDTH[gen] * lanes


@dataclass(frozen=True)
class LinkSpec:
    """One hop of an access path: latency plus a shared bandwidth pipe.

    ``protocol_efficiency`` captures how much of the raw pipe the protocol
    exposes to payload (e.g. a 400 Gb NIC delivering 50 GB/s over a
    64 GB/s PCIe Gen5 x16 slot has efficiency 50/64 ~= 0.78).
    """

    name: str
    latency_ns: float
    raw_bandwidth: float  # bytes/ns
    protocol_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_ns < 0:
            raise ConfigError(f"{self.name}: latency must be non-negative")
        if self.raw_bandwidth <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if not 0.0 < self.protocol_efficiency <= 1.0:
            raise ConfigError(
                f"{self.name}: efficiency must be in (0, 1], got"
                f" {self.protocol_efficiency}"
            )

    @property
    def effective_bandwidth(self) -> float:
        """Payload bandwidth exposed by the protocol (bytes/ns)."""
        return self.raw_bandwidth * self.protocol_efficiency


# ---------------------------------------------------------------------------
# Calibrated latency anchors (Sec 2.4 of the paper).
# ---------------------------------------------------------------------------

#: Unloaded local DRAM load latency on a modern server.
LOCAL_DRAM_LOAD_NS = 80.0
#: Remote-socket (one UPI hop) NUMA load latency.
REMOTE_NUMA_LOAD_NS = 140.0
#: Intel MICRO'23: a CXL load takes ~35% longer than a remote NUMA load.
CXL_LOAD_OVER_NUMA = 1.35
#: Direct-attached CXL expander load latency (1.35 x 140 = 189 ns,
#: inside Pond's 200-400 ns envelope once a switch hop is added).
CXL_DRAM_LOAD_NS = REMOTE_NUMA_LOAD_NS * CXL_LOAD_OVER_NUMA
#: Stores present "slightly lower but equivalent" overheads (Sec 2.4).
CXL_STORE_OVER_NUMA = 1.25

#: Intel MICRO'23 streaming-load efficiencies.
NUMA_LOAD_EFFICIENCY = 0.70
CXL_LOAD_EFFICIENCY = 0.46

#: Added latency of traversing one CXL 2.0 switch.
CXL_SWITCH_LATENCY_NS = 70.0
#: Coherence-domain diameter limit (Sec 2.6).
CXL_MAX_COHERENT_DEVICES = 4096

#: RDMA verbs one-sided read floor (Sec 2.5: "a few microseconds").
RDMA_BASE_LATENCY_NS = us(2.0)


# ---------------------------------------------------------------------------
# Memory presets.
# ---------------------------------------------------------------------------

def local_ddr5(capacity_bytes: int = 64 * GIB, channels: int = 8) -> MemorySpec:
    """Host-attached DDR5-4800: 38.4 GB/s per channel."""
    return MemorySpec(
        name=f"ddr5-local-{channels}ch",
        kind=MemoryKind.LOCAL_DRAM,
        capacity_bytes=capacity_bytes,
        load_latency_ns=LOCAL_DRAM_LOAD_NS,
        store_latency_ns=LOCAL_DRAM_LOAD_NS * 0.95,
        peak_bandwidth=38.4 * GBPS * channels,
        load_efficiency=0.85,
        store_efficiency=0.75,
    )


def remote_numa_ddr5(
    capacity_bytes: int = 64 * GIB, channels: int = 8
) -> MemorySpec:
    """The other socket's DDR5, reached over a UPI-style link."""
    return MemorySpec(
        name=f"ddr5-remote-numa-{channels}ch",
        kind=MemoryKind.REMOTE_NUMA,
        capacity_bytes=capacity_bytes,
        load_latency_ns=REMOTE_NUMA_LOAD_NS,
        store_latency_ns=REMOTE_NUMA_LOAD_NS * 0.95,
        peak_bandwidth=38.4 * GBPS * channels,
        load_efficiency=NUMA_LOAD_EFFICIENCY,
        store_efficiency=NUMA_LOAD_EFFICIENCY * 0.9,
    )


def cxl_expander_ddr5(
    capacity_bytes: int = 256 * GIB, channels: int = 4
) -> MemorySpec:
    """A direct-attached CXL 1.1/2.0 Type 3 expander backed by DDR5.

    Four DDR5 channels behind a x8 Gen5 port: raw channel bandwidth
    153.6 GB/s, but the achievable streaming rate is gated by the CXL
    link efficiency (0.46), landing near Meta's observed ~64 GB/s.
    """
    return MemorySpec(
        name=f"cxl-expander-ddr5-{channels}ch",
        kind=MemoryKind.CXL_DRAM,
        capacity_bytes=capacity_bytes,
        load_latency_ns=CXL_DRAM_LOAD_NS,
        store_latency_ns=REMOTE_NUMA_LOAD_NS * 0.95 * CXL_STORE_OVER_NUMA,
        peak_bandwidth=38.4 * GBPS * channels,
        load_efficiency=CXL_LOAD_EFFICIENCY,
        store_efficiency=CXL_LOAD_EFFICIENCY * 0.95,
    )


def cxl_expander_ddr4_recycled(capacity_bytes: int = 512 * GIB) -> MemorySpec:
    """Recycled previous-generation DDR4 behind CXL (Sec 3.1: the memory
    in the expander need not match the host generation)."""
    return MemorySpec(
        name="cxl-expander-ddr4-recycled",
        kind=MemoryKind.CXL_DRAM,
        capacity_bytes=capacity_bytes,
        load_latency_ns=CXL_DRAM_LOAD_NS * 1.10,
        store_latency_ns=CXL_DRAM_LOAD_NS * 1.05,
        peak_bandwidth=25.6 * GBPS * 4,
        load_efficiency=CXL_LOAD_EFFICIENCY,
        store_efficiency=CXL_LOAD_EFFICIENCY * 0.95,
    )


def cxl_expander_hbm(capacity_bytes: int = 32 * GIB) -> MemorySpec:
    """An HBM-backed expander (Sec 2.4: "nothing prevents an expander
    from using HBM instead of DDR memory")."""
    return MemorySpec(
        name="cxl-expander-hbm",
        kind=MemoryKind.CXL_HBM,
        capacity_bytes=capacity_bytes,
        load_latency_ns=CXL_DRAM_LOAD_NS * 0.95,
        store_latency_ns=CXL_DRAM_LOAD_NS * 0.90,
        peak_bandwidth=410.0 * GBPS,
        load_efficiency=CXL_LOAD_EFFICIENCY,
        store_efficiency=CXL_LOAD_EFFICIENCY * 0.95,
    )


def cxl_expander_nvm(capacity_bytes: int = 2048 * GIB) -> MemorySpec:
    """A non-volatile (CMM-H-style) expander mixing persistence and
    byte-addressability (Sec 3.3, ref [48])."""
    return MemorySpec(
        name="cxl-expander-nvm",
        kind=MemoryKind.CXL_NVM,
        capacity_bytes=capacity_bytes,
        load_latency_ns=350.0,
        store_latency_ns=900.0,
        peak_bandwidth=16.0 * GBPS,
        load_efficiency=CXL_LOAD_EFFICIENCY,
        store_efficiency=0.30,
    )


# ---------------------------------------------------------------------------
# Storage presets.
# ---------------------------------------------------------------------------

def nvme_ssd(capacity_bytes: int = 2048 * GIB) -> StorageSpec:
    """Datacenter NVMe: ~10 us random 4 KiB read, ~7 GB/s sequential."""
    return StorageSpec(
        name="nvme-ssd",
        kind=StorageKind.NVME_SSD,
        capacity_bytes=capacity_bytes,
        read_latency_ns=us(10.0),
        write_latency_ns=us(20.0),
        read_bandwidth=7.0 * GBPS,
        write_bandwidth=5.0 * GBPS,
    )


def sata_ssd(capacity_bytes: int = 2048 * GIB) -> StorageSpec:
    """SATA SSD: ~80 us access, ~0.5 GB/s."""
    return StorageSpec(
        name="sata-ssd",
        kind=StorageKind.SATA_SSD,
        capacity_bytes=capacity_bytes,
        read_latency_ns=us(80.0),
        write_latency_ns=us(90.0),
        read_bandwidth=0.55 * GBPS,
        write_bandwidth=0.50 * GBPS,
    )


def hdd(capacity_bytes: int = 8192 * GIB) -> StorageSpec:
    """Nearline HDD: ~4 ms seek+rotate, ~0.25 GB/s sequential."""
    return StorageSpec(
        name="hdd",
        kind=StorageKind.HDD,
        capacity_bytes=capacity_bytes,
        read_latency_ns=4.0e6,
        write_latency_ns=4.5e6,
        read_bandwidth=0.26 * GBPS,
        write_bandwidth=0.24 * GBPS,
    )


# ---------------------------------------------------------------------------
# Link presets.
# ---------------------------------------------------------------------------

def cxl_port(
    gen: PCIeGeneration = PCIeGeneration.GEN5, lanes: int = 16
) -> LinkSpec:
    """A CXL port: full PCIe slot bandwidth (Sec 2.5: "CXL adapters
    utilize the full bandwidth" of the lanes).

    Convention: :class:`MemorySpec` latencies are *end to end* as seen
    from a directly attached host — they already include the port and
    expander-controller latency. Port links therefore contribute
    **bandwidth only** (latency 0); additional fabric latency comes
    from switch traversals (:func:`cxl_switch_hop`).
    """
    return LinkSpec(
        name=f"cxl-gen{int(gen)}x{lanes}",
        latency_ns=0.0,
        raw_bandwidth=pcie_bandwidth(gen, lanes),
        protocol_efficiency=1.0,
    )


def rdma_nic_400g(gen: PCIeGeneration = PCIeGeneration.GEN5) -> LinkSpec:
    """A 400 Gb/s RDMA NIC on a Gen5 x16 slot.

    Sec 2.5 / ref [37]: the NIC delivers 50 GB/s out of the slot's
    64 GB/s — over 20% of the PCIe bandwidth never becomes network
    bandwidth. The latency floor is the verbs round-trip (~2 us).
    """
    slot = pcie_bandwidth(gen, 16)
    return LinkSpec(
        name="rdma-nic-400g",
        latency_ns=RDMA_BASE_LATENCY_NS,
        raw_bandwidth=slot,
        protocol_efficiency=50.0 * GBPS / slot,
    )


def numa_link() -> LinkSpec:
    """Socket-to-socket UPI-style link."""
    return LinkSpec(
        name="upi",
        latency_ns=REMOTE_NUMA_LOAD_NS - LOCAL_DRAM_LOAD_NS,
        raw_bandwidth=62.4 * GBPS,
        protocol_efficiency=NUMA_LOAD_EFFICIENCY,
    )


def cxl_switch_hop() -> LinkSpec:
    """Traversal of one CXL 2.0 switch."""
    return LinkSpec(
        name="cxl-switch",
        latency_ns=CXL_SWITCH_LATENCY_NS,
        raw_bandwidth=pcie_bandwidth(PCIeGeneration.GEN5, 16),
        protocol_efficiency=1.0,
    )


def ethernet_tcp_25g() -> LinkSpec:
    """Conventional kernel-TCP 25 GbE path, the software baseline for
    the RAS experiment (E10)."""
    return LinkSpec(
        name="tcp-25g",
        latency_ns=us(15.0),
        raw_bandwidth=3.125 * GBPS,
        protocol_efficiency=0.9,
    )


# ---------------------------------------------------------------------------
# Bundled scenario configuration.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HostSpec:
    """A compute host: cores plus its locally attached memory."""

    name: str
    cores: int = 32
    dram: MemorySpec = field(default_factory=local_ddr5)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError(f"{self.name}: cores must be positive")
