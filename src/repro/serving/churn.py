"""Tenant arrival/departure churn against pooled CXL capacity.

Pond's population is not static: tenants arrive, hold pooled memory
for a lifetime, and leave. This module draws a deterministic seeded
Poisson arrival process and exponential lifetimes into the columnar
:class:`~repro.serving.tenants.TenantTable` (one bulk inverse-CDF draw
per column, CPython-faithful stream), then plays the population
through the discrete-event :class:`~repro.sim.events.Simulator`
against a :class:`~repro.core.elastic.PagePool`: admission waits when
the pool is full, departures return pages after a reclamation delay,
and an optional :class:`~repro.core.autoscale.ExpanderScaler` grows or
shrinks the pool as backlog builds and drains — pool occupancy,
admission waits, and reclamation are *simulated*, not assumed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..core.autoscale import ExpanderScaler
from ..core.elastic import PagePool
from ..errors import ConfigError
from ..sim.events import Simulator
from ..units import SECOND, us
from ..workloads.mtrand import PyRandomStream
from .histogram import MergeableHistogram
from .tenants import TenantTable


@dataclass(frozen=True)
class ChurnConfig:
    """Arrival and lifetime process parameters."""

    arrival_rate_per_s: float = 2_000.0
    mean_lifetime_s: float = 60.0
    seed: int = 11

    def __post_init__(self) -> None:
        if self.arrival_rate_per_s <= 0:
            raise ConfigError("arrival rate must be positive")
        if self.mean_lifetime_s <= 0:
            raise ConfigError("mean lifetime must be positive")


def assign_churn(table: TenantTable, cfg: ChurnConfig) -> None:
    """Fill ``arrival_ns``/``departure_ns`` with one vectorised draw.

    Inter-arrival gaps are Exponential(rate) and lifetimes
    Exponential(mean), both via inverse-CDF over the CPython-faithful
    uniform stream — ``-log(1 - u)`` of consecutive stream draws, so
    the process is reproducible bit for bit from the seed alone.
    """
    n = len(table)
    stream = PyRandomStream(cfg.seed)
    u_gap = stream.sample(n)
    u_life = stream.sample(n)
    gaps_ns = -np.log1p(-u_gap) * (SECOND / cfg.arrival_rate_per_s)
    table.arrival_ns[:] = np.cumsum(gaps_ns)
    table.departure_ns[:] = table.arrival_ns + (
        -np.log1p(-u_life) * (cfg.mean_lifetime_s * SECOND))


def wait_histogram() -> MergeableHistogram:
    """Admission-wait grid: 100 ns to 100 s, ~5% resolution."""
    return MergeableHistogram(np.geomspace(100.0, 1e11, 421))


@dataclass
class ChurnReport:
    """Outcome of playing a churn process against the pool."""

    tenants: int = 0
    admitted: int = 0
    departed: int = 0
    waited: int = 0          # admitted only after queueing
    rejected: int = 0        # working set exceeds max pool capacity
    peak_queue: int = 0
    peak_leased_pages: int = 0
    final_capacity_pages: int = 0
    grows: int = 0
    shrinks: int = 0
    horizon_ns: float = 0.0
    wait_hist: MergeableHistogram = field(default_factory=wait_histogram)

    def wait_quantile(self, q: float) -> float:
        """Nearest-rank admission wait over *admitted* tenants (ns)."""
        if self.wait_hist.total == 0:
            return 0.0
        return self.wait_hist.quantile(q)


class ChurnSimulator:
    """Admit/evict a tenant table against a page pool, event-driven.

    Tenants are admitted in arrival order; a tenant that does not fit
    joins a FIFO queue (strict head-of-line: admission order never
    depends on tenant size). A departure returns the tenant's pages
    ``reclaim_ns`` after its lifetime ends — scrubbing and unmapping
    are not free — and then drains the queue. The optional scaler is
    consulted whenever backlog appears or a departure frees pages.
    """

    def __init__(self, table: TenantTable, pool: PagePool,
                 scaler: ExpanderScaler | None = None,
                 reclaim_ns: float = us(200.0),
                 sim: Simulator | None = None) -> None:
        if reclaim_ns < 0:
            raise ConfigError("reclaim_ns must be non-negative")
        self.table = table
        self.pool = pool
        self.scaler = scaler
        self.reclaim_ns = reclaim_ns
        self.sim = sim or Simulator()
        self._order = np.argsort(table.arrival_ns, kind="stable")
        self._waiting: deque[int] = deque()
        self._queued_pages = 0
        self.report = ChurnReport(tenants=len(table))

    # -- capacity -----------------------------------------------------

    def _max_capacity(self) -> int:
        if self.scaler is None:
            return self.pool.capacity_pages
        return self.scaler.max_expanders * self.scaler.pages_per_expander

    def _consult_scaler(self) -> None:
        scaler = self.scaler
        if scaler is None:
            return
        scaler.decide(self.sim.now, self._queued_pages,
                      self.pool.leased_pages)
        if scaler.capacity_pages != self.pool.capacity_pages:
            self.pool.resize(scaler.capacity_pages)

    # -- events -------------------------------------------------------

    def _admit(self, i: int) -> None:
        self.pool.lease(i, int(self.table.working_set_pages[i]))
        wait_ns = self.sim.now - float(self.table.arrival_ns[i])
        self.report.admitted += 1
        if wait_ns > 0:
            self.report.waited += 1
        self.report.wait_hist.add(wait_ns)
        lifetime_ns = float(self.table.departure_ns[i]
                            - self.table.arrival_ns[i])
        self.sim.after(lifetime_ns + self.reclaim_ns, self._release, i)

    def _drain_queue(self) -> None:
        while self._waiting:
            head = self._waiting[0]
            pages = int(self.table.working_set_pages[head])
            if pages > self.pool.free_pages:
                break
            self._waiting.popleft()
            self._queued_pages -= pages
            self._admit(head)

    def _arrive(self, pos: int) -> None:
        i = int(self._order[pos])
        if pos + 1 < len(self._order):
            self.sim.at(float(self.table.arrival_ns[self._order[pos + 1]]),
                        self._arrive, pos + 1)
        pages = int(self.table.working_set_pages[i])
        if pages > self._max_capacity():
            self.report.rejected += 1
            return
        self._waiting.append(i)
        self._queued_pages += pages
        self._drain_queue()
        if self._waiting:
            self._consult_scaler()
            self._drain_queue()
            self.report.peak_queue = max(self.report.peak_queue,
                                         len(self._waiting))

    def _release(self, i: int) -> None:
        self.pool.release(i)
        self.report.departed += 1
        self._consult_scaler()
        self._drain_queue()

    # -- the run ------------------------------------------------------

    def run(self, max_events: int | None = None) -> ChurnReport:
        """Play the whole table; returns the churn accounting."""
        if len(self.table) == 0:
            raise ConfigError("cannot churn an empty tenant table")
        self.sim.at(float(self.table.arrival_ns[self._order[0]]),
                    self._arrive, 0)
        self.sim.run(max_events=max_events or max(
            10_000_000, 4 * len(self.table)))
        report = self.report
        report.peak_leased_pages = self.pool.peak_leased_pages
        report.final_capacity_pages = self.pool.capacity_pages
        report.horizon_ns = self.sim.now
        if self.scaler is not None:
            report.grows = self.scaler.grows
            report.shrinks = self.scaler.shrinks
        return report
