"""Million-tenant serving subsystem (Sec 2.5, Pond at production scale).

The paper grounds CXL pooling economics in the *distribution* of
slowdowns across a large tenant population. This package scales the
158-workload ``cloudmix`` population to 10^5–10^6 tenants in a single
sweep cell:

* :class:`TenantTable` — columnar structure-of-arrays population; a
  million tenants never become a million ``CloudWorkload`` objects.
* :mod:`.churn` — deterministic Poisson arrivals and lifetimes driven
  through the discrete-event simulator against pooled CXL capacity.
* :class:`MergeableHistogram` — exact integer-count histograms whose
  merges are order-invariant, making sharded percentile CDFs
  byte-identical across shard counts and worker fan-out.
* :mod:`.executor` — the sharded streaming executor that folds
  per-tenant slowdowns into those histograms without materialising
  per-tenant results.
"""

from .churn import ChurnConfig, ChurnReport, ChurnSimulator, assign_churn
from .histogram import MergeableHistogram, slowdown_histogram
from .executor import BucketKernel, ServingConfig, ServingReport, run_serving
from .tenants import TenantTable

__all__ = [
    "BucketKernel",
    "ChurnConfig",
    "ChurnReport",
    "ChurnSimulator",
    "MergeableHistogram",
    "ServingConfig",
    "ServingReport",
    "TenantTable",
    "assign_churn",
    "run_serving",
    "slowdown_histogram",
]
