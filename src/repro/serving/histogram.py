"""Exact mergeable histograms for sharded percentile folds.

``metrics.stats.Histogram`` accumulates float sums, so merging shard
histograms in different orders can differ in the last bit — useless
for a byte-identical contract. :class:`MergeableHistogram` stores only
**int64 bucket counts** over a fixed edge grid: adds are exact, merge
is integer addition (commutative and associative), and quantiles are
nearest-rank lookups that return bucket edges. Any partition of a
population into shards therefore folds to the *same bytes*, regardless
of shard count, merge order, or worker fan-out.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class MergeableHistogram:
    """Fixed-edge histogram with exact integer counts.

    ``edges`` must be strictly increasing. Bucket ``0`` counts values
    at or below ``edges[0]``; bucket ``i`` (1-based) counts values in
    ``(edges[i-1], edges[i]]``; the last bucket counts values above
    ``edges[-1]``. Quantiles report the upper edge of the bucket the
    nearest-rank observation fell in — a deterministic grid value, not
    an interpolation.
    """

    __slots__ = ("edges", "counts")

    def __init__(self, edges: np.ndarray,
                 counts: np.ndarray | None = None) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or len(edges) < 2:
            raise ConfigError("histogram needs at least two edges")
        if not (np.diff(edges) > 0).all():
            raise ConfigError("histogram edges must be strictly increasing")
        self.edges = edges
        if counts is None:
            counts = np.zeros(len(edges) + 1, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != (len(edges) + 1,):
                raise ConfigError(
                    f"counts must have {len(edges) + 1} buckets")
            if (counts < 0).any():
                raise ConfigError("bucket counts must be non-negative")
        self.counts = counts

    # -- folding ------------------------------------------------------

    def add_many(self, values: np.ndarray) -> None:
        """Fold a chunk of observations in one vectorised pass."""
        values = np.asarray(values, dtype=np.float64)
        idx = np.searchsorted(self.edges, values, side="left")
        self.counts += np.bincount(idx, minlength=len(self.counts))

    def add(self, value: float) -> None:
        self.add_many(np.array([value]))

    def merge(self, other: "MergeableHistogram") -> "MergeableHistogram":
        """Exact in-place merge; requires an identical edge grid."""
        if (self.edges.shape != other.edges.shape
                or not (self.edges == other.edges).all()):
            raise ConfigError("cannot merge histograms with different edges")
        self.counts += other.counts
        return self

    def copy(self) -> "MergeableHistogram":
        return MergeableHistogram(self.edges, self.counts.copy())

    # -- reading ------------------------------------------------------

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile as a bucket upper edge.

        The underflow bucket reports ``edges[0]`` and the overflow
        bucket ``inf`` (the histogram only knows the value escaped the
        grid). Raises on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        total = self.total
        if total == 0:
            raise ConfigError("quantile of an empty histogram")
        rank = max(1, int(np.ceil(q * total)))
        bucket = int(np.searchsorted(np.cumsum(self.counts), rank,
                                     side="left"))
        # Upper edge of bucket b is edges[b]; the overflow bucket
        # (b == len(edges)) has no upper edge.
        if bucket >= len(self.edges):
            return float("inf")
        return float(self.edges[bucket])

    def count_at_or_below(self, edge: float) -> int:
        """Observations ``<= edge`` — exact when *edge* is a grid edge."""
        idx = int(np.searchsorted(self.edges, edge, side="right"))
        return int(self.counts[:idx].sum())

    def cdf(self) -> list[tuple[float, float]]:
        """(upper edge, cumulative fraction) per non-empty bucket."""
        total = self.total
        if total == 0:
            return []
        cum = np.cumsum(self.counts)
        out: list[tuple[float, float]] = []
        uppers = np.concatenate([self.edges, [np.inf]])
        for i in range(1, len(self.counts)):
            if self.counts[i]:
                out.append((float(uppers[i - 1]), float(cum[i] / total)))
        return out

    # -- serialisation ------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly form; counts stored sparse by bucket index."""
        sparse = {str(i): int(c) for i, c in enumerate(self.counts) if c}
        return {"edges": self.edges.tolist(), "counts": sparse}

    @classmethod
    def from_dict(cls, data: dict) -> "MergeableHistogram":
        edges = np.asarray(data["edges"], dtype=np.float64)
        counts = np.zeros(len(edges) + 1, dtype=np.int64)
        for key, value in data.get("counts", {}).items():
            counts[int(key)] = int(value)
        return cls(edges, counts)


#: Slowdown grid: 1 + geometric penalty buckets from 1e-5 (0.001%) to
#: 16 (17x slowdown), ~3% relative resolution. Shared by every shard of
#: a serving run so merges stay exact.
def slowdown_histogram() -> MergeableHistogram:
    """A fresh histogram on the canonical slowdown grid."""
    return MergeableHistogram(1.0 + np.geomspace(1e-5, 16.0, 481))
