"""Sharded streaming executor: population-scale slowdown CDFs.

Running 10^6 tenant traces through the engine is neither feasible nor
necessary: tenants in the same *sensitivity bucket* (working-set size
x access skew) see the same per-access demand on a given memory
configuration — what differs per tenant is how much CPU think time
dilutes that demand. The executor therefore

1. runs one **representative trace** per bucket through the real
   engine lanes for each memory configuration (all-DRAM, all-CXL
   through the pooled fabric, and a scale-out partition where a
   fraction of accesses cross an RDMA NIC),
2. streams the columnar tenant table in deterministic contiguous
   shards and chunks, computing each tenant's slowdown vectorised as
   ``(think + d_config) / (think + d_dram)``,
3. folds the results into exact integer histograms and counters
   (:class:`~repro.serving.histogram.MergeableHistogram`) — never
   materialising per-tenant results.

Because bucket kernels depend only on (bucket, config, seed), chunk
boundaries change no float (all per-tenant math is elementwise), and
the folds are integer adds, the report is byte-identical for any shard
count or worker fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import config
from ..core.buffer import Tier, TieredBufferPool
from ..core.engine import ScaleUpEngine
from ..core.placement import StaticPolicy
from ..errors import ConfigError
from ..sim.context import SimContext
from ..sim.interconnect import AccessPath, Link
from ..sim.memory import MemoryDevice
from ..units import PAGE_SIZE
from ..workloads.cloudmix import (
    THETA_CHOICES,
    WORKING_SET_CHOICES,
    CloudWorkload,
)
from .histogram import MergeableHistogram, slowdown_histogram
from .tenants import CLASS_NAMES, TenantTable

#: Penalty thresholds reported as exact integer counts (grid-free).
PENALTY_THRESHOLDS = (0.01, 0.05, 0.25)

#: Golden-ratio multiplicative hash for scale-out page striping —
#: decorrelates the remote set from Zipf rank (page id 0 is hottest).
_STRIPE_MULTIPLIER = 2654435761


@dataclass(frozen=True)
class ServingConfig:
    """Executor parameters."""

    shards: int = 1
    chunk_rows: int = 65_536
    rep_ops: int = 2_000
    rep_read_ratio: float = 0.75
    remote_fraction: float = 0.25
    # Pond pools through multi-headed direct-attach devices (Sec 2.5);
    # flip on to model a switched CXL 2.0 fabric instead.
    through_switch: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ConfigError("shards must be positive")
        if self.chunk_rows <= 0:
            raise ConfigError("chunk_rows must be positive")
        if self.rep_ops <= 0:
            raise ConfigError("rep_ops must be positive")
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise ConfigError("remote_fraction must be in [0, 1]")


@dataclass(frozen=True)
class BucketKernel:
    """Measured per-access demand of one sensitivity bucket."""

    working_set_pages: int
    theta: float
    d_dram_ns: float
    d_cxl_ns: float
    d_scaleout_ns: float


def bucket_grid() -> list[tuple[int, float]]:
    """All (working set, theta) buckets, in canonical order."""
    return [(ws, theta) for ws in WORKING_SET_CHOICES
            for theta in THETA_CHOICES]


def _representative(ws: int, theta: float, cfg: ServingConfig
                    ) -> CloudWorkload:
    # think_ns=0: the representative isolates memory demand; tenant
    # think time re-enters per row in the slowdown formula.
    return CloudWorkload(
        name=f"rep-{ws}-{theta}", klass="representative",
        memory_share=1.0, working_set_pages=ws, theta=theta,
        read_ratio=cfg.rep_read_ratio, num_ops=cfg.rep_ops,
        think_ns=0.0, seed=cfg.seed * 1_000_000 + ws + int(theta * 100),
    )


def _dram_engine(pages: int) -> ScaleUpEngine:
    return ScaleUpEngine.build(dram_pages=pages, with_storage=False,
                               name="serve-dram")


def _cxl_engine(pages: int, through_switch: bool) -> ScaleUpEngine:
    return ScaleUpEngine.build(
        dram_pages=1, cxl_pages=pages,
        placement=StaticPolicy(lambda _p: 1),
        through_switch=through_switch, with_storage=False,
        name="serve-cxl",
    )


def _scaleout_engine(pages: int, remote_fraction: float) -> ScaleUpEngine:
    """A two-node partition: a *remote_fraction* slice of the pages
    lives on the other node, reached through an RDMA NIC."""
    ctx = SimContext.ambient()
    local = MemoryDevice(config.local_ddr5(), name="so-local", ctx=ctx)
    remote = MemoryDevice(config.local_ddr5(), name="so-remote", ctx=ctx)
    nic = Link(config.rdma_nic_400g(), name="so-nic", ctx=ctx)
    threshold = int(remote_fraction * 2**32)

    def classify(page_id: int) -> int:
        stripe = (page_id * _STRIPE_MULTIPLIER) % 2**32
        return 1 if stripe < threshold else 0

    tiers = [
        Tier(name="local", path=AccessPath(device=local),
             capacity_pages=pages),
        Tier(name="remote", path=AccessPath(device=remote, links=(nic,)),
             capacity_pages=pages),
    ]
    pool = TieredBufferPool(tiers=tiers, backing=None,
                            placement=StaticPolicy(classify),
                            page_size=PAGE_SIZE, ctx=ctx)
    return ScaleUpEngine(pool, name="serve-scaleout")


def measure_buckets(cfg: ServingConfig) -> list[BucketKernel]:
    """Run every bucket's representative through the three lanes.

    Pure function of the config — nothing about the tenant table (its
    size, sharding, or churn) reaches the engines, which is what makes
    the population fold embarrassingly shard-invariant.
    """
    kernels: list[BucketKernel] = []
    for ws, theta in bucket_grid():
        rep = _representative(ws, theta, cfg)
        pages = ws + 8
        demands = []
        for engine in (
            _dram_engine(pages),
            _cxl_engine(pages, cfg.through_switch),
            _scaleout_engine(pages, cfg.remote_fraction),
        ):
            # Demand-only measurement on a throwaway engine: skip the
            # final frame-stat materialisation (nothing reads it).
            report = engine.run(rep.trace_blocks(), sync_frames=False)
            demands.append(report.demand_ns / report.ops)
        kernels.append(BucketKernel(
            working_set_pages=ws, theta=theta,
            d_dram_ns=demands[0], d_cxl_ns=demands[1],
            d_scaleout_ns=demands[2],
        ))
    return kernels


@dataclass
class ServingReport:
    """Slowdown distributions of one serving run."""

    tenants: int
    buckets: list[BucketKernel]
    hist: dict[str, MergeableHistogram] = field(default_factory=dict)
    #: threshold_counts[baseline][t][k] = tenants of class k whose
    #: penalty is under PENALTY_THRESHOLDS[t] (exact integers).
    threshold_counts: dict[str, np.ndarray] = field(default_factory=dict)
    class_totals: np.ndarray = field(
        default_factory=lambda: np.zeros(len(CLASS_NAMES), np.int64))

    def quantile(self, baseline: str, q: float) -> float:
        return self.hist[baseline].quantile(q)

    def share_under(self, baseline: str, threshold: float,
                    klass: int | None = None) -> float:
        """Exact share of tenants with penalty < *threshold*."""
        t = PENALTY_THRESHOLDS.index(threshold)
        counts = self.threshold_counts[baseline]
        if klass is None:
            total = self.tenants
            under = int(counts[t].sum())
        else:
            total = int(self.class_totals[klass])
            under = int(counts[t][klass])
        return under / total if total else 0.0

    def metrics(self) -> dict:
        """Flat-ish JSON-serialisable metrics for harness results."""
        out: dict = {"tenants": self.tenants}
        for baseline, hist in sorted(self.hist.items()):
            entry: dict = {
                "p50": hist.quantile(0.50),
                "p99": hist.quantile(0.99),
                "p999": hist.quantile(0.999),
                "share_under_1pct": self.share_under(baseline, 0.01),
                "share_under_5pct": self.share_under(baseline, 0.05),
                "share_under_25pct": self.share_under(baseline, 0.25),
            }
            for k, name in enumerate(CLASS_NAMES):
                entry[f"{name}_share_under_1pct"] = self.share_under(
                    baseline, 0.01, klass=k)
            out[baseline] = entry
        out["buckets"] = {
            f"ws{b.working_set_pages}_theta{b.theta}": {
                "d_dram_ns": b.d_dram_ns,
                "d_cxl_ns": b.d_cxl_ns,
                "d_scaleout_ns": b.d_scaleout_ns,
            }
            for b in self.buckets
        }
        return out


def _bucket_ids(table: TenantTable) -> np.ndarray:
    ws_idx = np.searchsorted(np.asarray(WORKING_SET_CHOICES, np.int64),
                             table.working_set_pages)
    theta_idx = np.searchsorted(np.asarray(THETA_CHOICES, np.float64),
                                table.theta)
    return ws_idx * len(THETA_CHOICES) + theta_idx


def run_serving(table: TenantTable, cfg: ServingConfig | None = None,
                buckets: list[BucketKernel] | None = None
                ) -> ServingReport:
    """Fold the whole table into slowdown distributions.

    The shard loop exists to *prove* partition invariance (and to let
    callers process cohorts on different workers): every float is
    computed elementwise per tenant and every fold is an integer add,
    so any ``cfg.shards`` produces identical bytes.
    """
    cfg = cfg or ServingConfig()
    if len(table) == 0:
        raise ConfigError("cannot serve an empty tenant table")
    kernels = buckets if buckets is not None else measure_buckets(cfg)
    d_dram = np.array([k.d_dram_ns for k in kernels])
    d_by_baseline = {
        "cxl": np.array([k.d_cxl_ns for k in kernels]),
        "scaleout": np.array([k.d_scaleout_ns for k in kernels]),
    }

    report = ServingReport(tenants=len(table), buckets=kernels)
    for baseline in d_by_baseline:
        report.hist[baseline] = slowdown_histogram()
        report.threshold_counts[baseline] = np.zeros(
            (len(PENALTY_THRESHOLDS), len(CLASS_NAMES)), np.int64)

    for shard_index in range(cfg.shards):
        shard = table.shard(shard_index, cfg.shards)
        bucket_ids = _bucket_ids(shard)
        for start in range(0, len(shard), cfg.chunk_rows):
            stop = min(start + cfg.chunk_rows, len(shard))
            ids = bucket_ids[start:stop]
            think = shard.think_ns[start:stop]
            klass = shard.klass[start:stop]
            denom = think + d_dram[ids]
            report.class_totals += np.bincount(
                klass, minlength=len(CLASS_NAMES))
            for baseline, d_cfg in d_by_baseline.items():
                slowdown = (think + d_cfg[ids]) / denom
                report.hist[baseline].add_many(slowdown)
                penalty = slowdown - 1.0
                for t, threshold in enumerate(PENALTY_THRESHOLDS):
                    report.threshold_counts[baseline][t] += np.bincount(
                        klass[penalty < threshold],
                        minlength=len(CLASS_NAMES))
    return report
