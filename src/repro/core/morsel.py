"""Rack-level morsel-driven query scheduling (Sec 3.3).

"Assuming we now have the freedom to engage a tremendous amount of
resources to solve individual query operators, how do we schedule the
machine resources across competing queries?"

Shared coherent memory changes the answer: the morsel queue itself
can live in CXL shared memory, so *any* thread on *any* host can pull
the next piece of work — global work stealing with no message-passing
scheduler. This module compares:

* **static partitioning** — morsels pre-assigned per host (what a
  shared-nothing engine must do): skewed morsels leave stragglers;
* **shared-queue stealing** — every dequeue pays one fabric CAS, but
  no thread ever idles while work remains;

and two multi-query policies on top of the shared queue: FIFO (run
queries to completion in order) vs fair (round-robin across queries),
which trades makespan for mean query turnaround.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass(frozen=True)
class Morsel:
    """One unit of query work."""

    query_id: int
    service_ns: float


@dataclass
class ScheduleOutcome:
    """Result of scheduling a set of queries on the rack."""

    name: str
    makespan_ns: float = 0.0
    query_completion_ns: dict[int, float] = field(default_factory=dict)
    queue_overhead_ns: float = 0.0
    idle_ns: float = 0.0

    @property
    def mean_completion_ns(self) -> float:
        """Mean query completion time."""
        if not self.query_completion_ns:
            return 0.0
        return (sum(self.query_completion_ns.values())
                / len(self.query_completion_ns))


class RackScheduler:
    """Threads across hosts executing morsels of competing queries."""

    def __init__(self, hosts: int = 4, threads_per_host: int = 8,
                 dequeue_cost_ns: float = 330.0) -> None:
        if hosts <= 0 or threads_per_host <= 0:
            raise ConfigError("hosts and threads must be positive")
        if dequeue_cost_ns < 0:
            raise ConfigError("dequeue cost must be non-negative")
        self.hosts = hosts
        self.threads_per_host = threads_per_host
        self.dequeue_cost_ns = dequeue_cost_ns

    @property
    def total_threads(self) -> int:
        """Worker threads across the rack."""
        return self.hosts * self.threads_per_host

    # -- static partitioning ------------------------------------------------

    def run_static(self, queries: list[list[Morsel]]) -> ScheduleOutcome:
        """Morsels pre-partitioned round-robin across hosts; threads
        of a host only run their host's share. No queue costs, but a
        host stuck with heavy morsels cannot shed them."""
        outcome = ScheduleOutcome(name="static-partitioned")
        host_morsels: list[list[Morsel]] = [[] for _ in range(self.hosts)]
        for index, morsel in enumerate(self._flatten(queries)):
            host_morsels[index % self.hosts].append(morsel)
        thread_clock = [0.0] * self.total_threads
        for host, morsels in enumerate(host_morsels):
            threads = range(host * self.threads_per_host,
                            (host + 1) * self.threads_per_host)
            for morsel in morsels:
                thread = min(threads, key=thread_clock.__getitem__)
                thread_clock[thread] += morsel.service_ns
                outcome.query_completion_ns[morsel.query_id] = max(
                    outcome.query_completion_ns.get(morsel.query_id, 0.0),
                    thread_clock[thread],
                )
        outcome.makespan_ns = max(thread_clock)
        outcome.idle_ns = sum(
            outcome.makespan_ns - t for t in thread_clock
        )
        return outcome

    # -- shared-queue stealing -------------------------------------------------

    def run_shared_queue(self, queries: list[list[Morsel]],
                         policy: str = "fifo") -> ScheduleOutcome:
        """A global morsel queue in CXL shared memory.

        ``policy``: 'fifo' (drain query 0, then 1, ...) or 'fair'
        (round-robin one morsel per query per cycle).
        """
        if policy not in ("fifo", "fair"):
            raise ConfigError(f"unknown policy {policy!r}")
        ordered = (self._flatten(queries) if policy == "fifo"
                   else self._round_robin(queries))
        outcome = ScheduleOutcome(name=f"shared-queue-{policy}")
        thread_clock = [0.0] * self.total_threads
        for morsel in ordered:
            thread = min(range(self.total_threads),
                         key=thread_clock.__getitem__)
            thread_clock[thread] += self.dequeue_cost_ns \
                + morsel.service_ns
            outcome.queue_overhead_ns += self.dequeue_cost_ns
            outcome.query_completion_ns[morsel.query_id] = max(
                outcome.query_completion_ns.get(morsel.query_id, 0.0),
                thread_clock[thread],
            )
        outcome.makespan_ns = max(thread_clock)
        outcome.idle_ns = sum(
            outcome.makespan_ns - t for t in thread_clock
        )
        return outcome

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _flatten(queries: list[list[Morsel]]) -> list[Morsel]:
        if not queries or not any(queries):
            raise ConfigError("no morsels to schedule")
        return [m for query in queries for m in query]

    @staticmethod
    def _round_robin(queries: list[list[Morsel]]) -> list[Morsel]:
        if not queries or not any(queries):
            raise ConfigError("no morsels to schedule")
        ordered: list[Morsel] = []
        cursors = [0] * len(queries)
        remaining = sum(len(q) for q in queries)
        while remaining:
            for index, query in enumerate(queries):
                if cursors[index] < len(query):
                    ordered.append(query[cursors[index]])
                    cursors[index] += 1
                    remaining -= 1
        return ordered


def skewed_queries(num_queries: int = 4, morsels_per_query: int = 400,
                   mean_service_ns: float = 50_000.0,
                   skew: float = 8.0, seed: int = 23
                   ) -> list[list[Morsel]]:
    """Queries whose morsel sizes are heavy-tailed (Pareto-ish): the
    realistic case where static partitioning leaves stragglers."""
    if num_queries <= 0 or morsels_per_query <= 0:
        raise ConfigError("queries and morsels must be positive")
    rng = random.Random(seed)
    queries = []
    for query_id in range(num_queries):
        morsels = []
        for _ in range(morsels_per_query):
            if rng.random() < 0.05:
                service = mean_service_ns * skew * rng.uniform(0.5, 2.0)
            else:
                service = mean_service_ns * rng.uniform(0.2, 1.2)
            morsels.append(Morsel(query_id=query_id,
                                  service_ns=service))
        queries.append(morsels)
    return queries
