"""Concurrent multi-client sessions on the discrete-event core.

The paper's scale-up argument (Sec 2.3–2.5, 3.2–3.3) is about *many*
queries and tenants contending for the same CXL links and expanders.
This module makes that contention first-class: a
:class:`ClientSession` is one client stream — an Access/AccessBlock
trace with its own think-time state, clock cursor, and stats — and a
:class:`ConcurrentEngine` interleaves N of them through the
discrete-event :class:`~repro.sim.events.Simulator`, resolving
shared-device and shared-link contention via per-resource
:class:`~repro.sim.bandwidth.WaitQueue` objects.

Execution model
---------------

Each session owns an **unbound clock cursor** (a plain
:class:`~repro.sim.clock.SimClock` that is never bound to the
context), so the run still has exactly one authoritative clock — the
pool's — advanced only by the event loop and the final catch-up to
the makespan. A session wakeup runs one **morsel quantum**: up to
``morsel_ops`` accesses pulled from the session's trace as same-shape
runs (:class:`~repro.workloads.traces.ShapeSegments`) and charged
through the pool's batched lane against the session cursor, with
arrival-order waits on the tier's shared resources folded into demand
latency. The session then re-arms a wakeup at its cursor time.

Determinism
-----------

Two guarantees, both pinned by tests:

* **N=1 byte-identity** — a single session produces exactly the floats
  of :meth:`~repro.core.engine.ScaleUpEngine.run` on the same trace: a
  lone session never waits (its own completion is always at or past
  each resource's free time), a zero wait leaves every float
  untouched, and the batched lane's additions are windowing-invariant.
* **N>1 permutation invariance** — wakeups sharing an instant are
  collected into a ready set (``Simulator.peek_time_ns``) and drained
  in fairness-policy order with session *names* as the tie-breaker;
  per-session state is keyed and reported by name. The report is
  therefore a function of the session *set*, not the list order.

Fairness is pluggable: :class:`FifoPolicy` (arrival order, name
tie-break), :class:`RoundRobinPolicy` (cycle by name), and
:class:`WeightedPolicy` (stride scheduling over session weights).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import ConfigError, SimulationError
from ..sim.clock import SimClock
from ..sim.events import Simulator
from ..sim.ladder import repeat_add
from ..units import SECOND
from ..workloads.traces import (Access, AccessBlock, ShapeSegments,
                                accesses_to_blocks, whole_trace_block)
from .buffer import TieredBufferPool
from .morsel import Morsel

#: Default scheduling quantum: accesses one session executes per
#: wakeup before control returns to the event loop. Smaller quanta
#: resolve cross-session contention at finer grain; larger quanta
#: amortise scheduling overhead. Simulated results are deterministic
#: at any quantum, and N=1 runs are byte-identical at every quantum.
MORSEL_OPS = 32

#: Relative slack applied to the escalation horizon bound: the
#: closed-form completion estimate ``now + (think + lat) * ops`` is
#: inflated by this factor before being compared (strictly) against
#: the next pending wakeup. Sequential float accumulation can trail
#: the closed form by at most ~``2 * ops`` ulps, so with the bulk op
#: cap below the inflation dominates any rounding drift by several
#: orders of magnitude — an escalated quantum can never run past an
#: instant where another session could interleave.
_HORIZON_SLACK = 1.0 + 1e-6

#: Cap on accesses charged by one escalated pool call; keeps the
#: rounding-drift argument for :data:`_HORIZON_SLACK` airtight and
#: bounds the latency of a single scheduling step. The next wakeup
#: simply escalates again, so the cap does not limit throughput.
_BULK_MAX_OPS = 1 << 24

#: ``block_ops`` used when a session trace is packed for execution:
#: effectively unbounded, so scalar traces become *one* block and
#: same-shape runs split exactly where the scalar coalescer would
#: have split them (shape changes and pre-existing block boundaries)
#: — the run-length ``samples`` stream is preserved bit for bit.
_WHOLE_TRACE = 1 << 62


def _weighted_percentile(samples: Sequence[tuple[float, int]],
                         q: float) -> float:
    """Nearest-rank percentile over ``(value, weight)`` run-length
    samples. Sorting by value makes the result independent of sample
    arrival order (hence of session scheduling details)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    total = 0
    for _value, count in ordered:
        total += count
    if total <= 0:
        return 0.0
    rank = q * total
    cum = 0
    for value, count in ordered:
        cum += count
        if cum >= rank:
            return value
    return ordered[-1][0]


@dataclass(slots=True)
class SessionReport:
    """Per-session outcome of a concurrent run.

    Latency is stored as run-length samples ``(mean latency of one
    same-shape run, run length)`` — one tuple per executed run, never
    one float per access — so million-access sessions stay flat.
    Percentiles over these samples are weighted nearest-rank.
    """

    name: str
    ops: int = 0
    demand_ns: float = 0.0
    think_ns: float = 0.0
    wait_ns: float = 0.0
    misses: int = 0
    migrations: int = 0
    quanta: int = 0
    start_ns: float = 0.0
    end_ns: float = 0.0
    samples: list[tuple[float, int]] = field(default_factory=list)

    @property
    def total_ns(self) -> float:
        """Virtual time from the session's start to its last access."""
        return self.end_ns - self.start_ns

    @property
    def mean_latency_ns(self) -> float:
        """Mean demand latency per access (waits included)."""
        if self.ops == 0:
            return 0.0
        return self.demand_ns / self.ops

    @property
    def p95_latency_ns(self) -> float:
        """Weighted nearest-rank 95th-percentile run latency."""
        return _weighted_percentile(self.samples, 0.95)


class ClientSession:
    """One client stream: a trace plus think-time state, a clock
    cursor, and per-session stats.

    *name* is the session's identity everywhere — scheduling
    tie-breaks, report keys, policy state — so reports are invariant
    under session-list permutation. *weight* only matters under
    :class:`WeightedPolicy`.
    """

    __slots__ = ("name", "trace", "weight", "index", "clock", "report",
                 "_segments", "_done")

    def __init__(self, name: str, trace: Iterable[Access | AccessBlock],
                 weight: float = 1.0) -> None:
        if not name:
            raise ConfigError("a session needs a non-empty name")
        if weight <= 0:
            raise ConfigError(f"session {name!r}: weight must be positive")
        self.name = name
        self.trace = trace
        self.weight = weight
        self.index = 0
        self.clock: SimClock | None = None
        self.report: SessionReport | None = None
        self._segments: ShapeSegments | None = None
        self._done = False

    def _begin(self, start_ns: float) -> None:
        """Arm the session for a run starting at *start_ns*.

        The trace is packed into columnar blocks on the way in
        (whole-trace ``block_ops``, so no artificial run splits): the
        cursor then serves every same-shape run as an int64 ndarray
        view, which keeps scalar traces off the per-access coalescing
        loop and on the pool's block lane. Lossless — the packed
        sequence is elementwise identical, and run boundaries match
        the scalar coalescer's (shape changes and pre-existing block
        boundaries only).
        """
        self.clock = SimClock(start_ns)
        self.report = SessionReport(name=self.name, start_ns=start_ns,
                                    end_ns=start_ns)
        packed = whole_trace_block(self.trace)
        if packed is not None:
            self._segments = ShapeSegments((packed,))
        else:
            self._segments = ShapeSegments(
                accesses_to_blocks(self.trace, block_ops=_WHOLE_TRACE))
        self._done = False

    def __repr__(self) -> str:
        return f"ClientSession({self.name!r}, weight={self.weight:g})"


# -- fairness policies -------------------------------------------------------


class FairnessPolicy:
    """Orders the ready set at each scheduling instant.

    A policy must be a deterministic function of session *names*,
    weights, and its own scheduling history — never of session list
    order or object identity — which is what keeps N>1 reports
    permutation-invariant.
    """

    name = "fifo"

    def attach(self, sessions: Sequence[ClientSession]) -> None:
        """Called once per run with the name-sorted session list."""

    def select(self, ready: Sequence[ClientSession]) -> ClientSession:
        """Pick the next session to run from a non-empty ready set."""
        raise NotImplementedError

    def on_ran(self, session: ClientSession, ops: int) -> None:
        """Observe that *session* just executed *ops* accesses."""


class FifoPolicy(FairnessPolicy):
    """Arrival order; simultaneous arrivals resolve by session name.

    The ready set only ever holds sessions that woke at the same
    instant (earlier wakeups were drained in an earlier event), so
    arrival-order FIFO reduces to the deterministic name tie-break.
    """

    name = "fifo"

    def select(self, ready: Sequence[ClientSession]) -> ClientSession:
        best = ready[0]
        for session in ready:
            if session.name < best.name:
                best = session
        return best


class RoundRobinPolicy(FairnessPolicy):
    """Cycle through sessions by name: after session X runs, the
    smallest-named ready session above X goes first (wrapping)."""

    name = "round_robin"

    def __init__(self) -> None:
        self._last: str | None = None

    def attach(self, sessions: Sequence[ClientSession]) -> None:
        self._last = None

    def select(self, ready: Sequence[ClientSession]) -> ClientSession:
        last = self._last
        best = None
        if last is not None:
            for session in ready:
                if session.name > last and \
                        (best is None or session.name < best.name):
                    best = session
        if best is None:
            for session in ready:
                if best is None or session.name < best.name:
                    best = session
        return best

    def on_ran(self, session: ClientSession, ops: int) -> None:
        self._last = session.name


class WeightedPolicy(FairnessPolicy):
    """Stride scheduling: each session's pass value advances by
    ``ops / weight`` as it runs; the lowest pass (ties by name) runs
    next, so long-run service is proportional to weight."""

    name = "weighted"

    def __init__(self) -> None:
        self._pass: dict[str, float] = {}

    def attach(self, sessions: Sequence[ClientSession]) -> None:
        self._pass = {session.name: 0.0 for session in sessions}

    def select(self, ready: Sequence[ClientSession]) -> ClientSession:
        passes = self._pass
        best = ready[0]
        best_key = (passes.get(best.name, 0.0), best.name)
        for session in ready[1:]:
            key = (passes.get(session.name, 0.0), session.name)
            if key < best_key:
                best = session
                best_key = key
        return best

    def on_ran(self, session: ClientSession, ops: int) -> None:
        self._pass[session.name] = \
            self._pass.get(session.name, 0.0) + ops / session.weight


# -- the concurrent run report ----------------------------------------------


@dataclass
class SessionRunReport:
    """Outcome of a concurrent multi-session run."""

    name: str
    policy: str = "fifo"
    makespan_ns: float = 0.0
    sessions: dict[str, SessionReport] = field(default_factory=dict)
    #: Hierarchical metrics snapshot taken when the run finished;
    #: purely observational.
    metrics: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_sessions(self) -> int:
        return len(self.sessions)

    @property
    def ops(self) -> int:
        """Total accesses across all sessions."""
        return sum(report.ops for report in self.sessions.values())

    @property
    def demand_ns(self) -> float:
        """Total demand latency across all sessions (waits included)."""
        return sum(report.demand_ns for report in self.sessions.values())

    @property
    def wait_ns(self) -> float:
        """Total contention wait across all sessions."""
        return sum(report.wait_ns for report in self.sessions.values())

    @property
    def mean_latency_ns(self) -> float:
        ops = self.ops
        if ops == 0:
            return 0.0
        return self.demand_ns / ops

    @property
    def p95_latency_ns(self) -> float:
        """Weighted nearest-rank p95 over every session's samples."""
        samples: list[tuple[float, int]] = []
        for report in self.sessions.values():
            samples.extend(report.samples)
        return _weighted_percentile(samples, 0.95)

    @property
    def throughput_ops_per_s(self) -> float:
        """Aggregate accesses per second of virtual time."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.ops / self.makespan_ns * SECOND

    def session(self, name: str) -> SessionReport:
        """One session's report, by name."""
        report = self.sessions.get(name)
        if report is None:
            raise ConfigError(
                f"no session {name!r} in this run;"
                f" have: {sorted(self.sessions)}"
            )
        return report

    def p95_for(self, names: Iterable[str]) -> float:
        """Weighted p95 restricted to *names* (e.g. the point-lookup
        sessions of an interference experiment)."""
        samples: list[tuple[float, int]] = []
        for name in names:
            report = self.sessions.get(name)
            if report is not None:
                samples.extend(report.samples)
        return _weighted_percentile(samples, 0.95)


# -- the concurrent engine ---------------------------------------------------


class ConcurrentEngine:
    """Interleaves N client sessions through the discrete-event core.

    Built over a :class:`~repro.core.buffer.TieredBufferPool` the same
    way :class:`~repro.core.engine.ScaleUpEngine` is; one engine can
    run many session sets sequentially (pool state persists, like any
    warm engine).
    """

    def __init__(self, pool: TieredBufferPool, name: str = "sessions",
                 policy: FairnessPolicy | None = None,
                 morsel_ops: int = MORSEL_OPS,
                 on_morsel: Callable[[str, Morsel], None] | None = None,
                 ctx=None, escalate: bool = True) -> None:
        if morsel_ops <= 0:
            raise ConfigError("morsel_ops must be positive")
        if ctx is not None and ctx is not pool.ctx:
            raise ConfigError(
                f"concurrent engine {name!r} was given a SimContext"
                " that is not its pool's; build the pool with the same"
                " context"
            )
        self.pool = pool
        self.name = name
        self.policy = policy if policy is not None else FifoPolicy()
        self.morsel_ops = int(morsel_ops)
        self.ctx = pool.ctx
        self.ctx.bind_clock(pool.clock, owner=f"sessions:{name}")
        #: Morsel hook: called after every executed quantum with
        #: ``(session_name, Morsel(query_id, service_ns))`` — the same
        #: shape :class:`~repro.core.morsel.RackScheduler` consumes, so
        #: session quanta can feed morsel-level schedulers directly.
        self.on_morsel = on_morsel
        #: Contention-aware quantum escalation (see :meth:`_run_bulk`).
        #: Byte-identical on or off — the switch exists so tests can
        #: pin the equivalence and experiments can measure the cost.
        self.escalate = bool(escalate)
        self._sim: Simulator | None = None
        self._quantum = None

    # -- session set handling ------------------------------------------

    def _normalize(self, sessions) -> list[ClientSession]:
        """Accept ClientSession objects or raw traces; return the
        name-sorted session list (names must be unique)."""
        items = list(sessions)
        if not items:
            raise ConfigError("need at least one session")
        width = max(2, len(str(len(items) - 1)))
        normalized: list[ClientSession] = []
        for index, item in enumerate(items):
            if isinstance(item, ClientSession):
                normalized.append(item)
            else:
                # Zero-padded positional names keep name order == list
                # order for anonymous traces.
                normalized.append(
                    ClientSession(f"s{index:0{width}d}", item))
        names = [session.name for session in normalized]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate session names: {sorted(names)}")
        normalized.sort(key=lambda session: session.name)
        return normalized

    # -- execution -----------------------------------------------------

    def run(self, sessions, label: str | None = None) -> SessionRunReport:
        """Run a set of sessions to completion; returns the report.

        *sessions* may hold :class:`ClientSession` objects, raw traces
        (wrapped with positional names), or a mix. The report is
        identical for any permutation of the same session set.
        """
        order = self._normalize(sessions)
        pool = self.pool
        clock = pool.clock
        ctx = self.ctx
        start_ns = clock.now
        sim = Simulator(ctx=ctx)
        self._sim = sim
        for rank, session in enumerate(order):
            session.index = rank
            session._begin(start_ns)
        policy = self.policy
        policy.attach(order)
        # Quantum lane: resolved once per run (the lane toggle is
        # fixed for a run's duration). When ready, _run_quantum
        # charges whole multi-segment spans through one pool call.
        ready = getattr(pool, "quantum_lane_ready", None)
        self._quantum = (pool.access_quantum
                         if ready is not None and ready() else None)
        # Build the shared-resource queues up front so every session
        # (including the first) contends through the same objects.
        pool.wait_queues()
        for session in order:
            sim.schedule(start_ns, session)
        with ctx.span(f"run-sessions:{label or self.name}",
                      cat="engine"):
            self._drive(sim)
            makespan = start_ns
            for session in order:
                if session.report.end_ns > makespan:
                    makespan = session.report.end_ns
            if clock.now < makespan:
                clock.advance_to(makespan)
        report = SessionRunReport(
            name=label or f"{self.name}-x{len(order)}",
            policy=policy.name,
            makespan_ns=makespan - start_ns,
            sessions={session.name: session.report
                      for session in order},
        )
        metrics = ctx.metrics
        metrics.incr("engine.session_runs")
        metrics.incr("engine.sessions", len(order))
        metrics.incr("engine.ops", report.ops)
        report.metrics = metrics.snapshot()
        self._sim = None
        return report

    def _drive(self, sim: Simulator) -> None:
        """The scheduling loop: pop each instant's wakeup batch and
        drain it in fairness-policy order (delta cycle).

        :meth:`Simulator.pop_due` returns *every* wakeup sharing the
        earliest pending instant as one batch, so equal-timestamp
        ordering is a policy decision with a name tie-break instead of
        a heap-insertion artifact — the permutation-invariance
        guarantee. Two scheduling shortcuts ride on top, both float-
        identical to the naive loop:

        * **sole-runnable fast path** — when the session just run is
          still strictly ahead of every queued wakeup, it is re-run
          directly instead of round-tripping through the heap (the
          heap would pop it alone anyway);
        * **hoisted session lane** — ``pool.session_begin`` /
          ``session_end`` bracket maximal runs of consecutive quanta
          of the *same* session rather than each quantum (the pair
          only swaps cursor attributes, so the floats cannot differ).
        """
        pool = self.pool
        policy = self.policy
        escalate = self.escalate and self.on_morsel is None
        begun: ClientSession | None = None
        try:
            while True:
                ready = sim.pop_due()
                if not ready:
                    break
                while ready:
                    chosen = policy.select(ready)
                    ready.remove(chosen)
                    if begun is not chosen:
                        if begun is not None:
                            pool.session_end()
                        pool.session_begin(chosen.clock)
                        begun = chosen
                    next_ns = None
                    if escalate and not ready:
                        # No events are scheduled during a quantum, so
                        # this peek stays valid until the re-arm below.
                        next_ns = sim.peek_time_ns()
                        self._run_bulk(chosen, next_ns)
                    else:
                        ops = self._run_quantum(chosen)
                        policy.on_ran(chosen, ops)
                    if chosen._done:
                        continue
                    # Strictly in the future: every access has positive
                    # latency, so the cursor moved past sim.now.
                    time_ns = chosen.clock._now
                    if not ready:
                        if next_ns is None:
                            next_ns = sim.peek_time_ns()
                        if next_ns is None or time_ns < next_ns:
                            ready.append(chosen)
                            continue
                    sim.schedule(time_ns, chosen)
        finally:
            if begun is not None:
                pool.session_end()

    def _run_bulk(self, session: ClientSession, next_ns: float | None
                  ) -> None:
        """Run the sole-runnable *session*'s next quantum, escalating
        to a bulk multi-quantum charge when provably uncontended.

        Escalation fires only when every condition of the chunked
        path's behaviour is pinned analytically:

        * the current same-shape segment spans at least two whole
          quanta (``morsel_ops * 2`` accesses still block-backed);
        * the pool's :meth:`~repro.core.buffer.TieredBufferPool.\
run_probe` certifies the run is uniform — every page resident on one
          tier with eviction headroom, every consulted wait queue
          already free — so each access adds exactly the probed
          latency to demand and ``think + lat`` to the cursor;
        * the closed-form completion bound, inflated by
          :data:`_HORIZON_SLACK`, lands strictly before the next
          pending wakeup, so no other session could have interleaved
          between the collapsed quantum boundaries.

        Under those conditions a quantum boundary changes no floats —
        the pool's additions are windowing-invariant, and the
        per-quantum bookkeeping (samples, think ladder, policy state)
        is reconstructed exactly in :meth:`_charge_bulk` — so charging
        ``n`` quanta in one pool call is byte-identical to the 32-op
        loop. Anything short of certainty falls back to the exact
        chunked quantum.
        """
        m = self.morsel_ops
        if m * 2 <= _BULK_MAX_OPS:
            segments = session._segments
            nq = segments.remaining_in_segment() // m
            if nq >= 2:
                if nq * m > _BULK_MAX_OPS:
                    nq = _BULK_MAX_OPS // m
                count = nq * m
                ids, nbytes, write, is_scan, think = \
                    segments.peek_run(count)
                lat = self.pool.run_probe(ids, nbytes, write, is_scan)
                if lat is not None and think >= 0.0:
                    horizon = (session.clock._now
                               + (think + lat) * count) * _HORIZON_SLACK
                    if next_ns is None or horizon < next_ns:
                        self._charge_bulk(session, nbytes, write,
                                          is_scan, think, lat, nq)
                        return
        ops = self._run_quantum(session)
        self.policy.on_ran(session, ops)

    def _charge_bulk(self, session: ClientSession, nbytes: int,
                     write: bool, is_scan: bool, think: float,
                     lat: float, nq: int) -> None:
        """Charge *nq* consecutive full quanta of one same-shape run
        through a single pool call, replaying the chunked path's
        per-quantum bookkeeping exactly.

        The pool floats are byte-identical by windowing invariance;
        the session-side reconstruction leans on the exact repeated-
        addition ladder: ``repeat_add(x, d, a + b) ==
        repeat_add(repeat_add(x, d, a), d, b)``, so quantum-boundary
        demand values (for ``samples``) and the think accumulator come
        back bit for bit. The probe's per-access-latency guarantee is
        *verified* after the fact — a demand total that strays from
        the closed form aborts the run loudly rather than let an
        unsound escalation drift.
        """
        pool = self.pool
        policy = self.policy
        report = session.report
        stats = pool.stats
        misses_before = stats.misses
        migrations_before = stats.migrations
        wait_before = pool.session_wait_ns
        m = self.morsel_ops
        count = nq * m
        page_ids, _, _, _, _, got = session._segments.next_run(count)
        if got != count:
            raise SimulationError(
                f"bulk quantum pulled {got} ops, expected {count}")
        demand0 = report.demand_ns
        report.demand_ns = pool.access_run(
            page_ids, nbytes=nbytes, write=write, is_scan=is_scan,
            think_ns=think, accum=demand0,
        )
        if report.demand_ns != repeat_add(demand0, lat, count):
            raise SimulationError(
                "escalated quantum diverged from the probed latency;"
                " run_probe's uniformity guarantee was violated"
            )
        if think:
            # nq per-quantum ladders (m >= 64) or nq * m scalar adds
            # (m < 64) both equal one ladder over the whole run — the
            # composability property above.
            report.think_ns = repeat_add(report.think_ns, think, count)
        report.ops += count
        samples = report.samples
        prev = demand0
        for quantum in range(1, nq):
            cur = repeat_add(demand0, lat, quantum * m)
            samples.append(((cur - prev) / m, m))
            prev = cur
        samples.append(((report.demand_ns - prev) / m, m))
        report.misses += stats.misses - misses_before
        report.migrations += stats.migrations - migrations_before
        report.wait_ns += pool.session_wait_ns - wait_before
        report.end_ns = session.clock._now
        report.quanta += nq
        # Policy replay: the drain already selected this quantum's
        # winner once; the remaining nq - 1 selections were singleton
        # draws, observed here so stateful policies (round-robin
        # cursor, stride passes) evolve exactly as in chunked mode.
        policy.on_ran(session, m)
        if nq > 1:
            single = [session]
            for _ in range(nq - 1):
                policy.select(single)
                policy.on_ran(session, m)

    def _run_quantum(self, session: ClientSession) -> int:
        """Execute one morsel quantum of a session; returns ops run.

        The caller (:meth:`_drive`) holds the pool's session lane open
        around consecutive quanta; this method only pulls runs and
        charges them.
        """
        pool = self.pool
        report = session.report
        stats = pool.stats
        misses_before = stats.misses
        migrations_before = stats.migrations
        wait_before = pool.session_wait_ns
        start_ns = session.clock.now
        budget = self.morsel_ops
        ops = 0
        segments = session._segments
        batch = pool.access_batch
        run_nd = pool.access_run
        quantum = self._quantum
        while budget > 0:
            if quantum is not None:
                span = segments.next_span(budget)
                if span is not None:
                    # Quantum lane: the whole multi-segment span in
                    # one pool call; per-segment demand boundaries
                    # come back so the think ladder and samples are
                    # rebuilt run by run, exactly as the per-run loop
                    # below would.
                    ids, segs, count = span
                    prev = report.demand_ns
                    report.demand_ns, seg_demands = quantum(
                        ids, segs, prev)
                    think_total = report.think_ns
                    samples = report.samples
                    for (a, b, _nb, _wr, _sc, th), demand in zip(
                            segs, seg_demands):
                        seg_count = b - a
                        if th:
                            if seg_count >= 64:
                                think_total = repeat_add(
                                    think_total, th, seg_count)
                            else:
                                for _ in range(seg_count):
                                    think_total += th
                        samples.append(
                            ((demand - prev) / seg_count, seg_count))
                        prev = demand
                    report.think_ns = think_total
                    report.ops += count
                    ops += count
                    budget -= count
                    continue
            run = segments.next_run(budget)
            if run is None:
                session._done = True
                break
            page_ids, nbytes, write, is_scan, think, count = run
            demand_before = report.demand_ns
            if type(page_ids) is list:
                report.demand_ns = batch(
                    page_ids, nbytes=nbytes, write=write,
                    is_scan=is_scan, think_ns=think,
                    accum=report.demand_ns,
                )
            else:
                # Columnar run straight off a block: the pool's
                # block lane resolves it without materialising a
                # Python list (bit-identical to access_batch).
                report.demand_ns = run_nd(
                    page_ids, nbytes=nbytes, write=write,
                    is_scan=is_scan, think_ns=think,
                    accum=report.demand_ns,
                )
            if think:
                # Replay the scalar think addition chain, as in
                # ScaleUpEngine.run: an exact ladder once the run
                # is long enough to amortise the setup.
                if count >= 64:
                    report.think_ns = repeat_add(report.think_ns,
                                                 think, count)
                else:
                    think_total = report.think_ns
                    for _ in range(count):
                        think_total += think
                    report.think_ns = think_total
            report.ops += count
            ops += count
            budget -= count
            report.samples.append(
                ((report.demand_ns - demand_before) / count, count))
        report.misses += stats.misses - misses_before
        report.migrations += stats.migrations - migrations_before
        report.wait_ns += pool.session_wait_ns - wait_before
        report.end_ns = session.clock.now
        if ops:
            report.quanta += 1
            if self.on_morsel is not None:
                self.on_morsel(session.name, Morsel(
                    query_id=session.index,
                    service_ns=session.clock.now - start_ns,
                ))
        return ops

    def __repr__(self) -> str:
        return (
            f"ConcurrentEngine({self.name!r},"
            f" policy={self.policy.name},"
            f" morsel_ops={self.morsel_ops})"
        )
