"""The paper's primary contribution: a CXL-aware scale-up database engine.

* :mod:`repro.core.buffer` — the tiered buffer pool (Sec 3.1);
* :mod:`repro.core.placement` — data-placement policies (OS paging vs
  DB cost-based vs static HTAP pinning);
* :mod:`repro.core.elastic` — memory pooling, warm spawn, migration
  (Sec 3.2);
* :mod:`repro.core.shared` — the rack-scale shared-memory engine
  (Sec 3.3) and :mod:`repro.core.scaleout` — its scale-out baseline;
* :mod:`repro.core.ndp` — near-data processing and active memory
  regions (Sec 4);
* :mod:`repro.core.hetero` — composable heterogeneous racks (Sec 5).
"""

from .autoscale import Autoscaler, QueryJob
from .btree import TieredBTree
from .failover import FailoverOrchestrator
from .morsel import Morsel, RackScheduler
from .timestamps import CXLSharedOracle, LocalAtomicOracle, RPCOracle
from .wal import WriteAheadLog
from .buffer import BufferPoolStats, Tier, TieredBufferPool
from .elastic import ElasticCluster, StrandingModel
from .engine import EngineReport, ScaleUpEngine
from .frame import Frame
from .hetero import ComposableRack, FixedServerRack, OperatorTask
from .locks import LockMode, LockTable
from .ndp import ActiveMemoryRegion, NDPController, NDPOperatorLibrary
from .placement import (
    DbCostPolicy,
    OSPagingPolicy,
    PlacementPolicy,
    StaticPolicy,
)
from .replacement import (
    ClockPolicy,
    LRUKPolicy,
    LRUPolicy,
    TwoQPolicy,
    make_policy,
)
from .scaleout import ScaleOutConfig, ScaleOutEngine
from .sessions import (
    ClientSession,
    ConcurrentEngine,
    FairnessPolicy,
    FifoPolicy,
    RoundRobinPolicy,
    SessionReport,
    SessionRunReport,
    WeightedPolicy,
)
from .shared import SharedEngineConfig, SharedRackEngine
from .temperature import ExactTracker, SampledTracker
from .txn import OLTPReport, TwoPhaseLockingExecutor

__all__ = [
    "ActiveMemoryRegion",
    "Autoscaler",
    "BufferPoolStats",
    "CXLSharedOracle",
    "ClientSession",
    "ClockPolicy",
    "ComposableRack",
    "ConcurrentEngine",
    "DbCostPolicy",
    "ElasticCluster",
    "EngineReport",
    "ExactTracker",
    "FailoverOrchestrator",
    "FairnessPolicy",
    "FifoPolicy",
    "FixedServerRack",
    "Frame",
    "LRUKPolicy",
    "LRUPolicy",
    "LocalAtomicOracle",
    "LockMode",
    "LockTable",
    "Morsel",
    "NDPController",
    "NDPOperatorLibrary",
    "OLTPReport",
    "OSPagingPolicy",
    "OperatorTask",
    "PlacementPolicy",
    "QueryJob",
    "RPCOracle",
    "RackScheduler",
    "RoundRobinPolicy",
    "SampledTracker",
    "ScaleOutConfig",
    "ScaleOutEngine",
    "ScaleUpEngine",
    "SessionReport",
    "SessionRunReport",
    "SharedEngineConfig",
    "SharedRackEngine",
    "StaticPolicy",
    "StrandingModel",
    "Tier",
    "TieredBTree",
    "TieredBufferPool",
    "TwoPhaseLockingExecutor",
    "TwoQPolicy",
    "WeightedPolicy",
    "WriteAheadLog",
    "make_policy",
]
