"""Page-temperature tracking.

Tiering policies need to know which pages are hot. The paper contrasts
two vantage points (Sec 3.1):

* the **OS** tracks temperature by sampling page-table access bits
  (as Meta's TPP does) — cheap but approximate and workload-blind;
* the **database engine** sees every logical page access and "can
  better calculate the utility of keeping a page in a given memory
  tier than the OS" [11].

:class:`ExactTracker` models the engine view; :class:`SampledTracker`
models the OS view with a configurable sampling rate and periodic
aging. Both expose the same small interface.
"""

from __future__ import annotations

import heapq
import random
from typing import Iterable, Protocol, Sequence

from ..errors import ConfigError


class TemperatureTracker(Protocol):
    """Interface shared by engine-side and OS-side trackers."""

    def record(self, page_id: int, is_scan: bool = False) -> None:
        """Observe one access to a page."""

    def record_batch(self, page_ids: Sequence[int], start: int, end: int,
                     is_scan: bool = False) -> None:
        """Observe ``page_ids[start:end]`` in order, equivalent to
        calling :meth:`record` once per element. Batch implementations
        must preserve per-access semantics exactly (aging epochs fire
        at the same access index, sampling consumes the same RNG
        draws) — the buffer pool's fast lane relies on it."""

    def heat(self, page_id: int) -> float:
        """Current hotness estimate (higher = hotter)."""

    def hottest(self, n: int) -> list[int]:
        """The *n* hottest tracked pages."""

    def coldest(self, n: int) -> list[int]:
        """The *n* coldest tracked pages."""

    def forget(self, page_id: int) -> None:
        """Stop tracking a page."""


class ExactTracker:
    """Engine-side tracker: exponentially decayed access frequency.

    Each access adds 1 to the page's heat; all heats decay by ``decay``
    per *epoch* (every ``epoch_accesses`` observed accesses), so heat
    approximates recent access frequency. Scan accesses can be
    discounted (``scan_weight``): the engine knows a sequential scan
    will not re-touch a page soon, a key advantage over the OS view.
    """

    def __init__(self, decay: float = 0.5, epoch_accesses: int = 10_000,
                 scan_weight: float = 0.1) -> None:
        if not 0.0 < decay <= 1.0:
            raise ConfigError(f"decay must be in (0,1]: {decay}")
        if epoch_accesses <= 0:
            raise ConfigError("epoch_accesses must be positive")
        if scan_weight < 0:
            raise ConfigError("scan_weight must be non-negative")
        self.decay = decay
        self.epoch_accesses = epoch_accesses
        self.scan_weight = scan_weight
        self._heat: dict[int, float] = {}
        self._since_epoch = 0

    def record(self, page_id: int, is_scan: bool = False) -> None:
        """Observe one access (scans get a reduced weight)."""
        weight = self.scan_weight if is_scan else 1.0
        self._heat[page_id] = self._heat.get(page_id, 0.0) + weight
        self._since_epoch += 1
        if self._since_epoch >= self.epoch_accesses:
            self._age()

    def record_batch(self, page_ids: Sequence[int], start: int, end: int,
                     is_scan: bool = False) -> None:
        """Observe a run of accesses; equivalent to a :meth:`record`
        loop, with the dict lookups and epoch bookkeeping hoisted.
        Aging fires at exactly the same access index as it would in
        the scalar loop."""
        weight = self.scan_weight if is_scan else 1.0
        heat = self._heat
        heat_get = heat.get
        since = self._since_epoch
        epoch = self.epoch_accesses
        for i in range(start, end):
            pid = page_ids[i]
            heat[pid] = heat_get(pid, 0.0) + weight
            since += 1
            if since >= epoch:
                self._age()
                since = 0
                heat = self._heat  # _age rebuilds the dict
                heat_get = heat.get
        self._since_epoch = since

    def _age(self) -> None:
        self._since_epoch = 0
        if self.decay >= 1.0:
            return
        self._heat = {
            pid: h * self.decay for pid, h in self._heat.items()
            if h * self.decay > 1e-6
        }

    def heat(self, page_id: int) -> float:
        """Decayed access frequency of the page."""
        return self._heat.get(page_id, 0.0)

    def hottest(self, n: int) -> list[int]:
        """The *n* pages with highest heat."""
        return heapq.nlargest(n, self._heat, key=self._heat.__getitem__)

    def coldest(self, n: int) -> list[int]:
        """The *n* pages with lowest heat."""
        return heapq.nsmallest(n, self._heat, key=self._heat.__getitem__)

    def forget(self, page_id: int) -> None:
        """Drop the page's history."""
        self._heat.pop(page_id, None)

    def tracked(self) -> Iterable[int]:
        """Page ids with non-zero heat."""
        return self._heat.keys()


class SampledTracker:
    """OS-side tracker: sampled accesses, no workload knowledge.

    Models page-table access-bit scanning a la TPP/kstaled: only a
    fraction ``sample_rate`` of accesses is observed, scans look
    exactly like random accesses (the OS cannot tell), and heat is a
    coarse counter aged periodically.
    """

    def __init__(self, sample_rate: float = 0.01, decay: float = 0.5,
                 epoch_accesses: int = 10_000,
                 seed: int | None = 0x5eed) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigError(f"sample_rate must be in (0,1]: {sample_rate}")
        if not 0.0 < decay <= 1.0:
            raise ConfigError(f"decay must be in (0,1]: {decay}")
        self.sample_rate = sample_rate
        self.decay = decay
        self.epoch_accesses = epoch_accesses
        self._rng = random.Random(seed)
        self._heat: dict[int, float] = {}
        self._since_epoch = 0

    def record(self, page_id: int, is_scan: bool = False) -> None:
        """Observe one access; most are missed by sampling, and
        *is_scan* is ignored — the OS cannot distinguish scans."""
        del is_scan  # the OS-side tracker is workload-blind
        self._since_epoch += 1
        if self._since_epoch >= self.epoch_accesses:
            self._age()
        if self._rng.random() >= self.sample_rate:
            return
        self._heat[page_id] = self._heat.get(page_id, 0.0) + 1.0

    def record_batch(self, page_ids: Sequence[int], start: int, end: int,
                     is_scan: bool = False) -> None:
        """Observe a run of accesses; equivalent to a :meth:`record`
        loop. One RNG draw per access in the same order, so sampled
        histories stay identical between scalar and batched paths."""
        del is_scan
        rng_random = self._rng.random
        rate = self.sample_rate
        heat = self._heat
        heat_get = heat.get
        since = self._since_epoch
        epoch = self.epoch_accesses
        for i in range(start, end):
            since += 1
            if since >= epoch:
                self._age()
                since = 0
                heat = self._heat
                heat_get = heat.get
            if rng_random() >= rate:
                continue
            pid = page_ids[i]
            heat[pid] = heat_get(pid, 0.0) + 1.0
        self._since_epoch = since

    def _age(self) -> None:
        self._since_epoch = 0
        if self.decay >= 1.0:
            return
        self._heat = {
            pid: h * self.decay for pid, h in self._heat.items()
            if h * self.decay > 1e-6
        }

    def heat(self, page_id: int) -> float:
        """Sampled hotness estimate."""
        return self._heat.get(page_id, 0.0)

    def hottest(self, n: int) -> list[int]:
        """The *n* pages with highest sampled heat."""
        return heapq.nlargest(n, self._heat, key=self._heat.__getitem__)

    def coldest(self, n: int) -> list[int]:
        """The *n* pages with lowest sampled heat (among observed)."""
        return heapq.nsmallest(n, self._heat, key=self._heat.__getitem__)

    def forget(self, page_id: int) -> None:
        """Drop the page's history."""
        self._heat.pop(page_id, None)
