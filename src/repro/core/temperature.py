"""Page-temperature tracking.

Tiering policies need to know which pages are hot. The paper contrasts
two vantage points (Sec 3.1):

* the **OS** tracks temperature by sampling page-table access bits
  (as Meta's TPP does) — cheap but approximate and workload-blind;
* the **database engine** sees every logical page access and "can
  better calculate the utility of keeping a page in a given memory
  tier than the OS" [11].

:class:`ExactTracker` models the engine view; :class:`SampledTracker`
models the OS view with a configurable sampling rate and periodic
aging. Both expose the same small interface.
"""

from __future__ import annotations

import heapq
import random
from typing import Iterable, Protocol, Sequence

import numpy as np

from ..errors import ConfigError
from ..sim.ladder import repeat_add_vec

#: Dense heat arrays never grow past this many page ids; larger (or
#: negative) ids spill into a plain dict side table.
_MAX_DENSE_PIDS = 1 << 22
#: Below this run length the scalar loop beats the numpy setup cost.
_VEC_MIN = 64


class TemperatureTracker(Protocol):
    """Interface shared by engine-side and OS-side trackers."""

    def record(self, page_id: int, is_scan: bool = False) -> None:
        """Observe one access to a page."""

    def record_batch(self, page_ids: Sequence[int], start: int, end: int,
                     is_scan: bool = False) -> None:
        """Observe ``page_ids[start:end]`` in order, equivalent to
        calling :meth:`record` once per element. Batch implementations
        must preserve per-access semantics exactly (aging epochs fire
        at the same access index, sampling consumes the same RNG
        draws) — the buffer pool's fast lane relies on it."""

    def heat(self, page_id: int) -> float:
        """Current hotness estimate (higher = hotter)."""

    def hottest(self, n: int) -> list[int]:
        """The *n* hottest tracked pages."""

    def coldest(self, n: int) -> list[int]:
        """The *n* coldest tracked pages."""

    def forget(self, page_id: int) -> None:
        """Stop tracking a page."""


class ExactTracker:
    """Engine-side tracker: exponentially decayed access frequency.

    Each access adds 1 to the page's heat; all heats decay by ``decay``
    per *epoch* (every ``epoch_accesses`` observed accesses), so heat
    approximates recent access frequency. Scan accesses can be
    discounted (``scan_weight``): the engine knows a sequential scan
    will not re-touch a page soon, a key advantage over the OS view.

    The store is a dense ``page_id → heat`` float64 array plus a
    membership bitmap so the buffer pool's block lane can record whole
    windows in a few numpy ops; ids outside the dense range spill into
    a dict side table.  Every update applies the same IEEE additions in
    the same per-page order as a :meth:`record` loop (duplicated ids go
    through an exact repeated-addition ladder), so heats stay
    bit-identical to the scalar history.
    """

    def __init__(self, decay: float = 0.5, epoch_accesses: int = 10_000,
                 scan_weight: float = 0.1) -> None:
        if not 0.0 < decay <= 1.0:
            raise ConfigError(f"decay must be in (0,1]: {decay}")
        if epoch_accesses <= 0:
            raise ConfigError("epoch_accesses must be positive")
        if scan_weight < 0:
            raise ConfigError("scan_weight must be non-negative")
        self.decay = decay
        self.epoch_accesses = epoch_accesses
        self.scan_weight = scan_weight
        self._harr = np.zeros(0, dtype=np.float64)
        self._present = np.zeros(0, dtype=bool)
        self._over: dict[int, float] = {}
        self._since_epoch = 0

    @property
    def _heat(self) -> dict[int, float]:
        """Dict view of the tracked heats (membership-exact; ids in
        dense-index order rather than first-touch order)."""
        out = {int(pid): float(self._harr[pid])
               for pid in np.nonzero(self._present)[0]}
        if self._over:
            out.update(self._over)
        return out

    def _ensure(self, max_pid: int) -> None:
        size = self._harr.shape[0]
        if max_pid < size:
            return
        new = max(1024, size * 2)
        while new <= max_pid:
            new *= 2
        new = min(new, _MAX_DENSE_PIDS)
        grown = np.zeros(new, dtype=np.float64)
        grown[:size] = self._harr
        self._harr = grown
        pres = np.zeros(new, dtype=bool)
        pres[:size] = self._present
        self._present = pres

    def _add_one(self, pid: int, weight: float) -> None:
        if 0 <= pid < _MAX_DENSE_PIDS:
            self._ensure(pid)
            self._harr[pid] += weight
            self._present[pid] = True
        else:
            pid = int(pid)
            self._over[pid] = self._over.get(pid, 0.0) + weight

    def record(self, page_id: int, is_scan: bool = False) -> None:
        """Observe one access (scans get a reduced weight)."""
        self._add_one(page_id, self.scan_weight if is_scan else 1.0)
        self._since_epoch += 1
        if self._since_epoch >= self.epoch_accesses:
            self._age()

    def record_batch(self, page_ids: Sequence[int], start: int, end: int,
                     is_scan: bool = False) -> None:
        """Observe a run of accesses; equivalent to a :meth:`record`
        loop. ndarray runs are applied in bulk (one fancy-indexed add
        for distinct ids, an exact ladder for duplicates); aging fires
        at exactly the same access index as in the scalar loop."""
        weight = self.scan_weight if is_scan else 1.0
        if (isinstance(page_ids, np.ndarray)
                and end - start >= _VEC_MIN):
            ids = page_ids[start:end]
            since = self._since_epoch
            epoch = self.epoch_accesses
            pos = 0
            n = ids.shape[0]
            while pos < n:
                take = min(n - pos, epoch - since)
                self._apply_uniform(ids[pos:pos + take], weight)
                since += take
                pos += take
                if since >= epoch:
                    self._age()
                    since = 0
            self._since_epoch = since
            return
        since = self._since_epoch
        epoch = self.epoch_accesses
        for i in range(start, end):
            self._add_one(page_ids[i], weight)
            since += 1
            if since >= epoch:
                self._age()
                since = 0
        self._since_epoch = since

    def record_block(self, page_ids: np.ndarray, scans: np.ndarray,
                     start: int, end: int) -> None:
        """Observe ``page_ids[start:end]`` with per-access scan flags —
        equivalent to a :meth:`record` loop over mixed scan/point
        accesses.  Used by the buffer pool's block lane to flush one
        window of deferred tracker updates."""
        if end - start < _VEC_MIN:
            since = self._since_epoch
            epoch = self.epoch_accesses
            scan_w = self.scan_weight
            for i in range(start, end):
                self._add_one(page_ids[i], scan_w if scans[i] else 1.0)
                since += 1
                if since >= epoch:
                    self._age()
                    since = 0
            self._since_epoch = since
            return
        ids = page_ids[start:end]
        flags = scans[start:end]
        since = self._since_epoch
        epoch = self.epoch_accesses
        pos = 0
        n = ids.shape[0]
        scan_w = self.scan_weight
        while pos < n:
            take = min(n - pos, epoch - since)
            fl = flags[pos:pos + take]
            if not fl.any():
                self._apply_uniform(ids[pos:pos + take], 1.0)
            elif fl.all():
                self._apply_uniform(ids[pos:pos + take], scan_w)
            else:
                self._apply_mixed(ids[pos:pos + take], fl)
            since += take
            pos += take
            if since >= epoch:
                self._age()
                since = 0
        self._since_epoch = since

    def _apply_uniform(self, ids: np.ndarray, weight: float) -> None:
        """Bulk-apply one add of ``weight`` per element of ``ids``."""
        lo = int(ids.min())
        hi = int(ids.max())
        if lo < 0 or hi >= _MAX_DENSE_PIDS:
            for pid in ids.tolist():
                self._add_one(pid, weight)
            return
        self._ensure(hi)
        harr = self._harr
        if ids.shape[0] == 1 or bool((ids[1:] > ids[:-1]).all()):
            # Strictly increasing means duplicate-free (scan windows
            # are), so every page takes exactly one add and the
            # sort-based unique can be skipped entirely.
            harr[ids] = harr[ids] + weight
            self._present[ids] = True
            return
        uniq, counts = np.unique(ids, return_counts=True)
        singles = uniq[counts == 1]
        if singles.shape[0]:
            harr[singles] = harr[singles] + weight
        dmask = counts > 1
        if dmask.any():
            dups = uniq[dmask]
            heats = harr[dups]
            repeat_add_vec(heats, weight, counts[dmask].astype(np.int64))
            harr[dups] = heats
        self._present[uniq] = True

    def _apply_mixed(self, ids: np.ndarray, scans: np.ndarray) -> None:
        """Bulk-apply per-access weights (scan-discounted or full)."""
        lo = int(ids.min())
        hi = int(ids.max())
        scan_w = self.scan_weight
        if lo < 0 or hi >= _MAX_DENSE_PIDS:
            for pid, flag in zip(ids.tolist(), scans.tolist()):
                self._add_one(pid, scan_w if flag else 1.0)
            return
        self._ensure(hi)
        # Scans and point accesses usually touch disjoint page sets
        # (OLAP vs OLTP tables); when they do, every page sees a single
        # weight and each group applies as one uniform bulk add —
        # additions to distinct pages are independent, so no sort is
        # needed.
        if hi < (1 << 20):
            s_ids = ids[scans]
            p_ids = ids[~scans]
            mark = np.zeros(hi + 1, dtype=bool)
            mark[s_ids] = True
            if not mark[p_ids].any():
                if p_ids.shape[0]:
                    self._apply_uniform(p_ids, 1.0)
                if s_ids.shape[0]:
                    self._apply_uniform(s_ids, scan_w)
                return
        weights = np.where(scans, scan_w, 1.0)
        order = np.argsort(ids, kind="stable")
        sid = ids[order]
        sw = weights[order]
        n = sid.shape[0]
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(sid[1:], sid[:-1], out=first[1:])
        starts = np.nonzero(first)[0]
        counts = np.diff(np.append(starts, n))
        uniq = sid[starts]
        wmin = np.minimum.reduceat(sw, starts)
        wmax = np.maximum.reduceat(sw, starts)
        uniform = wmin == wmax
        harr = self._harr
        smask = uniform & (counts == 1)
        if smask.any():
            singles = uniq[smask]
            harr[singles] = harr[singles] + wmin[smask]
        dmask = uniform & (counts > 1)
        if dmask.any():
            dups = uniq[dmask]
            heats = harr[dups]
            repeat_add_vec(heats, wmin[dmask], counts[dmask].astype(np.int64))
            harr[dups] = heats
        if not uniform.all():
            # A page touched by both scans and point accesses inside one
            # window: additions don't commute across weights, so replay
            # that page's adds in original trace order.
            for gi in np.nonzero(~uniform)[0]:
                pid = int(uniq[gi])
                a = int(starts[gi])
                b = a + int(counts[gi])
                h = float(harr[pid])
                for w in sw[a:b].tolist():
                    h += w
                harr[pid] = h
        self._present[uniq] = True

    def _age(self) -> None:
        self._since_epoch = 0
        if self.decay >= 1.0:
            return
        harr = self._harr
        np.multiply(harr, self.decay, out=harr)
        keep = harr > 1e-6
        np.logical_and(self._present, keep, out=self._present)
        harr[~self._present] = 0.0
        if self._over:
            self._over = {
                pid: h * self.decay for pid, h in self._over.items()
                if h * self.decay > 1e-6
            }

    def heat(self, page_id: int) -> float:
        """Decayed access frequency of the page."""
        if 0 <= page_id < self._harr.shape[0]:
            if self._present[page_id]:
                return float(self._harr[page_id])
            return 0.0
        return self._over.get(int(page_id), 0.0)

    def heat_array(self, page_ids: Sequence[int]) -> np.ndarray:
        """Heats for a batch of pages; elementwise equal to
        :meth:`heat`.  Lets placement policies sort thousands of
        residents without a python call per key."""
        ids = np.asarray(page_ids, dtype=np.int64)
        out = np.zeros(ids.shape[0])
        size = self._harr.shape[0]
        dense = (ids >= 0) & (ids < size)
        if dense.all():
            np.copyto(out, np.where(self._present[ids],
                                    self._harr[ids], 0.0))
        else:
            sel = ids[dense]
            out[dense] = np.where(self._present[sel],
                                  self._harr[sel], 0.0)
            for i in np.nonzero(~dense)[0]:
                out[i] = self.heat(int(ids[i]))
        return out

    def hottest(self, n: int) -> list[int]:
        """The *n* pages with highest heat."""
        heat = self._heat
        return heapq.nlargest(n, heat, key=heat.__getitem__)

    def coldest(self, n: int) -> list[int]:
        """The *n* pages with lowest heat."""
        heat = self._heat
        return heapq.nsmallest(n, heat, key=heat.__getitem__)

    def forget(self, page_id: int) -> None:
        """Drop the page's history."""
        if 0 <= page_id < self._harr.shape[0]:
            self._present[page_id] = False
            self._harr[page_id] = 0.0
        else:
            self._over.pop(int(page_id), None)

    def tracked(self) -> Iterable[int]:
        """Page ids with non-zero heat."""
        return self._heat.keys()


class SampledTracker:
    """OS-side tracker: sampled accesses, no workload knowledge.

    Models page-table access-bit scanning a la TPP/kstaled: only a
    fraction ``sample_rate`` of accesses is observed, scans look
    exactly like random accesses (the OS cannot tell), and heat is a
    coarse counter aged periodically.
    """

    def __init__(self, sample_rate: float = 0.01, decay: float = 0.5,
                 epoch_accesses: int = 10_000,
                 seed: int | None = 0x5eed) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigError(f"sample_rate must be in (0,1]: {sample_rate}")
        if not 0.0 < decay <= 1.0:
            raise ConfigError(f"decay must be in (0,1]: {decay}")
        self.sample_rate = sample_rate
        self.decay = decay
        self.epoch_accesses = epoch_accesses
        self._rng = random.Random(seed)
        self._heat: dict[int, float] = {}
        self._since_epoch = 0

    def record(self, page_id: int, is_scan: bool = False) -> None:
        """Observe one access; most are missed by sampling, and
        *is_scan* is ignored — the OS cannot distinguish scans."""
        del is_scan  # the OS-side tracker is workload-blind
        self._since_epoch += 1
        if self._since_epoch >= self.epoch_accesses:
            self._age()
        if self._rng.random() >= self.sample_rate:
            return
        self._heat[page_id] = self._heat.get(page_id, 0.0) + 1.0

    def record_batch(self, page_ids: Sequence[int], start: int, end: int,
                     is_scan: bool = False) -> None:
        """Observe a run of accesses; equivalent to a :meth:`record`
        loop. One RNG draw per access in the same order, so sampled
        histories stay identical between scalar and batched paths."""
        del is_scan
        rng_random = self._rng.random
        rate = self.sample_rate
        heat = self._heat
        heat_get = heat.get
        since = self._since_epoch
        epoch = self.epoch_accesses
        for i in range(start, end):
            since += 1
            if since >= epoch:
                self._age()
                since = 0
                heat = self._heat
                heat_get = heat.get
            if rng_random() >= rate:
                continue
            pid = page_ids[i]
            heat[pid] = heat_get(pid, 0.0) + 1.0
        self._since_epoch = since

    def _age(self) -> None:
        self._since_epoch = 0
        if self.decay >= 1.0:
            return
        self._heat = {
            pid: h * self.decay for pid, h in self._heat.items()
            if h * self.decay > 1e-6
        }

    def heat(self, page_id: int) -> float:
        """Sampled hotness estimate."""
        return self._heat.get(page_id, 0.0)

    def hottest(self, n: int) -> list[int]:
        """The *n* pages with highest sampled heat."""
        return heapq.nlargest(n, self._heat, key=self._heat.__getitem__)

    def coldest(self, n: int) -> list[int]:
        """The *n* pages with lowest sampled heat (among observed)."""
        return heapq.nsmallest(n, self._heat, key=self._heat.__getitem__)

    def forget(self, page_id: int) -> None:
        """Drop the page's history."""
        self._heat.pop(page_id, None)
