"""The scale-up engine facade.

:class:`ScaleUpEngine` bundles a host, its memory tiers, and a tiered
buffer pool behind a small API: build a configuration, feed it access
traces, read back an :class:`EngineReport`. It is the object most
examples and experiments construct first.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .. import config
from ..errors import ConfigError
from ..sim.context import SimContext
from ..sim.interconnect import AccessPath, Link
from ..sim.memory import MemoryDevice
from ..storage.disk import StorageDevice
from ..storage.file import PageFile
from ..units import PAGE_SIZE, SECOND, fmt_ns
from ..sim.ladder import repeat_add
from ..workloads.traces import Access, AccessBlock, blocks_to_accesses
from .buffer import Tier, TieredBufferPool
from .placement import DbCostPolicy, PlacementPolicy
from .temperature import ExactTracker

#: Upper bound on one coalesced run handed to the pool's batched lane;
#: keeps the pending-page buffer small on very long uniform traces.
RUN_CHUNK = 4096


@dataclass
class EngineReport:
    """Outcome of running a trace through an engine."""

    name: str
    ops: int = 0
    total_ns: float = 0.0
    demand_ns: float = 0.0
    think_ns: float = 0.0
    hit_rate: float = 0.0
    tier_hit_rates: list[float] = field(default_factory=list)
    migrations: int = 0
    misses: int = 0
    #: Hierarchical metrics snapshot taken when the run finished
    #: (device/link/pool/... namespaces); purely observational.
    metrics: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def mean_latency_ns(self) -> float:
        """Mean demand latency per access."""
        if self.ops == 0:
            return 0.0
        return self.demand_ns / self.ops

    @property
    def throughput_ops_per_s(self) -> float:
        """Accesses per second of virtual time."""
        if self.total_ns == 0:
            return 0.0
        return self.ops / self.total_ns * SECOND

    def slowdown_vs(self, baseline: "EngineReport") -> float:
        """Runtime ratio against a baseline run of the same trace."""
        if baseline.total_ns == 0:
            raise ConfigError("baseline has zero runtime")
        return self.total_ns / baseline.total_ns

    def __str__(self) -> str:
        tiers = ", ".join(f"{r:.1%}" for r in self.tier_hit_rates)
        return (
            f"EngineReport({self.name}: ops={self.ops:,},"
            f" time={fmt_ns(self.total_ns)},"
            f" mean={self.mean_latency_ns:.0f}ns,"
            f" hit={self.hit_rate:.1%} [{tiers}],"
            f" migrations={self.migrations})"
        )


@dataclass
class ConcurrentReport:
    """Outcome of a multi-threaded run (the heap-interleave compat
    lane; see :class:`~repro.core.sessions.SessionRunReport` for the
    session scheduler's report).

    Per-thread latency lists are the only stored copy; the flat view,
    the latency sum, and per-thread op counts are derived, so each op
    is stored once instead of three times. Percentile semantics are
    unchanged — :func:`~repro.metrics.stats.percentile` sorts its
    samples, so deriving the flat view in thread order instead of
    completion order cannot change p95.
    """

    name: str
    threads: int = 1
    ops: int = 0
    makespan_ns: float = 0.0
    latencies_by_thread: dict[int, list[float]] = field(
        default_factory=dict)

    @property
    def latencies(self) -> list[float]:
        """Flat latency view, derived per call in thread order."""
        return [
            latency for thread in sorted(self.latencies_by_thread)
            for latency in self.latencies_by_thread[thread]
        ]

    @property
    def latency_sum_ns(self) -> float:
        """Total access latency across all threads."""
        total = 0.0
        for thread in sorted(self.latencies_by_thread):
            for latency in self.latencies_by_thread[thread]:
                total += latency
        return total

    @property
    def per_thread_ops(self) -> dict[int, int]:
        """Op counts per thread, derived from the latency lists."""
        return {
            thread: len(latencies)
            for thread, latencies in self.latencies_by_thread.items()
        }

    @property
    def mean_latency_ns(self) -> float:
        """Mean access latency across all threads."""
        if self.ops == 0:
            return 0.0
        return self.latency_sum_ns / self.ops

    @property
    def p95_latency_ns(self) -> float:
        """95th-percentile access latency."""
        latencies = self.latencies
        if not latencies:
            return 0.0
        from ..metrics.stats import percentile
        return percentile(latencies, 0.95)

    @property
    def throughput_ops_per_s(self) -> float:
        """Aggregate accesses per second of virtual time."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.ops / self.makespan_ns * SECOND

    def p95_for(self, threads: Iterable[int]) -> float:
        """95th-percentile latency restricted to *threads* (e.g. the
        point-lookup threads in an interference experiment)."""
        from ..metrics.stats import percentile
        samples = [
            latency for thread in threads
            for latency in self.latencies_by_thread.get(thread, [])
        ]
        if not samples:
            return 0.0
        return percentile(samples, 0.95)


class ScaleUpEngine:
    """A single-host database engine over tiered (CXL) memory."""

    def __init__(self, pool: TieredBufferPool, name: str = "engine",
                 ctx: SimContext | None = None) -> None:
        self.pool = pool
        self.name = name
        # The engine shares its pool's instrumentation context; an
        # explicitly passed context must BE the pool's (one spine, one
        # clock, per run).
        if ctx is not None and ctx is not pool.ctx:
            raise ConfigError(
                f"engine {name!r} was given a SimContext that is not"
                " its pool's; build the pool with the same context"
            )
        self.ctx = pool.ctx
        self.ctx.bind_clock(pool.clock, owner=f"engine:{name}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def build(
        cls,
        dram_pages: int,
        cxl_pages: int = 0,
        placement: PlacementPolicy | None = None,
        cxl_spec: config.MemorySpec | None = None,
        dram_spec: config.MemorySpec | None = None,
        through_switch: bool = False,
        backing: PageFile | None = None,
        with_storage: bool = True,
        name: str = "engine",
        page_size: int = PAGE_SIZE,
        ctx: SimContext | None = None,
    ) -> "ScaleUpEngine":
        """Build an engine with a DRAM tier and an optional CXL tier.

        ``through_switch`` adds a CXL 2.0 switch hop to the CXL tier's
        access path (the Fig 2(b) pooled configuration). With
        ``with_storage`` (default) and no explicit *backing*, an NVMe
        page file backs the pool so misses hit storage, as in a
        disk-based engine.

        *ctx* is the instrumentation spine threaded into every device,
        link, and the pool; omitted, a fresh one is created (picking
        up any ambient trace sink / metrics registry, see
        :func:`repro.sim.context.set_ambient`) so each engine stays
        independently clocked.
        """
        if dram_pages <= 0:
            raise ConfigError("dram_pages must be positive")
        if ctx is None:
            ctx = SimContext.ambient()
        dram_device = MemoryDevice(
            dram_spec or config.local_ddr5(), name=f"{name}-dram", ctx=ctx
        )
        tiers = [Tier(
            name="dram",
            path=AccessPath(device=dram_device),
            capacity_pages=dram_pages,
        )]
        if cxl_pages > 0:
            cxl_device = MemoryDevice(
                cxl_spec or config.cxl_expander_ddr5(), name=f"{name}-cxl",
                ctx=ctx,
            )
            links: tuple[Link, ...] = (
                Link(config.cxl_port(), name=f"{name}-cxl-port", ctx=ctx),
            )
            if through_switch:
                links += (
                    Link(config.cxl_switch_hop(),
                         name=f"{name}-cxl-switch", ctx=ctx),
                )
            tiers.append(Tier(
                name="cxl",
                path=AccessPath(device=cxl_device, links=links),
                capacity_pages=cxl_pages,
            ))
        if backing is None and with_storage:
            backing = PageFile(StorageDevice(), name=f"{name}-tablespace")
        pool = TieredBufferPool(
            tiers=tiers,
            backing=backing,
            placement=placement or DbCostPolicy(),
            tracker=ExactTracker(),
            page_size=page_size,
            ctx=ctx,
        )
        return cls(pool, name=name)

    # -- execution ----------------------------------------------------------

    def run(self, trace: Iterable[Access] | Iterable[AccessBlock],
            label: str | None = None,
            sync_frames: bool = True) -> EngineReport:
        """Execute a trace; returns the run report.

        Each access charges its CPU think time plus the buffer pool's
        demand latency to the engine clock. The trace may carry scalar
        :class:`Access` records, :class:`AccessBlock` chunks, or a mix
        of both — the simulated result is identical either way.

        *sync_frames* controls whether deferred per-frame statistics
        (access counts, recency, temperature) are materialised when
        the run finishes. The report itself is built from eagerly
        maintained counters, so demand-only measurements on throwaway
        engines can pass ``False`` and skip the fold; any later reader
        of per-frame state still forces it on demand.

        With the pool's fast lane enabled, consecutive accesses that
        share one shape (size, read/write, scan flag, think time) are
        coalesced into :meth:`TieredBufferPool.access_batch` calls:
        scalar accesses through a per-access peek loop, blocks through
        one vectorised boundary scan per chunk
        (:meth:`AccessBlock.segment_bounds`) that feeds the batch lane
        maximal same-shape runs. The batch lane threads ``demand_ns``
        through as its accumulator and charges think time per access
        inside the run, so every float addition happens in the scalar
        loop's order — the report is bit-identical in every lane and
        delivery form. With the fast lane off the loop uses the
        pool's compat access (the frozen pre-fast-lane arithmetic,
        blocks expanded to scalar accesses), which is what perfbench
        measures speedups against.
        """
        pool = self.pool
        clock = pool.clock
        ctx = self.ctx
        start_ns = clock.now
        start_accesses = pool.stats.accesses
        start_misses = pool.stats.misses
        start_migrations = pool.stats.migrations
        demand_ns = 0.0
        think_ns = 0.0
        ops = 0
        fast = getattr(pool, "fast_lane", False)
        with ctx.span(f"run:{label or self.name}", cat="engine"):
            if fast:
                batch = pool.access_batch
                access_block = pool.access_block
                pending: list[int] = []
                run_nbytes = -1
                run_write = False
                run_scan = False
                run_think = 0.0
                for item in trace:
                    if type(item) is AccessBlock:
                        if pending:
                            demand_ns = batch(
                                pending, nbytes=run_nbytes,
                                write=run_write, is_scan=run_scan,
                                think_ns=run_think, accum=demand_ns,
                            )
                            pending.clear()
                            run_nbytes = -1
                        n = len(item)
                        if not n:
                            continue
                        ops += n
                        # The block lane resolves the whole block —
                        # hits in array ops, boundaries scalar —
                        # bit-identically to the segment decomposition
                        # this loop used to do inline.
                        demand_ns = access_block(item, accum=demand_ns)
                        thinks = item.think_ns
                        if thinks.any():
                            # Replay the think accumulator's scalar
                            # addition sequence.  Whole-nanosecond
                            # thinks on a whole-number accumulator
                            # below 2**53 add without rounding, so the
                            # plain sum is bit-identical; otherwise one
                            # exact ladder per shape segment (short
                            # segments loop; the ladder setup only
                            # pays off beyond that).
                            total = float(thinks.sum())
                            if (think_ns.is_integer()
                                    and think_ns + total < 2.0 ** 53
                                    and bool((np.floor(thinks)
                                              == thinks).all())):
                                think_ns += total
                                continue
                            seg_start = 0
                            for seg_end in item.segment_bounds()[1:]:
                                t = float(thinks[seg_start])
                                if t:
                                    count = seg_end - seg_start
                                    if count >= 64:
                                        think_ns = repeat_add(
                                            think_ns, t, count)
                                    else:
                                        for _ in range(count):
                                            think_ns += t
                                seg_start = seg_end
                        continue
                    access = item
                    if (access.nbytes != run_nbytes
                            or access.write != run_write
                            or access.is_scan != run_scan
                            or access.think_ns != run_think
                            or len(pending) >= RUN_CHUNK):
                        if pending:
                            demand_ns = batch(
                                pending, nbytes=run_nbytes,
                                write=run_write, is_scan=run_scan,
                                think_ns=run_think, accum=demand_ns,
                            )
                            pending.clear()
                        run_nbytes = access.nbytes
                        run_write = access.write
                        run_scan = access.is_scan
                        run_think = access.think_ns
                    pending.append(access.page_id)
                    if access.think_ns:
                        think_ns += access.think_ns
                    ops += 1
                if pending:
                    demand_ns = batch(
                        pending, nbytes=run_nbytes, write=run_write,
                        is_scan=run_scan, think_ns=run_think,
                        accum=demand_ns,
                    )
            else:
                access_fn = getattr(pool, "_access_compat", pool.access)
                for access in blocks_to_accesses(trace):
                    if access.think_ns:
                        clock.advance(access.think_ns)
                        think_ns += access.think_ns
                    demand_ns += access_fn(
                        access.page_id,
                        access.nbytes,
                        access.write,
                        access.is_scan,
                    )
                    ops += 1
        if sync_frames:
            sync_fn = getattr(pool, "sync_frame_stats", None)
            if sync_fn is not None:
                sync_fn()
        stats = pool.stats
        window = stats.accesses - start_accesses
        report = EngineReport(
            name=label or self.name,
            ops=ops,
            total_ns=clock.now - start_ns,
            demand_ns=demand_ns,
            think_ns=think_ns,
            migrations=stats.migrations - start_migrations,
            misses=stats.misses - start_misses,
        )
        if window > 0:
            report.hit_rate = 1.0 - report.misses / window
            report.tier_hit_rates = [
                stats.per_tier[i].hits / stats.accesses
                if stats.accesses else 0.0
                for i in range(len(pool.tiers))
            ]
        metrics = ctx.metrics
        metrics.incr("engine.runs")
        metrics.incr("engine.ops", ops)
        if report.total_ns > 0:
            metrics.observe("engine.run_ns", report.total_ns)
        report.metrics = metrics.snapshot()
        return report

    def run_concurrent(self, traces: list[Iterable[Access]],
                       label: str | None = None
                       ) -> "ConcurrentReport":
        """Execute several traces as concurrent threads (compat lane).

        .. deprecated::
            This is the ad-hoc heap interleave kept for compatibility;
            new code should use :meth:`run_sessions` (the
            discrete-event session scheduler in
            :mod:`repro.core.sessions`), which is block-native,
            deterministic under session permutation, and byte-identical
            to :meth:`run` at N=1. Usage here is observable via the
            ``engine.concurrent_compat_runs`` metric.

        Threads advance in global time order (the thread with the
        smallest clock issues next), so bandwidth contention on
        shared devices and links is resolved in arrival order. Think
        time overlaps across threads; memory transfers contend. Block
        traces are accepted but expanded to scalar accesses.
        """
        if not traces:
            raise ConfigError("need at least one trace")
        pool = self.pool
        iterators = [iter(blocks_to_accesses(trace)) for trace in traces]
        report = ConcurrentReport(
            name=label or f"{self.name}-x{len(traces)}",
            threads=len(traces),
        )
        heap: list[tuple[float, int]] = []
        for thread, iterator in enumerate(iterators):
            heap.append((0.0, thread))
        heapq.heapify(heap)
        thread_end = [0.0] * len(traces)
        run_start_ns = pool.clock.now
        while heap:
            now, thread = heapq.heappop(heap)
            try:
                access = next(iterators[thread])
            except StopIteration:
                thread_end[thread] = now
                continue
            issue = now + access.think_ns
            done = pool.access_at(
                access.page_id, issue, nbytes=access.nbytes,
                write=access.write, is_scan=access.is_scan,
            )
            report.ops += 1
            report.latencies_by_thread.setdefault(thread, []).append(
                done - issue)
            heapq.heappush(heap, (done, thread))
        report.makespan_ns = max(thread_end)
        if pool.clock.now < report.makespan_ns:
            pool.clock.advance_to(report.makespan_ns)
        ctx = self.ctx
        if ctx.trace.enabled:
            ctx.trace.emit_span(
                f"run-concurrent:{report.name}", "engine",
                run_start_ns, pool.clock.now,
                {"threads": report.threads, "ops": report.ops},
            )
        ctx.metrics.incr("engine.concurrent_runs")
        ctx.metrics.incr("engine.concurrent_compat_runs")
        ctx.metrics.incr("engine.ops", report.ops)
        return report

    def run_sessions(self, sessions, label: str | None = None,
                     policy=None, morsel_ops: int | None = None,
                     escalate: bool = True):
        """Execute several client sessions as genuine concurrency.

        Convenience front end for
        :class:`~repro.core.sessions.ConcurrentEngine`: *sessions* may
        hold :class:`~repro.core.sessions.ClientSession` objects or
        raw traces (scalar or block form). Returns a
        :class:`~repro.core.sessions.SessionRunReport`. An N=1 run is
        byte-identical to :meth:`run` on the same trace; N>1 runs are
        deterministic and permutation-invariant. *escalate* forwards
        the contention-aware bulk-quantum switch (byte-identical on or
        off; off pins the exact per-quantum schedule for tests).
        """
        from .sessions import MORSEL_OPS, ConcurrentEngine
        executor = ConcurrentEngine(
            self.pool, name=self.name, policy=policy,
            morsel_ops=MORSEL_OPS if morsel_ops is None else morsel_ops,
            escalate=escalate,
        )
        return executor.run(sessions, label=label)

    def warm_with(self, trace: Iterable[Access]) -> None:
        """Run a trace purely to populate the pool (report discarded)."""
        self.run(trace, label=f"{self.name}-warmup")

    def preload(self, page_ids, nbytes: int | None = None,
                write: bool = False, is_scan: bool = False,
                think_ns: float = 0.0) -> None:
        """Array-native warm-up: charge one uniform run of page ids.

        The id array routes straight into the pool's bulk lanes —
        cold-pool faults resolve through the vectorised fault lane
        instead of one scalar chain per page — leaving pool state
        byte-identical to :meth:`warm_with` on the equivalent scalar
        trace (same ids, same shape). *nbytes* defaults to the pool's
        cache-line access size, matching ``Access()`` defaults.
        """
        kwargs = {} if nbytes is None else {"nbytes": nbytes}
        self.pool.preload(page_ids, write=write, is_scan=is_scan,
                          think_ns=think_ns, **kwargs)

    def __repr__(self) -> str:
        return f"ScaleUpEngine({self.name!r}, pool={self.pool!r})"
