"""ARIES-lite crash recovery over tiered memory and a placed log.

Ties the WAL backends (:mod:`repro.core.wal`) to real crash
semantics: updates go to volatile pages and to the log; commits force
the log; a crash discards volatile state; recovery runs analysis /
redo / undo and must restore exactly the committed effects.

Placement matters twice (and experiment A7 measures both):

* the log backend sets commit latency (NVMe vs CXL-NVM vs replicated);
* recovery reads the log at the backend's bandwidth, so a CXL-NVM log
  replays at memory speed while an NVMe log replays at disk speed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import TransactionError
from ..units import transfer_time_ns
from .wal import LogBackend, WriteAheadLog

#: Approximate serialized size of one update record.
RECORD_BYTES = 128
#: Rate at which redo/undo applies records to pages.
APPLY_RATE = 2.0  # bytes/ns


class RecordKind(enum.Enum):
    """Log record types."""

    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One write-ahead log record."""

    lsn: int
    kind: RecordKind
    txn_id: int = -1
    page_id: int = -1
    key: object = None
    before: object = None
    after: object = None
    # Checkpoint payload: durable page LSNs at checkpoint time.
    page_lsns: dict | None = None


@dataclass
class RecoveryReport:
    """Outcome of one recovery pass."""

    analysis_records: int = 0
    redo_applied: int = 0
    undo_applied: int = 0
    losers: set[int] = field(default_factory=set)
    time_ns: float = 0.0


class RecoveryManager:
    """A minimal ARIES: WAL + volatile/durable page images.

    Pages are dictionaries (key -> value). ``volatile`` is the buffer
    pool's view; ``durable`` is what storage holds. ``flush_page``
    moves an image to durable (honoring WAL: the log always covers
    what the durable image contains).
    """

    def __init__(self, wal: WriteAheadLog) -> None:
        self.wal = wal
        self.volatile: dict[int, dict] = {}
        self.durable: dict[int, dict] = {}
        self.volatile_page_lsn: dict[int, int] = {}
        self.durable_page_lsn: dict[int, int] = {}
        self.log: list[LogRecord] = []
        self.committed: set[int] = set()
        self.aborted: set[int] = set()
        self.active: set[int] = set()
        # Strict 2PL on writes: ARIES undo is only correct if no
        # transaction overwrites another's uncommitted data.
        self._write_locks: dict[tuple[int, object], int] = {}
        self._next_lsn = 1
        self.now_ns = 0.0

    # -- logging ----------------------------------------------------------

    def _append(self, record: LogRecord) -> None:
        self.log.append(record)
        done = self.wal.append(RECORD_BYTES, self.now_ns)
        if done is not None:
            self.now_ns = done

    # -- transaction API -----------------------------------------------------

    def begin(self, txn_id: int) -> None:
        """Start a transaction."""
        if txn_id in self.active or txn_id in self.committed:
            raise TransactionError(f"txn {txn_id} already used")
        self.active.add(txn_id)

    def update(self, txn_id: int, page_id: int, key: object,
               value: object) -> None:
        """Apply an update to the volatile page, logging before/after."""
        if txn_id not in self.active:
            raise TransactionError(f"txn {txn_id} not active")
        holder = self._write_locks.get((page_id, key))
        if holder is not None and holder != txn_id:
            raise TransactionError(
                f"dirty write: ({page_id}, {key!r}) is write-locked"
                f" by txn {holder}"
            )
        self._write_locks[(page_id, key)] = txn_id
        page = self.volatile.setdefault(
            page_id, dict(self.durable.get(page_id, {}))
        )
        lsn = self._next_lsn
        self._next_lsn += 1
        self._append(LogRecord(
            lsn=lsn, kind=RecordKind.UPDATE, txn_id=txn_id,
            page_id=page_id, key=key,
            before=page.get(key), after=value,
        ))
        page[key] = value
        self.volatile_page_lsn[page_id] = lsn

    def commit(self, txn_id: int) -> float:
        """Commit: log the record and force the WAL. Returns the
        durable-commit time."""
        if txn_id not in self.active:
            raise TransactionError(f"txn {txn_id} not active")
        lsn = self._next_lsn
        self._next_lsn += 1
        self.log.append(LogRecord(lsn=lsn, kind=RecordKind.COMMIT,
                                  txn_id=txn_id))
        self.wal.append(RECORD_BYTES, self.now_ns)
        done = self.wal.flush(self.now_ns)
        if done is not None:
            self.now_ns = done
        self.active.discard(txn_id)
        self.committed.add(txn_id)
        self._release_locks(txn_id)
        return self.now_ns

    def abort(self, txn_id: int) -> None:
        """Abort: roll back the transaction's updates (logged)."""
        if txn_id not in self.active:
            raise TransactionError(f"txn {txn_id} not active")
        for record in reversed(self.log):
            if record.kind is RecordKind.UPDATE and \
                    record.txn_id == txn_id:
                page = self.volatile.setdefault(
                    record.page_id,
                    dict(self.durable.get(record.page_id, {})),
                )
                if record.before is None:
                    page.pop(record.key, None)
                else:
                    page[record.key] = record.before
        lsn = self._next_lsn
        self._next_lsn += 1
        self._append(LogRecord(lsn=lsn, kind=RecordKind.ABORT,
                               txn_id=txn_id))
        self.active.discard(txn_id)
        self.aborted.add(txn_id)
        self._release_locks(txn_id)

    def _release_locks(self, txn_id: int) -> None:
        self._write_locks = {
            key: holder for key, holder in self._write_locks.items()
            if holder != txn_id
        }

    # -- storage interaction ----------------------------------------------------

    def flush_page(self, page_id: int) -> None:
        """Write a volatile page image to durable storage (WAL rule:
        its covering log records were appended before this point)."""
        if page_id in self.volatile:
            self.durable[page_id] = dict(self.volatile[page_id])
            self.durable_page_lsn[page_id] = \
                self.volatile_page_lsn.get(page_id, 0)

    def checkpoint(self) -> None:
        """Flush everything and log a checkpoint."""
        for page_id in list(self.volatile):
            self.flush_page(page_id)
        lsn = self._next_lsn
        self._next_lsn += 1
        self._append(LogRecord(
            lsn=lsn, kind=RecordKind.CHECKPOINT,
            page_lsns=dict(self.durable_page_lsn),
        ))
        self.wal.flush(self.now_ns)

    # -- crash and recovery --------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state (the log and durable pages survive)."""
        self.volatile.clear()
        self.volatile_page_lsn.clear()
        self._write_locks.clear()

    def recover(self, backend: LogBackend | None = None
                ) -> RecoveryReport:
        """Analysis + redo + undo; rebuilds volatile state.

        *backend* (default: the WAL's backend) sets the log *read*
        bandwidth, so the report's time reflects where the log lives.
        """
        report = RecoveryReport()
        backend = backend or self.wal.backend

        # Analysis: find losers (txns with no commit/abort record).
        seen: set[int] = set()
        finished: set[int] = set()
        start_lsn = 0
        for record in self.log:
            report.analysis_records += 1
            if record.kind is RecordKind.CHECKPOINT:
                start_lsn = record.lsn
            if record.txn_id >= 0:
                seen.add(record.txn_id)
                if record.kind in (RecordKind.COMMIT, RecordKind.ABORT):
                    finished.add(record.txn_id)
        report.losers = seen - finished

        # Redo: repeat history for records newer than the durable page.
        self.volatile = {
            page_id: dict(image)
            for page_id, image in self.durable.items()
        }
        self.volatile_page_lsn = dict(self.durable_page_lsn)
        for record in self.log:
            if record.kind is not RecordKind.UPDATE:
                continue
            if record.lsn <= self.volatile_page_lsn.get(record.page_id, 0):
                continue
            page = self.volatile.setdefault(record.page_id, {})
            if record.after is None:
                page.pop(record.key, None)
            else:
                page[record.key] = record.after
            self.volatile_page_lsn[record.page_id] = record.lsn
            report.redo_applied += 1

        # Undo the losers, newest first.
        for record in reversed(self.log):
            if record.kind is RecordKind.UPDATE and \
                    record.txn_id in report.losers:
                page = self.volatile.setdefault(record.page_id, {})
                if record.before is None:
                    page.pop(record.key, None)
                else:
                    page[record.key] = record.before
                report.undo_applied += 1
        self.active -= report.losers
        self.aborted |= report.losers

        # Timing: read the log tail from its backend, apply records.
        replayed = [r for r in self.log if r.lsn > start_lsn]
        log_bytes = max(1, len(replayed)) * RECORD_BYTES
        report.time_ns = (
            backend.force_time_ns(log_bytes)  # read ~= write envelope
            + transfer_time_ns(
                (report.redo_applied + report.undo_applied + 1)
                * RECORD_BYTES, APPLY_RATE)
        )
        self.now_ns += report.time_ns
        return report

    # -- verification helpers ----------------------------------------------------------

    def read(self, page_id: int, key: object) -> object | None:
        """Current (volatile) value of a key."""
        page = self.volatile.get(page_id)
        if page is None:
            page = self.durable.get(page_id, {})
        return page.get(key)
