"""Write-ahead logging across the new memory hierarchy.

Sec 3.3 points at pooling modules "with different mixes of volatile
and non-volatile memory" (CMM-H-style devices, ref [48]) and Sec 4 at
CXL improving "mechanisms central to OLTP". The log is the mechanism
most sensitive to where durability lives:

* NVMe group commit — the classic disk-based force (~20 us);
* CXL NVM expander — byte-addressable persistence at sub-us stores;
* RDMA-replicated DRAM — durability by copying to other servers;
* battery-backed local DRAM — the (optimistic) lower bound.

:class:`WriteAheadLog` models group commit over any backend and
reports per-transaction commit latencies, so experiment A7 can
compare backends at equal workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from .. import config
from ..errors import ConfigError
from ..metrics.stats import StreamingStats
from ..sim.context import SimContext
from ..sim.interconnect import AccessPath, Link
from ..sim.memory import MemoryDevice
from ..sim.rdma import RDMAFabric
from ..storage.disk import StorageDevice

#: A force function: batch size in bytes -> force duration in ns.
ForceFn = Callable[[int], float]


class LogBackend(Protocol):
    """A durability backend for the log."""

    name: str

    def force_time_ns(self, batch_bytes: int) -> float:
        """Time to make *batch_bytes* durable."""


@dataclass
class NVMeLogBackend:
    """Classic group commit to an NVMe SSD."""

    device: StorageDevice
    name: str = "nvme"

    def force_time_ns(self, batch_bytes: int) -> float:
        """One write I/O per force."""
        return self.device.write_time(max(batch_bytes, 4096))


@dataclass
class CXLNVMLogBackend:
    """Byte-addressable persistent stores into a CXL NVM expander."""

    path: AccessPath
    name: str = "cxl-nvm"

    @classmethod
    def build(cls) -> "CXLNVMLogBackend":
        """A CMM-H-style expander on a local CXL port."""
        device = MemoryDevice(config.cxl_expander_nvm())
        return cls(path=AccessPath(device=device,
                                   links=(Link(config.cxl_port()),)))

    def force_time_ns(self, batch_bytes: int) -> float:
        """A persistent store plus a flush fence."""
        return self.path.write_time(batch_bytes)


@dataclass
class RDMAReplicatedLogBackend:
    """Durability by replicating the batch to remote DRAM."""

    fabric: RDMAFabric
    replicas: int = 2
    name: str = "rdma-replicated"

    @classmethod
    def build(cls, replicas: int = 2) -> "RDMAReplicatedLogBackend":
        fabric = RDMAFabric()
        fabric.add_host("primary")
        for index in range(replicas):
            fabric.add_host(f"replica{index}")
        return cls(fabric=fabric, replicas=replicas)

    def force_time_ns(self, batch_bytes: int) -> float:
        """Writes proceed in parallel; latency is the slowest replica
        (identical models here, so any one of them)."""
        times = [
            self.fabric.one_sided_write_time(
                "primary", f"replica{index}", batch_bytes
            )
            for index in range(self.replicas)
        ]
        return max(times)


@dataclass
class BatteryDRAMLogBackend:
    """Battery-backed local DRAM: the optimistic bound."""

    path: AccessPath
    name: str = "battery-dram"

    @classmethod
    def build(cls) -> "BatteryDRAMLogBackend":
        return cls(path=AccessPath(
            device=MemoryDevice(config.local_ddr5())))

    def force_time_ns(self, batch_bytes: int) -> float:
        """A plain store suffices."""
        return self.path.write_time(batch_bytes)


@dataclass
class CommitRecord:
    """One appended (not yet durable) log record."""

    arrival_ns: float
    size_bytes: int


class WriteAheadLog:
    """Group commit over a pluggable durability backend.

    Records join the open batch; the batch forces when it reaches
    ``group_size`` records (or on an explicit :meth:`flush`). Every
    record in a batch commits when the force completes; per-record
    commit latency is accumulated in :attr:`commit_latency`.
    """

    def __init__(self, backend: LogBackend, group_size: int = 8,
                 ctx: SimContext | None = None) -> None:
        if group_size <= 0:
            raise ConfigError("group_size must be positive")
        self.backend = backend
        self.group_size = group_size
        self.commit_latency = StreamingStats()
        self.forces = 0
        self.records = 0
        self.bytes_forced = 0
        self._batch: list[CommitRecord] = []
        self._device_free_ns = 0.0
        self.ctx = ctx
        if ctx is not None:
            ctx.register(f"wal.{backend.name}", self)

    def append(self, record_bytes: int, now_ns: float) -> float | None:
        """Append a record at *now_ns*.

        Returns the commit (durable) time if this append filled the
        batch and triggered a force, else None (the record commits
        with a later force).
        """
        if record_bytes <= 0:
            raise ConfigError("record size must be positive")
        self.records += 1
        self._batch.append(CommitRecord(now_ns, record_bytes))
        if len(self._batch) >= self.group_size:
            return self.flush(now_ns)
        return None

    def flush(self, now_ns: float) -> float | None:
        """Force the open batch; returns its completion time."""
        if not self._batch:
            return None
        batch_bytes = sum(r.size_bytes for r in self._batch)
        start = max(now_ns, self._device_free_ns)
        done = start + self.backend.force_time_ns(batch_bytes)
        self._device_free_ns = done
        self.forces += 1
        self.bytes_forced += batch_bytes
        for record in self._batch:
            self.commit_latency.add(done - record.arrival_ns)
        if self.ctx is not None and self.ctx.trace.enabled:
            self.ctx.trace.emit_span(
                "wal.force", "wal", start, done,
                {"backend": self.backend.name, "bytes": batch_bytes,
                 "records": len(self._batch)},
            )
        self._batch.clear()
        return done

    def snapshot(self) -> dict:
        """Log accounting (metrics snapshot protocol)."""
        latency = self.commit_latency
        snap: dict = {
            "forces": self.forces,
            "records": self.records,
            "bytes_forced": self.bytes_forced,
            "pending": self.pending,
        }
        if latency.count:
            snap["commit_latency_mean_ns"] = latency.mean
            snap["commit_latency_max_ns"] = latency.max
        return snap

    @property
    def pending(self) -> int:
        """Records appended but not yet durable."""
        return len(self._batch)

    def throughput_bound_tps(self, record_bytes: int) -> float:
        """Upper bound on committed records/s at full batches."""
        force = self.backend.force_time_ns(
            record_bytes * self.group_size
        )
        return self.group_size / force * 1e9

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.backend.name},"
            f" group={self.group_size}, forces={self.forces})"
        )
