"""Engine autoscaling over pooled memory (Sec 3.2 research questions).

"Should the granularity be the entire engine, or can elasticity be
pushed down to threads running queries?" and "How would an engine
operate under a dynamically changing multiprogramming level?" —
this module lets both be measured.

An :class:`Autoscaler` serves a query arrival stream with a dynamic
set of engine workers. Spawning is either **warm** (the buffer pool
lives in pooled CXL memory: a new worker is at full speed after a
~200 us attach) or **cold** (a fresh local buffer pool: the worker
serves its first queries slowly while it faults its working set in).
A fixed-fleet baseline shows what the elasticity is worth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..metrics.stats import percentile
from ..sim.context import SimContext
from ..units import SECOND, ms, us


@dataclass(frozen=True)
class QueryJob:
    """One query: arrival time and its warm service time."""

    arrival_ns: float
    service_ns: float


@dataclass
class _Worker:
    worker_id: int
    available_at_ns: float
    warm: bool
    served: int = 0
    busy_ns: float = 0.0
    retired_at_ns: float | None = None
    spawned_at_ns: float = 0.0


@dataclass
class AutoscaleReport:
    """Outcome of serving a job stream."""

    name: str
    jobs: int = 0
    waits_ns: list[float] = field(default_factory=list)
    spawns: int = 0
    retires: int = 0
    engine_time_ns: float = 0.0  # provisioned engine-time (cost)
    peak_workers: int = 0

    @property
    def mean_wait_ns(self) -> float:
        """Mean queueing delay."""
        if not self.waits_ns:
            return 0.0
        return sum(self.waits_ns) / len(self.waits_ns)

    @property
    def p95_wait_ns(self) -> float:
        """95th-percentile queueing delay."""
        if not self.waits_ns:
            return 0.0
        return percentile(self.waits_ns, 0.95)

    @property
    def engine_seconds(self) -> float:
        """Provisioned engine-time in seconds (the bill)."""
        return self.engine_time_ns / SECOND


class Autoscaler:
    """A dynamic fleet of engine workers over a shared job queue.

    ``mode``:
      * ``"warm"`` — spawned workers attach to the pooled buffer and
        run at full speed after ``warm_spawn_ns``;
      * ``"cold"`` — spawned workers are ready after
        ``cold_spawn_ns`` but their first ``cold_ramp_jobs`` queries
        run ``cold_penalty``x slower (faulting the working set);
      * ``"fixed"`` — ``max_workers`` workers for the whole run, no
        scaling.
    """

    def __init__(self, mode: str = "warm", min_workers: int = 1,
                 max_workers: int = 16,
                 scale_up_backlog: float = 4.0,
                 idle_retire_ns: float = ms(50.0),
                 warm_spawn_ns: float = us(200.0),
                 cold_spawn_ns: float = us(200.0),
                 cold_ramp_jobs: int = 50,
                 cold_penalty: float = 4.0,
                 name: str | None = None,
                 ctx: SimContext | None = None) -> None:
        if mode not in ("warm", "cold", "fixed"):
            raise ConfigError(f"unknown mode {mode!r}")
        if not 1 <= min_workers <= max_workers:
            raise ConfigError("need 1 <= min_workers <= max_workers")
        self.mode = mode
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.scale_up_backlog = scale_up_backlog
        self.idle_retire_ns = idle_retire_ns
        self.warm_spawn_ns = warm_spawn_ns
        self.cold_spawn_ns = cold_spawn_ns
        self.cold_ramp_jobs = cold_ramp_jobs
        self.cold_penalty = cold_penalty
        self.name = name or f"autoscale-{mode}"
        self._ids = itertools.count()
        self.ctx = ctx
        self._last_report: AutoscaleReport | None = None
        if ctx is not None:
            ctx.register(f"autoscale.{self.name}", self)

    # -- internals -------------------------------------------------------

    def _spawn(self, now_ns: float) -> _Worker:
        if self.mode == "cold":
            ready = now_ns + self.cold_spawn_ns
            warm = False
        else:
            ready = now_ns + self.warm_spawn_ns
            warm = True
        return _Worker(worker_id=next(self._ids),
                       available_at_ns=ready, warm=warm,
                       spawned_at_ns=now_ns)

    def _service_time(self, worker: _Worker, job: QueryJob) -> float:
        if worker.warm or worker.served >= self.cold_ramp_jobs:
            return job.service_ns
        # Linear ramp from cold_penalty down to 1x.
        progress = worker.served / self.cold_ramp_jobs
        factor = self.cold_penalty - (self.cold_penalty - 1.0) * progress
        return job.service_ns * factor

    # -- the run ------------------------------------------------------------

    def run(self, jobs: list[QueryJob]) -> AutoscaleReport:
        """Serve the stream; returns wait/cost accounting."""
        if not jobs:
            raise ConfigError("no jobs to serve")
        jobs = sorted(jobs, key=lambda j: j.arrival_ns)
        report = AutoscaleReport(name=self.name)
        start_count = self.max_workers if self.mode == "fixed" \
            else self.min_workers
        workers = [
            _Worker(worker_id=next(self._ids), available_at_ns=0.0,
                    warm=True)
            for _ in range(start_count)
        ]
        report.peak_workers = len(workers)

        for job in jobs:
            now = job.arrival_ns
            live = [w for w in workers if w.retired_at_ns is None]
            # Retire idle workers (elastic modes only).
            if self.mode != "fixed" and len(live) > self.min_workers:
                for worker in live:
                    idle = now - worker.available_at_ns
                    if idle > self.idle_retire_ns and \
                            len(live) > self.min_workers:
                        worker.retired_at_ns = max(
                            worker.available_at_ns, now
                        )
                        report.retires += 1
                        live = [w for w in workers
                                if w.retired_at_ns is None]
            # Scale up if the backlog per worker is too deep.
            if self.mode != "fixed" and len(live) < self.max_workers:
                backlog = sum(
                    1 for w in live if w.available_at_ns > now
                )
                if backlog >= len(live) and \
                        self._mean_queue_depth(live, now) \
                        >= self.scale_up_backlog:
                    worker = self._spawn(now)
                    workers.append(worker)
                    live.append(worker)
                    report.spawns += 1
                    report.peak_workers = max(report.peak_workers,
                                              len(live))
            # Dispatch to the earliest-available live worker.
            worker = min(live, key=lambda w: w.available_at_ns)
            begin = max(now, worker.available_at_ns)
            service = self._service_time(worker, job)
            worker.available_at_ns = begin + service
            worker.served += 1
            worker.busy_ns += service
            report.jobs += 1
            report.waits_ns.append(begin - now)

        end = max(w.available_at_ns for w in workers)
        for worker in workers:
            retired = worker.retired_at_ns
            horizon = retired if retired is not None else end
            report.engine_time_ns += max(
                0.0, horizon - worker.spawned_at_ns
            )
        self._last_report = report
        ctx = self.ctx
        if ctx is not None:
            if ctx.trace.enabled:
                ctx.trace.emit_span(
                    f"autoscale:{self.name}", "elastic", 0.0, end,
                    {"jobs": report.jobs, "spawns": report.spawns,
                     "peak_workers": report.peak_workers},
                )
            ctx.metrics.incr(f"autoscale.{self.name}.runs")
        return report

    def snapshot(self) -> dict:
        """Fleet accounting (metrics snapshot protocol)."""
        snap: dict = {"mode": self.mode,
                      "max_workers": self.max_workers}
        report = self._last_report
        if report is not None:
            snap["jobs"] = report.jobs
            snap["spawns"] = report.spawns
            snap["retires"] = report.retires
            snap["peak_workers"] = report.peak_workers
            snap["mean_wait_ns"] = report.mean_wait_ns
            snap["p95_wait_ns"] = report.p95_wait_ns
            snap["engine_time_ns"] = report.engine_time_ns
        return snap

    @staticmethod
    def _mean_queue_depth(live: list[_Worker], now: float) -> float:
        if not live:
            return float("inf")
        waiting = sum(
            max(0.0, w.available_at_ns - now) for w in live
        )
        service_scale = ms(1.0)
        return waiting / (len(live) * service_scale)


class ExpanderScaler:
    """Capacity autoscaling pushed down to the memory pool itself.

    :class:`Autoscaler` scales *engines* over a job queue; the serving
    subsystem needs the same elasticity one level lower — whole CXL
    expanders attached to or retired from a tenant page pool as churn
    moves demand. The policy mirrors the engine autoscaler's knobs:
    grow when admission backlog builds (queued pages waiting for
    capacity), shrink when the pool would still be comfortably
    under-occupied with one less expander, and rate-limit both with a
    cooldown so a single burst does not thrash the fabric.
    """

    def __init__(self, pages_per_expander: int,
                 min_expanders: int = 1, max_expanders: int = 4,
                 scale_up_queued_pages: int = 1,
                 scale_down_occupancy: float = 0.5,
                 cooldown_ns: float = ms(1.0)) -> None:
        if pages_per_expander <= 0:
            raise ConfigError("pages_per_expander must be positive")
        if not 1 <= min_expanders <= max_expanders:
            raise ConfigError("need 1 <= min_expanders <= max_expanders")
        if scale_up_queued_pages <= 0:
            raise ConfigError("scale_up_queued_pages must be positive")
        if not 0.0 < scale_down_occupancy < 1.0:
            raise ConfigError("scale_down_occupancy must be in (0, 1)")
        self.pages_per_expander = pages_per_expander
        self.min_expanders = min_expanders
        self.max_expanders = max_expanders
        self.scale_up_queued_pages = scale_up_queued_pages
        self.scale_down_occupancy = scale_down_occupancy
        self.cooldown_ns = cooldown_ns
        self.expanders = min_expanders
        self.grows = 0
        self.shrinks = 0
        self._last_change_ns = -float("inf")

    @property
    def capacity_pages(self) -> int:
        """Pool capacity at the current expander count."""
        return self.expanders * self.pages_per_expander

    def decide(self, now_ns: float, queued_pages: int,
               leased_pages: int) -> int:
        """Return the expander count to run with from *now* on.

        ``queued_pages`` is the admission backlog (pages wanted by
        tenants waiting to be admitted); ``leased_pages`` the pages
        currently held. At most one expander changes per call, and only
        after ``cooldown_ns`` since the previous change.
        """
        if now_ns - self._last_change_ns < self.cooldown_ns:
            return self.expanders
        if (queued_pages >= self.scale_up_queued_pages
                and self.expanders < self.max_expanders):
            self.expanders += 1
            self.grows += 1
            self._last_change_ns = now_ns
        elif (queued_pages == 0
              and self.expanders > self.min_expanders
              and leased_pages <= self.scale_down_occupancy
              * (self.expanders - 1) * self.pages_per_expander):
            self.expanders -= 1
            self.shrinks += 1
            self._last_change_ns = now_ns
        return self.expanders

    def snapshot(self) -> dict:
        """Scaler accounting (metrics snapshot protocol)."""
        return {
            "expanders": self.expanders,
            "capacity_pages": self.capacity_pages,
            "grows": self.grows,
            "shrinks": self.shrinks,
        }


def bursty_jobs(duration_ms: float = 200.0, base_rate_per_ms: float = 2.0,
                burst_rate_per_ms: float = 20.0,
                burst_start_frac: float = 0.4,
                burst_end_frac: float = 0.6,
                service_ns: float = ms(0.4), seed: int = 9
                ) -> list[QueryJob]:
    """A diurnal-burst arrival stream: steady load with a hot window."""
    import random
    rng = random.Random(seed)
    jobs: list[QueryJob] = []
    t = 0.0
    horizon = ms(duration_ms)
    burst_lo = horizon * burst_start_frac
    burst_hi = horizon * burst_end_frac
    while t < horizon:
        rate = burst_rate_per_ms if burst_lo <= t < burst_hi \
            else base_rate_per_ms
        t += rng.expovariate(rate) * ms(1.0)
        jitter = rng.uniform(0.7, 1.4)
        jobs.append(QueryJob(arrival_ns=t,
                             service_ns=service_ns * jitter))
    return jobs
