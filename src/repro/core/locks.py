"""Lock table with shared/exclusive record locks.

The lock table is the coordination structure the paper highlights for
CXL: in the rack-scale architecture "the database system lock table
can be shared" across hosts via coherent memory (Sec 4), instead of
being partitioned and reached by RPC. Engines charge an access-path
cost per lock operation, so the same table models a host-local table
(DRAM latency), a CXL-shared table (CXL latency), or a remote one
(RDMA RPC latency).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import TransactionError


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) locks."""

    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, wanted: LockMode) -> bool:
    return held is LockMode.SHARED and wanted is LockMode.SHARED


@dataclass
class LockStats:
    """Lock-table traffic counters."""

    acquires: int = 0
    releases: int = 0
    conflicts: int = 0
    upgrades: int = 0


@dataclass
class _LockEntry:
    mode: LockMode
    holders: set[int] = field(default_factory=set)


class LockTable:
    """A record-granularity lock table (no internal waiting).

    ``try_acquire`` returns whether the lock was granted; the caller
    decides the conflict policy (wait, abort, retry). This keeps the
    table usable from both the batch-concurrency executor and the
    discrete-event engines.
    """

    def __init__(self, name: str = "locktable") -> None:
        self.name = name
        self.stats = LockStats()
        self._locks: dict[object, _LockEntry] = {}
        self._held_by_txn: dict[int, set[object]] = {}

    def try_acquire(self, txn_id: int, key: object,
                    mode: LockMode) -> bool:
        """Attempt to lock *key* in *mode* for a transaction.

        Re-acquiring an already held lock succeeds; a shared holder
        asking for exclusive succeeds only if it is the sole holder
        (lock upgrade).
        """
        self.stats.acquires += 1
        entry = self._locks.get(key)
        if entry is None:
            self._locks[key] = _LockEntry(mode=mode, holders={txn_id})
            self._held_by_txn.setdefault(txn_id, set()).add(key)
            return True
        if txn_id in entry.holders:
            if mode is LockMode.EXCLUSIVE and \
                    entry.mode is LockMode.SHARED:
                if len(entry.holders) == 1:
                    entry.mode = LockMode.EXCLUSIVE
                    self.stats.upgrades += 1
                    return True
                self.stats.conflicts += 1
                return False
            return True
        if _compatible(entry.mode, mode):
            entry.holders.add(txn_id)
            self._held_by_txn.setdefault(txn_id, set()).add(key)
            return True
        self.stats.conflicts += 1
        return False

    def release_all(self, txn_id: int) -> int:
        """Release every lock a transaction holds; returns the count."""
        keys = self._held_by_txn.pop(txn_id, set())
        for key in keys:
            entry = self._locks.get(key)
            if entry is None:
                continue
            entry.holders.discard(txn_id)
            if not entry.holders:
                del self._locks[key]
        self.stats.releases += len(keys)
        return len(keys)

    def holders_of(self, key: object) -> set[int]:
        """Transactions currently holding a lock on *key*."""
        entry = self._locks.get(key)
        return set(entry.holders) if entry else set()

    def mode_of(self, key: object) -> LockMode | None:
        """Current lock mode of *key* (None if unlocked)."""
        entry = self._locks.get(key)
        return entry.mode if entry else None

    def held_count(self, txn_id: int) -> int:
        """Number of locks a transaction holds."""
        return len(self._held_by_txn.get(txn_id, ()))

    @property
    def active_locks(self) -> int:
        """Number of locked keys."""
        return len(self._locks)

    def check_consistency(self) -> None:
        """Raise on internal inconsistency (test helper)."""
        for key, entry in self._locks.items():
            if not entry.holders:
                raise TransactionError(f"empty lock entry for {key}")
            if entry.mode is LockMode.EXCLUSIVE and len(entry.holders) > 1:
                raise TransactionError(
                    f"exclusive lock on {key} with holders {entry.holders}"
                )
            for txn in entry.holders:
                if key not in self._held_by_txn.get(txn, set()):
                    raise TransactionError(
                        f"holder index missing {key} for txn {txn}"
                    )
