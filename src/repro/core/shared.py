"""The rack-scale shared-memory engine (Sec 3.3, Fig 2c).

Every compute host in the rack maps the same GFAM (Global
Fabric-Attached Memory) regions: one shared buffer of data pages, one
shared lock table, one shared log. Threads on any host run any
transaction — there are no "remote" partitions, no RPC, no 2PC.
Coordination happens through coherent loads/stores on the fabric:

* a lock acquire/release is a CAS on a lock word in GFAM;
* a data access is a coherent load/store, served from the host's
  cache when the line is resident (cxl.cache) or from GFAM otherwise;
* commit is a log record appended to GFAM.

Coherence has a cost the paper insists we account (Sec 3.3's research
question on *coherency traffic*): writes to shared lines invalidate
other hosts' cached copies, which the engine models with a per-write
invalidation probability derived from sharing, charged at fabric
latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..sim.topology import RackTopology
from ..workloads.tpcc import Transaction
from .txn import OLTPReport, TwoPhaseLockingExecutor


@dataclass(frozen=True)
class SharedEngineConfig:
    """Parameters of the rack-scale engine."""

    num_hosts: int = 4
    threads_per_host: int = 8
    llc_hit_ns: float = 20.0
    cache_hit_rate: float = 0.70      # coherent local caching of hot lines
    invalidation_rate: float = 0.30   # P(a write invalidates a remote copy)
    log_batch: int = 8                # group commit factor on the GFAM log

    def __post_init__(self) -> None:
        if self.num_hosts <= 0 or self.threads_per_host <= 0:
            raise ConfigError("hosts and threads must be positive")
        if not 0.0 <= self.cache_hit_rate <= 1.0:
            raise ConfigError("cache_hit_rate must be in [0,1]")
        if not 0.0 <= self.invalidation_rate <= 1.0:
            raise ConfigError("invalidation_rate must be in [0,1]")


class SharedRackEngine:
    """A scale-up OLTP engine over rack-wide shared CXL memory."""

    def __init__(self, cfg: SharedEngineConfig | None = None,
                 rack: RackTopology | None = None) -> None:
        self.cfg = cfg or SharedEngineConfig()
        self.rack = rack or RackTopology.disaggregated(
            num_hosts=self.cfg.num_hosts
        )
        host = self.rack.hosts[0]
        gfam = self.rack.pools[0]
        path = self.rack.path(host.name, gfam.name)
        #: One coherent fabric load (line granularity).
        self.fabric_read_ns = path.read_latency_ns()
        self.fabric_write_ns = path.write_latency_ns()
        self.executor = TwoPhaseLockingExecutor(
            cost_model=self._txn_cost,
            threads=self.cfg.num_hosts * self.cfg.threads_per_host,
            name=f"shared-rack-{self.cfg.num_hosts}h",
        )
        self.fabric_bytes = 0

    # -- cost model --------------------------------------------------------

    def lock_acquire_ns(self) -> float:
        """One lock acquire: a CAS, i.e. one read-for-ownership round
        on the fabric (the invalidation of other copies rides along)."""
        return self.fabric_read_ns

    def lock_release_ns(self) -> float:
        """Release: a store to a line the host already owns in M state
        — local; the next acquirer pays the fabric fetch instead."""
        return self.cfg.llc_hit_ns

    def data_read_ns(self) -> float:
        """Expected record read cost with coherent local caching
        (cxl.cache keeps hot lines resident)."""
        cfg = self.cfg
        return (cfg.cache_hit_rate * cfg.llc_hit_ns
                + (1.0 - cfg.cache_hit_rate) * self.fabric_read_ns)

    def data_write_ns(self) -> float:
        """Record write: RFO fetch plus the local store. With
        probability ``invalidation_rate`` the line was cached remotely,
        stretching the RFO by an invalidation round."""
        rfo = self.fabric_read_ns * (1.0 + 0.5 * self.cfg.invalidation_rate)
        return rfo + self.cfg.llc_hit_ns

    def commit_ns(self, txn: Transaction) -> float:
        """Group-committed log append plus lock releases."""
        log = self.fabric_write_ns / self.cfg.log_batch
        releases = len(txn.ops) * self.lock_release_ns()
        return log + releases

    def _txn_cost(self, txn: Transaction) -> tuple[float, int]:
        # The per-op costs are constants of the configuration; compute
        # them once per transaction instead of once per op. The cost
        # accumulator still sees one addition per term in the original
        # order, so reported times are unchanged to the last bit.
        acquire = self.lock_acquire_ns()
        write_cost = self.data_write_ns()
        read_cost = self.data_read_ns()
        read_bytes = int(64 * (1.0 - self.cfg.cache_hit_rate))
        cost = 0.0
        fabric_bytes = 0
        for op in txn.ops:
            cost += acquire
            if op.write:
                cost += write_cost
                fabric_bytes += 64
            else:
                cost += read_cost
                fabric_bytes += read_bytes
        self.fabric_bytes += fabric_bytes
        cost += self.commit_ns(txn)
        # Every host reaches all data coherently: nothing is remote.
        return cost, 0

    # -- execution -----------------------------------------------------------

    def run(self, transactions: list[Transaction]) -> OLTPReport:
        """Execute a batch of transactions; returns the report."""
        return self.executor.execute(transactions)

    def measure_lock_table_coherence(
        self, transactions: list[Transaction],
        table_lines: int = 1 << 16,
        assign_by_warehouse: bool = False,
    ):
        """Drive the shared lock table through a MESI directory and
        return the measured coherence statistics.

        Answers Sec 3.3's question for the data structure the engine
        actually shares: each lock acquire is a CAS (a directory
        write) on the lock word's cache line, issued by the host the
        transaction runs on. ``assign_by_warehouse`` routes
        transactions to hosts by home warehouse (affinity scheduling),
        which keeps hot lock lines in one host's cache and should
        collapse the invalidation traffic — a placement insight the
        measurement makes visible.
        """
        import zlib

        from ..sim.coherence import CoherenceDirectory

        directory = CoherenceDirectory()
        agents = [directory.register_agent()
                  for _ in range(self.cfg.num_hosts)]
        for index, txn in enumerate(transactions):
            if assign_by_warehouse:
                host = txn.home_warehouse % self.cfg.num_hosts
            else:
                host = index % self.cfg.num_hosts
            agent = agents[host]
            for op in txn.ops:
                # crc32, not hash(): str hashing is salted per
                # process and would make runs irreproducible.
                key = f"{op.table}:{op.warehouse}:{op.key}"
                line = zlib.crc32(key.encode()) % table_lines
                directory.write(agent, line)  # the CAS
        directory.check_invariants()
        return directory.stats

    def __repr__(self) -> str:
        return (
            f"SharedRackEngine(hosts={self.cfg.num_hosts},"
            f" fabric_read={self.fabric_read_ns:.0f}ns)"
        )
