"""Buffer frames: the in-memory residence record of a page."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BufferPoolError
from ..storage.page import Page


@dataclass(slots=True)
class Frame:
    """One page resident in one tier of the buffer pool.

    ``slots=True``: one Frame exists per resident page and is touched
    on every access, so the slotted layout saves a per-frame dict and
    keeps attribute loads on the hot path cheap.
    """

    page: Page
    tier_index: int
    pin_count: int = 0
    dirty: bool = False
    last_access_ns: float = 0.0
    accesses: int = field(default=0)

    @property
    def page_id(self) -> int:
        """Id of the resident page."""
        return self.page.page_id

    @property
    def pinned(self) -> bool:
        """Whether the frame is currently pinned."""
        return self.pin_count > 0

    def pin(self) -> None:
        """Pin the frame (prevents eviction and migration)."""
        self.pin_count += 1

    def unpin(self) -> None:
        """Release one pin."""
        if self.pin_count <= 0:
            raise BufferPoolError(
                f"unpin of unpinned frame for page {self.page_id}"
            )
        self.pin_count -= 1

    def touch(self, now_ns: float, write: bool = False) -> None:
        """Record an access to the frame."""
        self.accesses += 1
        self.last_access_ns = now_ns
        if write:
            self.dirty = True

    def __repr__(self) -> str:
        flags = f"{'D' if self.dirty else '-'}{'P' if self.pinned else '-'}"
        return f"Frame(page={self.page_id}, tier={self.tier_index}, {flags})"
