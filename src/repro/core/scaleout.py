"""The scale-out baseline: sharding, RDMA, and two-phase commit.

The distributed architecture the paper says CXL makes unnecessary
(Sec 3.3): data hash-partitioned across nodes by warehouse, local
execution at DRAM speed, but any transaction touching another node's
partition pays RDMA round trips per remote operation and a full 2PC
(prepare + commit rounds, with log forces) across all participants.

This engine is intentionally a *good* baseline — local operations are
cheaper than the shared-memory engine's fabric accesses — so the
experiments expose the genuine crossover: scale-out wins when nothing
is distributed, and degrades as the distributed fraction grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..sim.rdma import RDMAFabric
from ..units import us
from ..workloads.tpcc import RecordOp, Transaction
from .txn import OLTPReport, TwoPhaseLockingExecutor


@dataclass(frozen=True)
class ScaleOutConfig:
    """Parameters of the sharded engine."""

    num_nodes: int = 4
    threads_per_node: int = 8
    local_read_ns: float = 80.0     # record in local DRAM
    local_write_ns: float = 90.0
    local_lock_ns: float = 160.0    # CAS in local DRAM
    log_force_ns: float = us(5.0)   # NVMe group-commit share
    log_batch: int = 8
    rpc_payload_bytes: int = 128

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.threads_per_node <= 0:
            raise ConfigError("nodes and threads must be positive")


class ScaleOutEngine:
    """A sharded OLTP engine over an RDMA fabric with 2PC."""

    def __init__(self, cfg: ScaleOutConfig | None = None,
                 fabric: RDMAFabric | None = None) -> None:
        self.cfg = cfg or ScaleOutConfig()
        self.fabric = fabric or RDMAFabric()
        for node in range(self.cfg.num_nodes):
            self.fabric.add_host(self._node_name(node))
        self.executor = TwoPhaseLockingExecutor(
            cost_model=self._txn_cost,
            threads=self.cfg.num_nodes * self.cfg.threads_per_node,
            name=f"scale-out-{self.cfg.num_nodes}n",
        )

    @staticmethod
    def _node_name(node: int) -> str:
        return f"node{node}"

    # -- partitioning ---------------------------------------------------------

    def node_of(self, op: RecordOp) -> int:
        """Home node of a record. Shared tables (warehouse == -1) are
        replicated and read locally."""
        if op.warehouse < 0:
            return -1
        return op.warehouse % self.cfg.num_nodes

    def participants(self, txn: Transaction) -> set[int]:
        """Nodes a transaction touches (including its home node)."""
        home = txn.home_warehouse % self.cfg.num_nodes
        nodes = {home}
        for op in txn.ops:
            node = self.node_of(op)
            if node >= 0:
                nodes.add(node)
        return nodes

    # -- cost model --------------------------------------------------------------

    def _rpc_ns(self, src: int, dst: int) -> float:
        return self.fabric.rpc_time(
            self._node_name(src), self._node_name(dst),
            self.cfg.rpc_payload_bytes, self.cfg.rpc_payload_bytes,
        )

    def _local_op_ns(self, op: RecordOp) -> float:
        cfg = self.cfg
        data = cfg.local_write_ns if op.write else cfg.local_read_ns
        return cfg.local_lock_ns + data

    def _txn_cost(self, txn: Transaction) -> tuple[float, int]:
        cfg = self.cfg
        home = txn.home_warehouse % cfg.num_nodes
        cost = 0.0
        remote_ops = 0
        for op in txn.ops:
            node = self.node_of(op)
            if node < 0 or node == home:
                cost += self._local_op_ns(op)
            else:
                # Ship the operation: one RPC covers lock + data.
                cost += self._rpc_ns(home, node) + self._local_op_ns(op)
                remote_ops += 1
        participants = self.participants(txn)
        if len(participants) > 1:
            # 2PC: prepare round + commit round to every remote
            # participant, plus a log force at each participant.
            remotes = len(participants) - 1
            round_trip = max(
                self._rpc_ns(home, node)
                for node in participants if node != home
            )
            cost += 2 * round_trip
            cost += len(participants) * cfg.log_force_ns
            remote_ops += 2 * remotes
        else:
            cost += cfg.log_force_ns / cfg.log_batch
        return cost, remote_ops

    # -- execution -------------------------------------------------------------------

    def run(self, transactions: list[Transaction]) -> OLTPReport:
        """Execute a batch of transactions; returns the report."""
        return self.executor.execute(transactions)

    def __repr__(self) -> str:
        return f"ScaleOutEngine(nodes={self.cfg.num_nodes})"
