"""A B+tree that spans memory tiers (Sec 3.1 research question).

"Should data structures span conventional and CXL memory?" — this
module answers it executably. A :class:`TieredBTree` stores its nodes
as buffer-pool pages; a placement classifier decides which *levels*
live where. The canonical hybrid puts the small, hot inner levels in
DRAM and the large leaf level in CXL memory: lookups then pay DRAM
latency for every hop but the last, while capacity scales with the
expander.

The tree is bulk-loaded (bottom-up build), supports point lookups and
range scans, and charges every node touch to the engine's buffer pool
so placement policy effects are measured, not asserted.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..errors import QueryError
from ..storage.page import Page
from ..units import CACHE_LINE, PAGE_SIZE
from .buffer import TieredBufferPool


@dataclass
class _Node:
    """One B+tree node, stored in a page payload."""

    keys: list
    # Inner: child page ids (len(keys)+1). Leaf: values + next pointer.
    children: list | None = None
    values: list | None = None
    next_leaf: int | None = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class TieredBTree:
    """A B+tree whose nodes are buffer-pool pages."""

    def __init__(self, pool: TieredBufferPool, first_page_id: int,
                 fanout: int = 64, leaf_capacity: int = 128) -> None:
        if fanout < 2 or leaf_capacity < 1:
            raise QueryError("fanout must be >= 2, leaf_capacity >= 1")
        self.pool = pool
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self._first_page_id = first_page_id
        self._next_page_id = first_page_id
        self._root_page: int | None = None
        self._height = 0
        self._levels: list[list[int]] = []  # page ids per level, root last
        self._size = 0

    # -- construction -----------------------------------------------------

    def _new_page(self, node: _Node) -> int:
        page_id = self._next_page_id
        self._next_page_id += 1
        page = Page(page_id=page_id, size_bytes=PAGE_SIZE, payload=node)
        # Registered without timing: build cost is charged separately.
        self.pool.register_page(page)
        return page_id

    @classmethod
    def bulk_build(cls, pool: TieredBufferPool, items: list[tuple],
                   first_page_id: int, fanout: int = 64,
                   leaf_capacity: int = 128) -> "TieredBTree":
        """Build bottom-up from (key, value) pairs sorted by key."""
        tree = cls(pool, first_page_id, fanout=fanout,
                   leaf_capacity=leaf_capacity)
        keys = [key for key, _v in items]
        if keys != sorted(keys):
            raise QueryError("bulk_build requires items sorted by key")
        if len(set(keys)) != len(keys):
            raise QueryError("bulk_build requires unique keys")
        tree._size = len(items)

        # Leaf level.
        leaf_ids: list[int] = []
        leaves: list[_Node] = []
        for start in range(0, max(len(items), 1), leaf_capacity):
            chunk = items[start:start + leaf_capacity]
            node = _Node(
                keys=[key for key, _v in chunk],
                values=[value for _k, value in chunk],
            )
            leaves.append(node)
            leaf_ids.append(tree._new_page(node))
        for node, next_id in zip(leaves, leaf_ids[1:]):
            node.next_leaf = next_id
        tree._levels = [leaf_ids]

        # Inner levels. Separators are the subtree minima of the
        # children, carried up level by level.
        level_ids = leaf_ids
        level_mins = [node.keys[0] for node in leaves if node.keys]
        while len(level_ids) > 1:
            parent_ids: list[int] = []
            parent_mins: list = []
            for start in range(0, len(level_ids), fanout):
                child_ids = level_ids[start:start + fanout]
                child_mins = level_mins[start:start + fanout]
                node = _Node(keys=child_mins[1:], children=child_ids)
                parent_ids.append(tree._new_page(node))
                parent_mins.append(child_mins[0])
            tree._levels.append(parent_ids)
            level_ids = parent_ids
            level_mins = parent_mins
        tree._root_page = level_ids[0]
        tree._height = len(tree._levels)
        return tree

    # -- shape -------------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels (1 = a single leaf)."""
        return self._height

    @property
    def size(self) -> int:
        """Number of stored key/value pairs."""
        return self._size

    @property
    def root_page_id(self) -> int:
        """Page id of the root node."""
        if self._root_page is None:
            raise QueryError("tree is empty; bulk_build it first")
        return self._root_page

    @property
    def leaf_page_ids(self) -> list[int]:
        """Page ids of the leaf level."""
        return list(self._levels[0]) if self._levels else []

    @property
    def inner_page_ids(self) -> list[int]:
        """Page ids of every non-leaf level."""
        return [pid for level in self._levels[1:] for pid in level]

    def page_classifier(self, inner_tier: int = 0,
                        leaf_tier: int = 1):
        """A classifier for StaticPolicy: inner levels to one tier,
        leaves to another — the Sec 3.1 hybrid layout."""
        inner = set(self.inner_page_ids)
        first, last = self._first_page_id, self._next_page_id

        def classify(page_id: int) -> int:
            if first <= page_id < last and page_id in inner:
                return inner_tier
            return leaf_tier
        return classify

    # -- operations ----------------------------------------------------------

    def _node(self, page_id: int) -> _Node:
        page = self.pool.get_page(page_id)
        node = page.payload
        if not isinstance(node, _Node):
            raise QueryError(f"page {page_id} is not a B+tree node")
        return node

    def lookup(self, key) -> object | None:
        """Point lookup; charges one pool access per level."""
        page_id = self.root_page_id
        for _level in range(self._height):
            self.pool.access(page_id, nbytes=CACHE_LINE)
            node = self._node(page_id)
            if node.is_leaf:
                index = bisect.bisect_left(node.keys, key)
                if index < len(node.keys) and node.keys[index] == key:
                    return node.values[index]
                return None
            index = bisect.bisect_right(node.keys, key)
            page_id = node.children[index]
        raise QueryError("malformed tree: no leaf reached")

    def lookup_cost_ns(self, key) -> float:
        """Like :meth:`lookup` but returns the charged time."""
        start = self.pool.clock.now
        self.lookup(key)
        return self.pool.clock.now - start

    def range_scan(self, low, high) -> list[tuple]:
        """All (key, value) with low <= key <= high; charges full-page
        scan accesses along the leaf chain."""
        if low > high:
            return []
        # Descend to the first candidate leaf.
        page_id = self.root_page_id
        node = self._node(page_id)
        while not node.is_leaf:
            self.pool.access(page_id, nbytes=CACHE_LINE)
            index = bisect.bisect_right(node.keys, low)
            page_id = node.children[index]
            node = self._node(page_id)
        out: list[tuple] = []
        while True:
            self.pool.access(page_id, nbytes=PAGE_SIZE, is_scan=True)
            node = self._node(page_id)
            start = bisect.bisect_left(node.keys, low)
            for key, value in zip(node.keys[start:],
                                  node.values[start:]):
                if key > high:
                    return out
                out.append((key, value))
            if node.next_leaf is None:
                return out
            page_id = node.next_leaf
