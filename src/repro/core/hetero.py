"""Composable heterogeneous racks (Sec 5).

CXL lets "other types of resources, such as FPGAs, GPUs, TPUs, and
DPUs, be similarly pooled and integrated into a rack-scale computer."
This module models the scheduling consequence:

* a :class:`ComposableRack` pools every accelerator behind the fabric
  — any task can run on the best-suited free device;
* a :class:`FixedServerRack` is the status quo — each server owns a
  fixed set of devices and a task can only use what its server has.

With a mixed DB + ML operator stream, pooling wins through better
device-task matching and load balancing; the experiment (E9) measures
makespan and device utilization for both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigError
from ..units import GBPS, transfer_time_ns


class DeviceClass(enum.Enum):
    """Broad accelerator classes."""

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"
    DPU = "dpu"


#: Processing rates in bytes/ns by (device class, operator kind).
#: Zero/absent means the device cannot run the operator.
DEVICE_RATES: dict[DeviceClass, dict[str, float]] = {
    DeviceClass.CPU: {"scan": 10.0 * GBPS, "join": 4.0 * GBPS,
                      "ml_infer": 0.5 * GBPS, "compress": 2.0 * GBPS},
    DeviceClass.GPU: {"ml_infer": 50.0 * GBPS, "join": 20.0 * GBPS,
                      "scan": 20.0 * GBPS},
    DeviceClass.FPGA: {"compress": 40.0 * GBPS, "scan": 30.0 * GBPS,
                       "ml_infer": 5.0 * GBPS},
    DeviceClass.DPU: {"compress": 20.0 * GBPS, "scan": 8.0 * GBPS},
}

#: Fixed start-up cost per dispatched task.
DISPATCH_LATENCY_NS = 3_000.0


@dataclass
class Accelerator:
    """One device instance with a queue (earliest-free time)."""

    name: str
    klass: DeviceClass
    free_at_ns: float = 0.0
    busy_ns: float = 0.0
    tasks_run: int = 0

    def rate_for(self, kind: str) -> float:
        """Processing rate for an operator kind (0 if unsupported)."""
        return DEVICE_RATES[self.klass].get(kind, 0.0)

    def utilization(self, horizon_ns: float) -> float:
        """Busy fraction over a horizon."""
        if horizon_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / horizon_ns)


@dataclass(frozen=True)
class OperatorTask:
    """One offloadable operator instance."""

    kind: str
    input_bytes: int
    arrival_ns: float = 0.0


@dataclass
class ScheduleReport:
    """Outcome of scheduling a task stream."""

    name: str
    tasks: int = 0
    makespan_ns: float = 0.0
    completion_sum_ns: float = 0.0
    unschedulable: int = 0
    per_class_busy: dict[str, float] = field(default_factory=dict)

    @property
    def mean_completion_ns(self) -> float:
        """Mean task completion time (queueing included)."""
        if self.tasks == 0:
            return 0.0
        return self.completion_sum_ns / self.tasks


def _run_task(device: Accelerator, task: OperatorTask,
              fabric_bandwidth: float) -> float:
    """Dispatch a task; returns its completion time."""
    rate = device.rate_for(task.kind)
    transfer = transfer_time_ns(task.input_bytes, fabric_bandwidth)
    service = (DISPATCH_LATENCY_NS + transfer
               + task.input_bytes / rate)
    start = max(task.arrival_ns, device.free_at_ns)
    device.free_at_ns = start + service
    device.busy_ns += service
    device.tasks_run += 1
    return device.free_at_ns


class ComposableRack:
    """All accelerators pooled behind the CXL fabric."""

    def __init__(self, gpus: int = 4, fpgas: int = 4, dpus: int = 4,
                 cpus: int = 8, fabric_bandwidth: float = 50.0 * GBPS
                 ) -> None:
        self.fabric_bandwidth = fabric_bandwidth
        self.devices: list[Accelerator] = []
        for klass, count in ((DeviceClass.GPU, gpus),
                             (DeviceClass.FPGA, fpgas),
                             (DeviceClass.DPU, dpus),
                             (DeviceClass.CPU, cpus)):
            for i in range(count):
                self.devices.append(
                    Accelerator(name=f"{klass.value}{i}", klass=klass)
                )
        if not self.devices:
            raise ConfigError("rack has no devices")

    def schedule(self, tasks: list[OperatorTask],
                 name: str = "composable") -> ScheduleReport:
        """Greedy earliest-completion-time scheduling over the pool."""
        report = ScheduleReport(name=name)
        for task in tasks:
            candidates = [
                d for d in self.devices if d.rate_for(task.kind) > 0
            ]
            if not candidates:
                report.unschedulable += 1
                continue
            device = min(
                candidates,
                key=lambda d: max(task.arrival_ns, d.free_at_ns)
                + task.input_bytes / d.rate_for(task.kind),
            )
            done = _run_task(device, task, self.fabric_bandwidth)
            report.tasks += 1
            report.completion_sum_ns += done - task.arrival_ns
            report.makespan_ns = max(report.makespan_ns, done)
        self._fill_busy(report)
        return report

    def _fill_busy(self, report: ScheduleReport) -> None:
        for device in self.devices:
            key = device.klass.value
            report.per_class_busy[key] = \
                report.per_class_busy.get(key, 0.0) + device.busy_ns


@dataclass
class _Server:
    name: str
    devices: list[Accelerator]


class FixedServerRack:
    """The status quo: devices bolted to individual servers.

    Tasks are routed round-robin across servers (the placement a load
    balancer with no device knowledge produces) and may only use their
    server's devices.
    """

    def __init__(self, num_servers: int = 8,
                 gpus_every: int = 2, fpgas_every: int = 2,
                 fabric_bandwidth: float = 50.0 * GBPS) -> None:
        if num_servers <= 0:
            raise ConfigError("need at least one server")
        self.fabric_bandwidth = fabric_bandwidth
        self.servers: list[_Server] = []
        for i in range(num_servers):
            devices = [Accelerator(name=f"s{i}-cpu", klass=DeviceClass.CPU)]
            if gpus_every and i % gpus_every == 0:
                devices.append(
                    Accelerator(name=f"s{i}-gpu", klass=DeviceClass.GPU)
                )
            if fpgas_every and i % fpgas_every == 1:
                devices.append(
                    Accelerator(name=f"s{i}-fpga", klass=DeviceClass.FPGA)
                )
            self.servers.append(_Server(name=f"s{i}", devices=devices))

    def schedule(self, tasks: list[OperatorTask],
                 name: str = "fixed") -> ScheduleReport:
        """Round-robin server placement, best local device."""
        report = ScheduleReport(name=name)
        for index, task in enumerate(tasks):
            server = self.servers[index % len(self.servers)]
            candidates = [
                d for d in server.devices if d.rate_for(task.kind) > 0
            ]
            if not candidates:
                report.unschedulable += 1
                continue
            device = min(
                candidates,
                key=lambda d: max(task.arrival_ns, d.free_at_ns)
                + task.input_bytes / d.rate_for(task.kind),
            )
            done = _run_task(device, task, self.fabric_bandwidth)
            report.tasks += 1
            report.completion_sum_ns += done - task.arrival_ns
            report.makespan_ns = max(report.makespan_ns, done)
        for server in self.servers:
            for device in server.devices:
                key = device.klass.value
                report.per_class_busy[key] = \
                    report.per_class_busy.get(key, 0.0) + device.busy_ns
        return report


def mixed_workload(num_tasks: int = 400, mb_per_task: int = 64,
                   ml_fraction: float = 0.3, compress_fraction: float = 0.2,
                   arrival_gap_ns: float = 50_000.0,
                   seed: int = 11) -> list[OperatorTask]:
    """A mixed DB + ML operator stream (Sec 5's motivating workload)."""
    import random
    rng = random.Random(seed)
    tasks = []
    for i in range(num_tasks):
        roll = rng.random()
        if roll < ml_fraction:
            kind = "ml_infer"
        elif roll < ml_fraction + compress_fraction:
            kind = "compress"
        else:
            kind = rng.choice(["scan", "join"])
        tasks.append(OperatorTask(
            kind=kind,
            input_bytes=rng.randint(mb_per_task // 2, mb_per_task * 2)
            * 1024 * 1024,
            arrival_ns=i * arrival_gap_ns,
        ))
    return tasks
