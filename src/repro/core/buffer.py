"""The CXL-tiered buffer pool (Sec 3.1 of the paper).

A :class:`TieredBufferPool` manages frames across an ordered list of
memory :class:`Tier` objects — typically local DRAM first, then one or
more CXL tiers — backed by an optional page file on block storage.
Pages live in exactly one tier at a time; a placement policy
(:mod:`repro.core.placement`) decides where pages are admitted, when
they are promoted or demoted, and where evictions drain to.

Timing: every operation charges virtual nanoseconds to the pool's
clock using the tier's :class:`~repro.sim.interconnect.AccessPath`.
``access()`` returns the *demand latency* — what a query thread waits
for — while migration/maintenance costs are accounted separately in
the stats (and also advance the clock).

Execution lanes: the pool exposes three ways to charge accesses that
produce **bit-identical** simulated state and differ only in
wall-clock cost.

* :meth:`TieredBufferPool.access` — the scalar path, one page at a
  time, using the precomputed per-path timing tables.
* :meth:`TieredBufferPool.access_batch` — the fast lane: a run of
  accesses sharing one shape (size, read/write, scan flag, think
  time) is resolved with loop-hoisted bookkeeping and local-variable
  accumulators, falling back to the scalar path at any boundary (a
  fault, a tier without timing tables, or a placement-policy trigger
  point). The per-access float additions to the clock and the demand
  counters happen in exactly the scalar order, which is what makes
  the lane byte-identical rather than merely equivalent.
* :meth:`TieredBufferPool._access_compat` — the frozen pre-table
  reference (per-access spec arithmetic); the perfbench compat lane
  measures against it so speedups are computed in-process.
* :meth:`TieredBufferPool.access_block` /
  :meth:`TieredBufferPool.access_run` — the block lane: a whole
  columnar :class:`~repro.workloads.traces.AccessBlock` (or one
  ndarray run of uniform shape) is resolved against a dense numpy
  residency table (``page_id → tier_index``) kept in sync by
  install/evict/migrate/drop/resize. Hits are partitioned from faults
  with one gather, per-(tier, shape) latencies come from the
  precomputed tables, and the clock/demand accumulators advance
  through exact repeated-addition ladders
  (:mod:`repro.sim.ladder`) so the written-back floats stay
  bit-identical to the scalar lane. Faults, table-less tiers,
  placement triggers, and contended first-of-segment waits drop to
  the scalar/segment paths exactly as the fast lane does.

Session lane: between :meth:`TieredBufferPool.session_begin` and
:meth:`TieredBufferPool.session_end` every lane times accesses
against a *session clock cursor* (an unbound
:class:`~repro.sim.clock.SimClock` owned by one
:class:`~repro.core.sessions.ClientSession`) instead of the pool's
bound clock, and folds arrival-order waits on the tier's shared
resources (:class:`~repro.sim.bandwidth.WaitQueue`) into the demand
latency. A lone session never waits — its own completion is always at
or past the resource's free time — so an N=1 session run stays
byte-identical to the single-stream lanes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np
# np.unique lazy-imports numpy.ma on first call; hoist it so the
# ~20 ms importlib walk lands at module import instead of inside the
# first measured _latch_dirty call (it showed up in bench profiles).
import numpy.ma  # noqa: F401

from ..errors import BufferPoolError, PageFaultError
from ..sim.bandwidth import WaitQueue
from ..sim.clock import SimClock
from ..sim.context import SimContext
from ..sim.interconnect import AccessPath, PathTiming
from ..sim.ladder import (chain_repeat, chain_repeat_arr, chain_values,
                          repeat_add)
from ..storage.file import PageFile
from ..storage.page import Page, PageId
from ..units import CACHE_LINE
from .frame import Frame
from .replacement import LRUPolicy, ReplacementPolicy, make_policy
from .temperature import ExactTracker, TemperatureTracker

if TYPE_CHECKING:  # pragma: no cover
    from .placement import PlacementPolicy


@dataclass
class Tier:
    """One memory tier of the pool."""

    name: str
    path: AccessPath
    capacity_pages: int
    policy: ReplacementPolicy = field(default_factory=lambda: make_policy("lru"))

    def __post_init__(self) -> None:
        if self.capacity_pages <= 0:
            raise BufferPoolError(
                f"tier {self.name}: capacity must be positive"
            )

    @classmethod
    def from_device_path(cls, name: str, path: AccessPath,
                         page_size: int, policy_name: str = "lru",
                         capacity_pages: int | None = None) -> "Tier":
        """Build a tier sized to (a fraction of) its device capacity."""
        capacity = capacity_pages
        if capacity is None:
            capacity = path.device.capacity_bytes // page_size
        return cls(name=name, path=path, capacity_pages=capacity,
                   policy=make_policy(policy_name))


#: Below this run length the batched lane falls back to plain scalar
#: calls: the loop-hoisting setup costs more than it saves.
MIN_BATCH_RUN = 3

#: Dense residency-table ceiling. Page ids at or above this (or
#: negative) stay out of the table and always resolve through the
#: scalar/segment lanes; ids below it are mirrored exactly, so a
#: non-negative table entry is never stale.
_RES_MAX_PIDS = 1 << 22

#: Minimum uniform-shape segment length worth the vectorised span
#: machinery (residency gather + addition ladders); shorter segments
#: take the lean per-access walk inside :meth:`access_block`.  Every
#: lean→vector transition flushes the deferred lean window (a tracker
#: and policy round-trip), so the threshold is set high enough that
#: point-workload read runs stay lean and only genuine scans vector.
VEC_SEG = 96

#: Minimum remaining segment length worth a repeated-addition ladder;
#: below it a plain scalar mini-loop is cheaper than the ladder setup.
_LADDER_MIN = 32

#: Minimum run length :meth:`access_run` sends through the vectorised
#: span — every non-empty run. A run arriving as an ndarray already
#: paid columnarisation, and routing it through the batched lane would
#: both walk it scalar *and* force a deferred-bookkeeping drain inside
#: the session's hot path (the batched lane may evict, so it must
#: observe fully materialised state). Even single-access runs (the
#: write boundaries that pepper OLTP traffic) stay on the
#: deferral-friendly span this way.
_RUN_MIN = 1

#: 2**53 — every integer below this is exactly representable in a
#: float64, so addition chains of whole-nanosecond quantities that stay
#: under it never round and commute freely (the integer-exact lane).
_EXACT_LIMIT = 9007199254740992.0

#: Minimum consecutive-miss run length worth the vectorised fault
#: lane's setup (bulk placement probe, duplicate scan, phase/chain
#: assembly); shorter miss bursts resolve through the scalar fault
#: path, which is cheaper below this.
_FAULT_MIN = 8


@dataclass(slots=True)
class TierStats:
    """Per-tier accounting (slotted: bumped on every hit)."""

    hits: int = 0
    evictions: int = 0
    promotions_in: int = 0
    demotions_in: int = 0
    resident_peak: int = 0

    def snapshot(self) -> dict:
        """Counters as a dict (metrics snapshot protocol)."""
        return {
            "hits": self.hits,
            "evictions": self.evictions,
            "promotions_in": self.promotions_in,
            "demotions_in": self.demotions_in,
            "resident_peak": self.resident_peak,
        }


@dataclass(slots=True)
class BufferPoolStats:
    """Pool-wide accounting (slotted: bumped on every access)."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0
    migrations: int = 0
    demand_time_ns: float = 0.0
    fault_time_ns: float = 0.0
    migration_time_ns: float = 0.0
    per_tier: list[TierStats] = field(default_factory=list)

    @property
    def hits(self) -> int:
        """Accesses served from some tier."""
        return self.accesses - self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served without a storage fault."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def tier_hit_rate(self, tier_index: int) -> float:
        """Fraction of all accesses served by one tier."""
        if self.accesses == 0:
            return 0.0
        return self.per_tier[tier_index].hits / self.accesses

    def snapshot(self) -> dict:
        """Pool-wide counters as a dict (metrics snapshot protocol).

        Per-tier stats are keyed by index here; the pool's own
        :meth:`TieredBufferPool.snapshot` re-keys them by tier name.
        """
        snap: dict = {
            "accesses": self.accesses,
            "misses": self.misses,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "writebacks": self.writebacks,
            "migrations": self.migrations,
            "demand_time_ns": self.demand_time_ns,
            "fault_time_ns": self.fault_time_ns,
            "migration_time_ns": self.migration_time_ns,
        }
        for index, tier_stats in enumerate(self.per_tier):
            snap[f"tier.{index}"] = tier_stats.snapshot()
        return snap


class TieredBufferPool:
    """A buffer pool spanning DRAM and CXL memory tiers."""

    def __init__(
        self,
        tiers: list[Tier],
        backing: PageFile | None = None,
        placement: "PlacementPolicy | None" = None,
        tracker: TemperatureTracker | None = None,
        clock: SimClock | None = None,
        page_size: int = 4096,
        ctx: SimContext | None = None,
    ) -> None:
        if not tiers:
            raise BufferPoolError("a pool needs at least one tier")
        self.tiers = list(tiers)
        self.backing = backing
        # One clock per run: with a context the pool *adopts* the
        # shared clock instead of constructing its own; bind_clock
        # asserts no second clock sneaks in.
        if ctx is None:
            ctx = SimContext(clock=clock)
        elif clock is not None and clock is not ctx.clock:
            raise BufferPoolError(
                "pool was given both a SimContext and a different"
                " clock; a run must use exactly one clock"
            )
        self.ctx = ctx
        self.clock = ctx.bind_clock(ctx.clock, owner="buffer-pool")
        self._trace = ctx.trace
        ctx.register("pool", self)
        self.page_size = page_size
        self.tracker: TemperatureTracker = tracker or ExactTracker()
        self.stats = BufferPoolStats(
            per_tier=[TierStats() for _ in self.tiers]
        )
        self._frames: dict[PageId, Frame] = {}
        self._anonymous_pages: dict[PageId, Page] = {}
        self._resident_counts = [0] * len(self.tiers)
        self._pinned_frames = 0
        if placement is None:
            from .placement import DbCostPolicy
            placement = DbCostPolicy()
        self.placement = placement
        self.placement.attach(self)
        #: Batched fast-lane switch; see the module docstring. Off, the
        #: pool behaves exactly like the pre-fast-lane implementation
        #: (scalar execution, per-access arithmetic).
        self.fast_lane = True
        # Precomputed per-tier timing tables; None for tiers whose path
        # has no table support (those always take the scalar path).
        self._tier_timing: list[PathTiming | None] = [
            self._path_timing(tier.path) for tier in self.tiers
        ]
        # Optional batch hooks, resolved once so the fast lane degrades
        # (to correct scalar behaviour) with custom trackers/policies.
        self._tracker_batch = getattr(self.tracker, "record_batch", None)
        headroom = getattr(placement, "fast_headroom", None)
        note = getattr(placement, "note_accesses", None)
        self._placement_headroom = headroom if note is not None else None
        self._placement_note = note if headroom is not None else None
        # Session lane (see module docstring): while a ConcurrentEngine
        # quantum runs, accesses are timed against that session's clock
        # cursor and contend on per-resource wait queues. Both fields
        # are None outside a quantum so single-stream runs pay only a
        # None-check on the hot paths.
        self._session_clock: SimClock | None = None
        self._session_queues: list[tuple[WaitQueue, ...]] | None = None
        self._wait_queues: list[tuple[WaitQueue, ...]] | None = None
        self._session_wait_ns = 0.0
        # Block lane state. `_res_tier` is a dense page_id → tier_index
        # mirror of self._frames (int16, -1 = non-resident), grown on
        # demand and kept in sync by _install / _evict_to_storage /
        # _migrate_locked / drop_all, so a whole run is partitioned
        # into hits and faults with one gather. `_lat_cache` memoizes
        # per-(nbytes, write, is_scan) hit latencies for every tier at
        # once; both are derived state, never authoritative.
        self._res_tier = np.full(0, -1, dtype=np.int16)
        # Backing id array whose whole range already passed the run
        # guard (see access_run) — slices of it skip min/max/grow.
        self._span_base: np.ndarray | None = None
        self._lat_cache: dict[tuple[int, bool, bool],
                              list[float | None]] = {}
        self._tierless_mask = np.array(
            [timing is None for timing in self._tier_timing], dtype=bool
        )
        self._any_tierless = bool(self._tierless_mask.any())
        # Insertion-order residency index: `_ord_ids[:_ord_len]` holds
        # page ids in self._frames insertion order (the order
        # resident_in must report), `_ord_tier` their tiers and
        # `_ord_valid` a tombstone mask for evicted slots; `_ord_slot`
        # maps pid → slot. Kept in sync by the same three writers as
        # `_res_tier`, so resident_in is one vectorized mask instead of
        # a scan over every frame.
        self._ord_ids = np.empty(1024, dtype=np.int64)
        self._ord_tier = np.empty(1024, dtype=np.int16)
        self._ord_valid = np.zeros(1024, dtype=bool)
        self._ord_len = 0
        self._ord_slot: dict[PageId, int] = {}
        # Deferred frame statistics (integer-exact lane): access counts
        # and final-touch timestamps accumulate in these pid-indexed
        # arrays and fold into the Frame objects at sync_frame_stats()
        # — counts sum commutatively and the last-access time is the
        # max of a monotone clock, so deferral is observation-free.
        # Dirty latches stay eager (writebacks read them mid-run), and
        # eviction clears a pid's pending entry because compat
        # semantics discard a frame's stats with the frame.
        self._pend_acc = np.zeros(0, dtype=np.int64)
        self._pend_ts = np.zeros(0, dtype=np.float64)
        # Deferred bookkeeping records from the vectorised run lane:
        # replacement-recency touches, tracker feeds, and (for pure
        # single-delta segments) the per-access mid timestamps. Each
        # record replays exactly the work the eager code would have
        # done, in the order it would have done it; _drain_lazy() runs
        # before anything that could read or mutate the structures the
        # records touch (scalar accesses, eviction/migration entry
        # points, snapshots), so no reader can observe the deferral.
        self._lazy_runs: list[tuple] = []
        # Conservative pid-indexed mirror of Frame.dirty: True only if
        # the frame is known dirty, so the block lane latches (and
        # walks python frames for) each page at most once. False for a
        # dirty frame is harmless — re-latching is idempotent.
        self._dirty_mirror = np.zeros(0, dtype=bool)
        # Per-tier page-sized device read/write times for migrations
        # (static per path; the stats bumps are replayed inline).
        self._mig_rw: dict[tuple[int, int], tuple[float, float]] = {}
        # Same memoization for the fault path: the backing-store read
        # time (constant per device) and each tier's page install
        # write / eviction read times. All are pure functions of
        # immutable specs; only the device stats bumps are replayed.
        self._back_rd: tuple[object, float, int] | None = None
        self._inst_wr: dict[int, float] = {}
        self._evt_rd: dict[int, float] = {}

    @staticmethod
    def _path_timing(path: AccessPath) -> PathTiming | None:
        """The path's precomputed timing table, if it supports one."""
        build = getattr(path, "timing", None)
        if build is None:
            return None
        try:
            return build()
        except Exception:
            return None

    def set_fast_lane(self, enabled: bool) -> None:
        """Toggle the batched fast lane (simulated results are
        identical either way; only wall-clock changes)."""
        self.fast_lane = bool(enabled)

    # -- the session lane -----------------------------------------------------

    def wait_queues(self) -> list[tuple[WaitQueue, ...]]:
        """Per-tier wait queues over each tier's shared path resources.

        One :class:`~repro.sim.bandwidth.WaitQueue` per distinct link
        and per terminal device, *shared* between tiers whose paths
        share the resource — two tiers behind the same CXL port
        contend with each other; separate expanders do not. Built on
        first use and persistent across session runs, the way link
        channels persist across :meth:`access_at` calls.
        """
        queues = self._wait_queues
        if queues is None:
            by_resource: dict[int, WaitQueue] = {}
            queues = []
            for tier in self.tiers:
                path = tier.path
                tier_queues = []
                for link in getattr(path, "links", ()) or ():
                    queue = by_resource.get(id(link))
                    if queue is None:
                        queue = WaitQueue(f"link.{link.name}",
                                          link.effective_bandwidth)
                        by_resource[id(link)] = queue
                    tier_queues.append(queue)
                device = getattr(path, "device", None)
                if device is not None:
                    queue = by_resource.get(id(device))
                    if queue is None:
                        spec = device.spec
                        queue = WaitQueue(
                            f"device.{device.name}",
                            spec.effective_load_bandwidth,
                            spec.effective_store_bandwidth,
                        )
                        by_resource[id(device)] = queue
                    tier_queues.append(queue)
                queues.append(tuple(tier_queues))
            self._wait_queues = queues
        return queues

    def session_begin(self, clock: SimClock,
                      contended: bool = True) -> None:
        """Enter the session lane: time accesses against *clock* (a
        session-local cursor) and, when *contended*, fold per-resource
        queue waits into demand latency.

        The cursor is deliberately **not** bound to the context — the
        pool's own clock remains the run's single authoritative clock
        (advanced only by the event loop), so the one-clock invariant
        of :meth:`~repro.sim.context.SimContext.bind_clock` holds.
        """
        self._session_clock = clock
        self._session_queues = self.wait_queues() if contended else None

    def session_end(self) -> None:
        """Leave the session lane; single-stream behaviour resumes."""
        self._session_clock = None
        self._session_queues = None

    @property
    def session_wait_ns(self) -> float:
        """Total contention wait folded into demand latency so far."""
        return self._session_wait_ns

    def _contend(self, tier_index: int, now_ns: float, latency: float,
                 nbytes: int, write: bool) -> float:
        """Queue one access on its tier's shared resources.

        Returns the latency with any arrival-order wait folded in as a
        single addition — zero wait returns the float *untouched*,
        which is what keeps N=1 session runs byte-identical to the
        single-stream lanes.
        """
        tier_queues = self._session_queues[tier_index]
        wait = 0.0
        bottleneck = None
        for queue in tier_queues:
            delay = queue._free_at - now_ns
            if delay > wait:
                wait = delay
                bottleneck = queue
        if wait > 0.0:
            self._session_wait_ns += wait
            bottleneck.note_wait(wait)
            latency = wait + latency
        start = now_ns + wait
        for queue in tier_queues:
            queue.occupy_run(start, nbytes, 1, write)
        return latency

    # -- introspection -------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Number of pages currently held in any tier."""
        return len(self._frames)

    def tier_residents(self, tier_index: int) -> int:
        """Number of pages resident in one tier."""
        return self._resident_counts[tier_index]

    def frame_of(self, page_id: PageId) -> Frame | None:
        """The frame holding a page, if resident."""
        return self._frames.get(page_id)

    def tier_of(self, page_id: PageId) -> int | None:
        """Index of the tier holding a page, if resident."""
        frame = self._frames.get(page_id)
        return frame.tier_index if frame else None

    def resident_in(self, tier_index: int) -> Iterable[PageId]:
        """Page ids resident in one tier, in frame-map insertion order."""
        return self.resident_ids_in(tier_index).tolist()

    def resident_ids_in(self, tier_index: int) -> np.ndarray:
        """Like :meth:`resident_in` but as an int64 array, for callers
        (placement rebalance) that feed the ids straight back into
        vectorized heat gathers without a list round-trip."""
        n = self._ord_len
        if n == 0:
            return np.empty(0, dtype=np.int64)
        mask = self._ord_valid[:n] & (self._ord_tier[:n] == tier_index)
        return self._ord_ids[:n][mask]

    def _latch_dirty(self, write_ids: np.ndarray) -> None:
        """Set the dirty flag on just-written frames, walking python
        objects only for pages not already known dirty (the mirror is
        conservative: False may mean dirty, True always means dirty)."""
        mirror = self._dirty_mirror
        fresh = write_ids[~mirror[write_ids]]
        if fresh.size:
            frames = self._frames
            ids = np.unique(fresh) if fresh.size > 1 else fresh
            for pid in ids.tolist():
                frames[pid].dirty = True
            mirror[ids] = True

    def _drain_lazy(self) -> None:
        """Replay deferred run-lane bookkeeping records in order.

        Three record kinds, appended by :meth:`_run_span`:

        * ``("run", ids, s, e, tier, now0, lat, think, post, write)``
          — a deferred segment (pure, or short and think-bearing):
          recompute the per-access mid timestamps with
          :func:`chain_repeat_arr` (the identical float sequence the
          scalar chain produced), scatter them into the pending
          frame-stat arrays, latch dirty bits, and touch replacement
          recency for the whole segment;
        * ``("lru", seq, s, e, tier)`` — recency touches for a segment
          whose timestamps were materialised eagerly;
        * ``("trk", ids, s, e, is_scan)`` — a window's temperature
          feed.

        Replaying in append order reproduces the eager structure
        mutations exactly: recency order, tracker decay epochs, and
        pending-array contents are bit-identical because every record
        re-runs the same operations on the same operands.

        Two exact coalescing rules keep the replay vectorised even
        when the run lane produced many short records (OLTP traffic
        cuts runs every few accesses at write boundaries):

        * adjacent records whose *policy touches* continue one span
          (same policy, same id array, ``prev_e == next_s``) fold into
          one ``record_access_batch`` — the touch sequence is
          literally the same key order;
        * ``"trk"`` records are dispatched after the loop, merged the
          same way. The tracker is touched by no other record kind and
          read by none of them, so only trk-vs-trk order matters, and
          that subsequence order (with exact per-index aging inside
          ``record_block``) is preserved.
        """
        pending = self._lazy_runs
        if not pending:
            return
        # Copy-and-clear in place: _run_span holds the list as a local
        # across scalar boundary accesses (which drain), so the object
        # identity must survive the drain.
        lazy = pending[:]
        pending.clear()
        frames_get = self._frames.get
        tiers = self.tiers
        tracker_block = getattr(self.tracker, "record_block", None)
        tracker_batch = self._tracker_batch
        pend_acc = self._pend_acc
        pend_ts = self._pend_ts
        scan_true = scan_false = None
        # Buffered policy touch: (policy, seq, start, end) of the span
        # being extended, flushed when the next touch doesn't continue
        # it. Frame/pend writes land inline — they share no structure
        # with the recency order, so holding the touch back is unseen.
        pol = None
        pol_seq = None
        pol_s = pol_e = 0
        trk: list[list] = []
        for rec in lazy:
            tag = rec[0]
            if tag == "run":
                (_, ids, s, e, tier_index, now0, lat, think, post,
                 write) = rec
                seg = ids[s + 1:e]
                rem = e - s - 1
                if think:
                    deltas = ((think, lat, post) if post
                              else (think, lat))
                    mid_index = 1
                else:
                    deltas = (lat, post) if post else (lat,)
                    mid_index = 0
                _, mids = chain_repeat_arr(now0, deltas, rem, mid_index)
                if rem == 1 or bool((seg[1:] > seg[:-1]).all()):
                    pend_acc[seg] += 1
                    pend_ts[seg] = mids
                    if write:
                        self._latch_dirty(seg)
                else:
                    lo = int(seg.min())
                    width = int(seg.max()) - lo + 1
                    if width <= 4 * rem:
                        rel = seg - lo
                        bc = np.bincount(rel, minlength=width)
                        nz = np.nonzero(bc)[0]
                        pos = np.empty(width, dtype=np.int64)
                        np.put(pos, rel, np.arange(rem))
                        uq = nz + lo
                        pend_acc[uq] += bc[nz]
                        pend_ts[uq] = mids[pos[nz]]
                        if write:
                            self._latch_dirty(seg)
                    else:
                        for pid, mid in zip(seg.tolist(), mids.tolist()):
                            f = frames_get(pid)
                            f.accesses += 1
                            f.last_access_ns = mid
                            if write:
                                f.dirty = True
            elif tag == "lru":
                _, ids, s, e, tier_index = rec
            else:
                _, ids, s, e, is_scan = rec
                last = trk[-1] if trk else None
                if (last is not None and last[0] is ids
                        and last[2] == s and last[3] == is_scan):
                    last[2] = e
                else:
                    trk.append([ids, s, e, is_scan])
                continue
            policy = tiers[tier_index].policy
            if pol is policy and pol_seq is ids and pol_e == s:
                pol_e = e
            else:
                if pol is not None:
                    self._policy_touch(pol, pol_seq, pol_s, pol_e)
                pol, pol_seq, pol_s, pol_e = policy, ids, s, e
        if pol is not None:
            self._policy_touch(pol, pol_seq, pol_s, pol_e)
        for ids, s, e, is_scan in trk:
            if tracker_block is not None:
                if is_scan:
                    if scan_true is None or scan_true.shape[0] < e:
                        scan_true = np.ones(e, dtype=bool)
                    tracker_block(ids, scan_true, s, e)
                else:
                    if scan_false is None or scan_false.shape[0] < e:
                        scan_false = np.zeros(e, dtype=bool)
                    tracker_block(ids, scan_false, s, e)
            elif tracker_batch is not None:
                tracker_batch(ids, s, e, is_scan)
            else:
                record = self.tracker.record
                for j in range(s, e):
                    record(ids[j], is_scan=is_scan)

    @staticmethod
    def _policy_touch(policy, seq, start: int, end: int) -> None:
        """Touch ``seq[start:end]`` on a replacement policy (batch API
        when available, scalar loop otherwise)."""
        batch = getattr(policy, "record_access_batch", None)
        if batch is not None:
            batch(seq, start, end)
        else:
            record = policy.record_access
            for i in range(start, end):
                record(seq[i])

    def sync_frame_stats(self) -> None:
        """Fold deferred block-lane frame stats into the Frame objects.

        The integer-exact block lane batches ``Frame.accesses`` counts
        and last-access timestamps in pid-indexed arrays instead of
        touching each frame per access.  Engine runs and snapshots call
        this before anything reads per-frame statistics; direct pool
        drivers that inspect frames (tests) should call it too.
        """
        if self._lazy_runs:
            self._drain_lazy()
        pend = self._pend_acc
        if not pend.size:
            return
        ids = np.nonzero(pend)[0]
        if not ids.size:
            return
        frames = self._frames
        get = frames.get
        for pid, extra, ts in zip(ids.tolist(), pend[ids].tolist(),
                                  self._pend_ts[ids].tolist()):
            frame = get(pid)
            if frame is not None:
                frame.accesses += extra
                if ts > frame.last_access_ns:
                    frame.last_access_ns = ts
        pend[ids] = 0

    def _ord_rebuild(self) -> None:
        """Re-derive the insertion-order index from the frame map
        (compacts tombstones; doubles capacity when mostly live)."""
        live = len(self._frames)
        cap = max(1024, 2 * live)
        ids = np.empty(cap, dtype=np.int64)
        tiers_arr = np.empty(cap, dtype=np.int16)
        slot_map = {}
        i = 0
        for pid, frame in self._frames.items():
            ids[i] = pid
            tiers_arr[i] = frame.tier_index
            slot_map[pid] = i
            i += 1
        valid = np.zeros(cap, dtype=bool)
        valid[:i] = True
        self._ord_ids = ids
        self._ord_tier = tiers_arr
        self._ord_valid = valid
        self._ord_len = i
        self._ord_slot = slot_map

    def _ord_add(self, page_id: PageId, tier_index: int) -> None:
        """Append one just-installed page to the insertion-order index.

        Called after ``self._frames[page_id]`` is set, so a rebuild
        (full array: compact or grow) already includes the new page."""
        n = self._ord_len
        if n == self._ord_ids.shape[0]:
            self._ord_rebuild()
            return
        self._ord_ids[n] = page_id
        self._ord_tier[n] = tier_index
        self._ord_valid[n] = True
        self._ord_slot[page_id] = n
        self._ord_len = n + 1

    def _ord_extend(self, page_ids: np.ndarray, tier_index: int) -> None:
        """Bulk :meth:`_ord_add`: append a run of just-installed pages.

        Same caller contract — every id is already in ``self._frames``,
        so an overflow rebuild derives a complete index (including the
        new pages). Below capacity the run lands as three slice
        assignments and one dict update instead of k scalar appends."""
        k = page_ids.shape[0]
        n = self._ord_len
        if n + k > self._ord_ids.shape[0]:
            self._ord_rebuild()
            return
        self._ord_ids[n:n + k] = page_ids
        self._ord_tier[n:n + k] = tier_index
        self._ord_valid[n:n + k] = True
        self._ord_slot.update(zip(page_ids.tolist(), range(n, n + k)))
        self._ord_len = n + k

    @property
    def total_capacity_pages(self) -> int:
        """Sum of tier capacities."""
        return sum(tier.capacity_pages for tier in self.tiers)

    def snapshot(self) -> dict:
        """Pool state for a metrics snapshot: the stats counters with
        per-tier entries re-keyed by tier name plus residency.

        Deliberately does *not* force deferred frame statistics to
        materialise: every value in the payload (stats counters,
        residency, capacities) is maintained eagerly, so snapshots stay
        cheap on the session hot path. Callers that read per-frame
        state (``Frame.accesses``, recency order, tracker heat) go
        through :meth:`sync_frame_stats` or one of the scalar entry
        points, all of which drain first.
        """
        snap = self.stats.snapshot()
        for index, tier in enumerate(self.tiers):
            tier_snap = snap.pop(f"tier.{index}", None)
            if tier_snap is None:
                tier_snap = self.stats.per_tier[index].snapshot()
            tier_snap["resident"] = self.tier_residents(index)
            tier_snap["capacity_pages"] = tier.capacity_pages
            snap[f"tier.{tier.name}"] = tier_snap
        return snap

    # -- pinning --------------------------------------------------------------

    def pin(self, page_id: PageId) -> None:
        """Pin a resident page.

        Pin through the pool (not ``frame.pin()`` directly): the pool
        counts pinned frames so victim selection can skip the pinned
        predicate entirely in the no-pins common case.
        """
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"cannot pin non-resident page {page_id}")
        if not frame.pinned:
            self._pinned_frames += 1
        frame.pin()

    def unpin(self, page_id: PageId) -> None:
        """Unpin a resident page."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"cannot unpin non-resident page {page_id}")
        frame.unpin()
        if not frame.pinned:
            self._pinned_frames -= 1

    # -- the access fast path ---------------------------------------------------

    def access(self, page_id: PageId, nbytes: int = CACHE_LINE,
               write: bool = False, is_scan: bool = False) -> float:
        """Touch *nbytes* of a page; returns the demand latency (ns).

        A resident page is charged its tier's access time; a miss runs
        the fault path (storage read + admission, possibly evicting).
        The placement policy observes every access and may migrate
        pages as a side effect (charged to migration time, not to the
        returned demand latency).

        In the session lane the access is timed against the session's
        clock cursor and any arrival-order wait on the tier's shared
        resources is folded into the returned latency.
        """
        if self._lazy_runs:
            self._drain_lazy()
        self.stats.accesses += 1
        self.tracker.record(page_id, is_scan=is_scan)
        clock = self._session_clock
        if clock is None:
            clock = self.clock
        frame = self._frames.get(page_id)
        if frame is None:
            latency = self._fault(page_id, is_scan=is_scan)
            frame = self._frames[page_id]
            self.stats.misses += 1
            self.stats.fault_time_ns += latency
            if self._session_queues is not None:
                # The fault installs a full page into the admit tier;
                # that write is what occupies the tier's resources.
                latency = self._contend(frame.tier_index, clock._now,
                                        latency, self.page_size, True)
            trace = self._trace
            if trace.enabled:
                # The clock advances by `latency` just below; the span
                # covers exactly that charged interval.
                now = clock.now
                trace.emit_span("pool.fault", "pool", now, now + latency,
                                {"page": page_id})
        else:
            tier = self.tiers[frame.tier_index]
            if write:
                latency = (tier.path.write_time_sequential(nbytes)
                           if is_scan else tier.path.write_time(nbytes))
            else:
                latency = (tier.path.read_time_sequential(nbytes)
                           if is_scan else tier.path.read_time(nbytes))
            if self._session_queues is not None:
                latency = self._contend(frame.tier_index, clock._now,
                                        latency, nbytes, write)
            self._register_hit(page_id, frame.tier_index)
        frame.touch(clock.now, write=write)
        clock.advance(latency)
        self.stats.demand_time_ns += latency
        self.placement.on_access(page_id, frame.tier_index, is_scan=is_scan)
        return latency

    def _access_compat(self, page_id: PageId, nbytes: int = CACHE_LINE,
                       write: bool = False, is_scan: bool = False) -> float:
        """The frozen pre-fast-lane :meth:`access`: hit latency derived
        from specs per call, no tables. Kept verbatim as the perfbench
        compat lane and the reference the equivalence tests compare the
        fast lane against. Results are bit-identical to :meth:`access`;
        only the wall-clock cost differs.
        """
        if self._lazy_runs:
            self._drain_lazy()
        self.stats.accesses += 1
        self.tracker.record(page_id, is_scan=is_scan)
        clock = self._session_clock
        if clock is None:
            clock = self.clock
        frame = self._frames.get(page_id)
        if frame is None:
            latency = self._fault(page_id, is_scan=is_scan)
            frame = self._frames[page_id]
            self.stats.misses += 1
            self.stats.fault_time_ns += latency
            if self._session_queues is not None:
                latency = self._contend(frame.tier_index, clock._now,
                                        latency, self.page_size, True)
            trace = self._trace
            if trace.enabled:
                now = clock.now
                trace.emit_span("pool.fault", "pool", now, now + latency,
                                {"page": page_id})
        else:
            path = self.tiers[frame.tier_index].path
            if write:
                latency = (path.write_time_sequential_uncached(nbytes)
                           if is_scan else path.write_time_uncached(nbytes))
            else:
                latency = (path.read_time_sequential_uncached(nbytes)
                           if is_scan else path.read_time_uncached(nbytes))
            if self._session_queues is not None:
                latency = self._contend(frame.tier_index, clock._now,
                                        latency, nbytes, write)
            self._register_hit(page_id, frame.tier_index)
        frame.touch(clock.now, write=write)
        clock.advance(latency)
        self.stats.demand_time_ns += latency
        self.placement.on_access(page_id, frame.tier_index, is_scan=is_scan)
        return latency

    def access_batch(self, page_ids: Sequence[PageId],
                     nbytes: int = CACHE_LINE, write: bool = False,
                     is_scan: bool = False, think_ns: float = 0.0,
                     post_ns: float = 0.0, accum: float = 0.0) -> float:
        """Charge a run of accesses sharing one shape; the fast lane.

        Semantically (and bit-for-bit) identical to::

            for pid in page_ids:
                if think_ns:
                    clock.advance(think_ns)
                accum += pool.access(pid, nbytes=nbytes, write=write,
                                     is_scan=is_scan)
                if post_ns:
                    clock.advance(post_ns)
            return accum

        *think_ns* is CPU time charged before each access (workload
        think time), *post_ns* after it (operator per-page CPU), and
        *accum* is the caller's running demand accumulator — threading
        it through keeps the caller's float addition sequence exactly
        as in the scalar loop.

        Hits on tiers with timing tables are resolved in a tight loop
        with local accumulators that are written back at run
        boundaries; a miss, a table-less tier, or a placement trigger
        point flushes the window and routes that one access through
        the scalar path, so eviction, migration, and rebalance
        decisions see exactly the state they would have scalar-wise.
        """
        if self._lazy_runs:
            self._drain_lazy()
        if think_ns < 0 or post_ns < 0:
            raise BufferPoolError("think_ns and post_ns must be >= 0")
        seq = page_ids if hasattr(page_ids, "__getitem__") \
            else list(page_ids)
        n = len(seq)
        if n == 0:
            return accum
        clock = self._session_clock
        if clock is None:
            clock = self.clock
        if not self.fast_lane:
            advance = clock.advance
            compat = self._access_compat
            for pid in seq:
                if think_ns:
                    advance(think_ns)
                accum += compat(pid, nbytes, write, is_scan)
                if post_ns:
                    advance(post_ns)
            return accum
        if n < MIN_BATCH_RUN:
            advance = clock.advance
            access = self.access
            for pid in seq:
                if think_ns:
                    advance(think_ns)
                accum += access(pid, nbytes=nbytes, write=write,
                                is_scan=is_scan)
                if post_ns:
                    advance(post_ns)
            return accum
        stats = self.stats
        frames_get = self._frames.get
        tier_timing = self._tier_timing
        headroom_fn = self._placement_headroom
        note = self._placement_note
        tracker_batch = self._tracker_batch
        tracker_record = self.tracker.record
        queues = self._session_queues
        if headroom_fn is None:
            # No batch support on the placement policy: headroom would
            # be 0 for every window, so every access routes scalar
            # anyway. Detect it once and skip the window machinery.
            advance = clock.advance
            access = self.access
            for pid in seq:
                if think_ns:
                    advance(think_ns)
                accum += access(pid, nbytes=nbytes, write=write,
                                is_scan=is_scan)
                if post_ns:
                    advance(post_ns)
            return accum
        i = 0
        while i < n:
            headroom = headroom_fn()
            if headroom <= 0:
                # A placement trigger: route one access through the
                # scalar path so it sees fully up-to-date state.
                if think_ns:
                    clock.advance(think_ns)
                accum += self.access(seq[i], nbytes=nbytes, write=write,
                                     is_scan=is_scan)
                if post_ns:
                    clock.advance(post_ns)
                i += 1
                continue
            end = i + headroom
            if end > n:
                end = n
            win_start = i
            # Local accumulators mirror clock/stats state; per-access
            # additions below happen in exactly the scalar order, so
            # the written-back floats are bit-identical.
            now = clock._now
            pool_demand = stats.demand_time_ns
            cur_tier = -1
            seg_start = i
            lat = 0.0
            lat_i = 0.0
            tier_queues: tuple[WaitQueue, ...] = ()
            seg_fresh = False
            boundary = False
            while i < end:
                frame = frames_get(seq[i])
                if frame is None:
                    boundary = True
                    break
                tier_index = frame.tier_index
                if tier_index != cur_tier:
                    if seg_start < i:
                        self._flush_segment(
                            seq, seg_start, i, cur_tier, nbytes, write,
                            end_ns=(now - post_ns) if post_ns else now,
                            lat=lat,
                        )
                    timing = tier_timing[tier_index]
                    if timing is None:
                        boundary = True
                        break
                    cur_tier = tier_index
                    seg_start = i
                    if write:
                        lat = (timing.seq_write_latency_ns if is_scan
                               else timing.write_latency_ns
                               ) + timing.write_transfer.time_ns(nbytes)
                    else:
                        lat = (timing.seq_read_latency_ns if is_scan
                               else timing.read_latency_ns
                               ) + timing.read_transfer.time_ns(nbytes)
                    if queues is not None:
                        tier_queues = queues[tier_index]
                        seg_fresh = True
                if think_ns:
                    now += think_ns
                if seg_fresh:
                    # First access of a contended segment: fold the
                    # arrival-order queue wait into its latency as one
                    # addition, exactly as the scalar _contend does.
                    # Later accesses of the run cannot wait (the run
                    # itself keeps the resource busy behind them).
                    seg_fresh = False
                    wait = 0.0
                    bottleneck = None
                    for queue in tier_queues:
                        delay = queue._free_at - now
                        if delay > wait:
                            wait = delay
                            bottleneck = queue
                    if wait > 0.0:
                        self._session_wait_ns += wait
                        bottleneck.note_wait(wait)
                        lat_i = wait + lat
                    else:
                        lat_i = lat
                else:
                    lat_i = lat
                # Inlined frame.touch at the pre-advance clock value,
                # as in the scalar path.
                frame.accesses += 1
                frame.last_access_ns = now
                if write:
                    frame.dirty = True
                now += lat_i
                pool_demand += lat_i
                accum += lat_i
                if post_ns:
                    now += post_ns
                i += 1
            if seg_start < i:
                self._flush_segment(
                    seq, seg_start, i, cur_tier, nbytes, write,
                    end_ns=(now - post_ns) if post_ns else now,
                    lat=lat,
                )
            count = i - win_start
            if count:
                stats.accesses += count
                stats.demand_time_ns = pool_demand
                clock._now = now
                if tracker_batch is not None:
                    tracker_batch(seq, win_start, i, is_scan)
                else:
                    for j in range(win_start, i):
                        tracker_record(seq[j], is_scan=is_scan)
                note(seq, win_start, i, is_scan)
            if boundary:
                # The access that broke the window (fault or table-less
                # tier) resolves scalar, after the flush above so it
                # observes fully up-to-date state — unless it heads a
                # run of misses long enough for the bulk fault lane
                # (three consecutive dict probes gate the columnarise).
                if (frame is None and i + 2 < n
                        and frames_get(seq[i + 1]) is None
                        and frames_get(seq[i + 2]) is None):
                    done = self._fault_list(seq, i, n, nbytes, write,
                                            is_scan, think_ns, post_ns,
                                            accum)
                    if done is not None:
                        i += done[0]
                        accum = done[1]
                        continue
                if think_ns:
                    clock.advance(think_ns)
                accum += self.access(seq[i], nbytes=nbytes, write=write,
                                     is_scan=is_scan)
                if post_ns:
                    clock.advance(post_ns)
                i += 1
        return accum

    def _flush_segment(self, seq: Sequence[PageId], start: int, end: int,
                       tier_index: int, nbytes: int, write: bool,
                       end_ns: float = 0.0, lat: float = 0.0,
                       occupy: bool = True,
                       lazy: list | None = None) -> None:
        """Apply the deferred per-tier bookkeeping of a same-tier run:
        replacement recency, hit counters, device traffic. Counter
        order within a window does not affect simulated results (they
        are integers read only at scalar boundaries).

        In the session lane, *end_ns* (demand completion of the run's
        last access) and *lat* (its unloaded latency) place the run's
        occupancy on the tier's wait queues — the batched equivalent of
        the per-access ``occupy_run`` in :meth:`_contend`. A caller
        that batches reservations itself (:meth:`_run_span` reserves
        once per queue per window via
        :meth:`~repro.sim.bandwidth.WaitQueue.reserve_run`) passes
        ``occupy=False``.
        """
        count = end - start
        tier = self.tiers[tier_index]
        if lazy is None:
            self._policy_touch(tier.policy, seq, start, end)
        else:
            lazy.append(("lru", seq, start, end, tier_index))
        self.stats.per_tier[tier_index].hits += count
        device_stats = tier.path.device.stats
        if write:
            device_stats.stores += count
            device_stats.store_bytes += count * nbytes
        else:
            device_stats.loads += count
            device_stats.load_bytes += count * nbytes
        if occupy:
            queues = self._session_queues
            if queues is not None:
                start_last = end_ns - lat
                for queue in queues[tier_index]:
                    queue.occupy_run(start_last, nbytes, count, write)

    # -- the block lane -------------------------------------------------------

    def _res_grow(self, min_size: int) -> np.ndarray:
        """Grow the dense residency table to cover ids below *min_size*
        (power-of-two sizing; the caller keeps ids < _RES_MAX_PIDS)."""
        arr = self._res_tier
        size = max(1024, arr.shape[0])
        while size < min_size:
            size *= 2
        new = np.full(size, -1, dtype=np.int16)
        if arr.shape[0]:
            new[:arr.shape[0]] = arr
        self._res_tier = new
        acc = np.zeros(size, dtype=np.int64)
        ts = np.zeros(size, dtype=np.float64)
        old = self._pend_acc.shape[0]
        if old:
            acc[:old] = self._pend_acc
            ts[:old] = self._pend_ts
        self._pend_acc = acc
        self._pend_ts = ts
        dirty = np.zeros(size, dtype=bool)
        if self._dirty_mirror.shape[0]:
            dirty[:self._dirty_mirror.shape[0]] = self._dirty_mirror
        self._dirty_mirror = dirty
        return new

    def _res_set(self, page_id: PageId, tier_index: int) -> None:
        """Mirror one residency change into the dense table."""
        if 0 <= page_id < _RES_MAX_PIDS:
            arr = self._res_tier
            if page_id >= arr.shape[0]:
                arr = self._res_grow(page_id + 1)
            arr[page_id] = tier_index

    def _shape_latencies(self, nbytes: int, write: bool,
                         is_scan: bool) -> list[float | None]:
        """Per-tier hit latency for one access shape, memoized; None
        for table-less tiers (those accesses always resolve scalar)."""
        key = (nbytes, write, is_scan)
        lats = self._lat_cache.get(key)
        if lats is None:
            lats = []
            for timing in self._tier_timing:
                if timing is None:
                    lats.append(None)
                elif write:
                    lats.append(
                        (timing.seq_write_latency_ns if is_scan
                         else timing.write_latency_ns)
                        + timing.write_transfer.time_ns(nbytes)
                    )
                else:
                    lats.append(
                        (timing.seq_read_latency_ns if is_scan
                         else timing.read_latency_ns)
                        + timing.read_transfer.time_ns(nbytes)
                    )
            self._lat_cache[key] = lats
        return lats

    def _run_span(self, ids: np.ndarray, start: int, stop: int,
                  nbytes: int, write: bool, is_scan: bool,
                  think_ns: float, post_ns: float, accum: float) -> float:
        """Vectorised core for one uniform-shape run of page ids.

        The caller guarantees: fast lane on, a batch-capable placement
        policy, and every id inside the (already grown) dense residency
        table. Per headroom window the run is partitioned into hits and
        boundaries with one gather; hit segments advance the clock and
        demand accumulators through exact addition ladders
        (:func:`~repro.sim.ladder.chain_repeat` /
        :func:`~repro.sim.ladder.repeat_add`), so every written-back
        float is bit-identical to the scalar loop. Faults, table-less
        tiers, and placement triggers route scalar exactly as
        :meth:`access_batch` does; the residency table is re-gathered
        afterwards, so their side effects (evictions, migrations,
        rebalances) are observed precisely.
        """
        clock = self._session_clock
        if clock is None:
            clock = self.clock
        stats = self.stats
        frames_get = self._frames.get
        headroom_fn = self._placement_headroom
        note = self._placement_note
        queues = self._session_queues
        res = self._res_tier
        lats = self._shape_latencies(nbytes, write, is_scan)
        any_tierless = self._any_tierless
        tierless = self._tierless_mask
        lazy = self._lazy_runs
        pure = think_ns == 0.0 and post_ns == 0.0
        i = start
        n = stop
        while i < n:
            headroom = headroom_fn()
            if headroom <= 0:
                # A placement trigger: one access through the scalar
                # path, exactly as the batched lane routes it.
                if think_ns:
                    clock.advance(think_ns)
                accum += self.access(int(ids[i]), nbytes=nbytes,
                                     write=write, is_scan=is_scan)
                if post_ns:
                    clock.advance(post_ns)
                i += 1
                continue
            wend = i + headroom
            if wend > n:
                wend = n
            wlen = wend - i
            span = res[ids[i:wend]]
            bad = span < 0
            if any_tierless:
                # -1 lanes are already marked bad, so the stray
                # tierless[-1] gather on them cannot flip anything.
                bad |= tierless[span]
            if bad.any():
                hits = int(bad.argmax())
                if hits == 0 and queues is None:
                    # A miss run heads the window: try the bulk fault
                    # lane before falling back to scalar resolution.
                    done = self._fault_span(ids, i, n, nbytes, write,
                                            is_scan, think_ns, post_ns,
                                            accum)
                    if done is not None:
                        i += done[0]
                        accum = done[1]
                        res = self._res_tier
                        continue
                if 2 * int(bad.sum()) > wlen:
                    # Boundary-dense window (cold pool, thrash): the
                    # per-window gather cannot win, so delegate the
                    # whole window to the segment lane.
                    accum = self.access_batch(
                        ids[i:wend].tolist(), nbytes=nbytes, write=write,
                        is_scan=is_scan, think_ns=think_ns,
                        post_ns=post_ns, accum=accum,
                    )
                    i = wend
                    continue
            else:
                hits = wlen
            if hits:
                win_start = i
                # Local accumulators mirror clock/stats state, written
                # back once per window — the fast lane's contract.
                now = clock._now
                pool_demand = stats.demand_time_ns
                sp = span[:hits]
                cuts = np.nonzero(sp[1:] != sp[:-1])[0]
                if cuts.size:
                    bounds_rel = [0] + (cuts + 1).tolist() + [hits]
                else:
                    bounds_rel = [0, hits]
                # Queue occupancy is deferred to one reserve_run per
                # queue at the window boundary: a session's own
                # reservations can never push free_at past its own
                # cursor (analytic latency covers the service time),
                # so later segment heads fold exactly the same wait
                # whether earlier segments occupied eagerly or not.
                seg_tiers: list[int] = []
                seg_lasts: list[float] = []
                seg_counts: list[int] = []
                for bi in range(len(bounds_rel) - 1):
                    s = i + bounds_rel[bi]
                    e = i + bounds_rel[bi + 1]
                    tier_index = int(sp[bounds_rel[bi]])
                    lat = lats[tier_index]
                    # First access of the segment runs manually: it is
                    # the only one that can fold a contention wait, as
                    # in the batched lane.
                    if think_ns:
                        now += think_ns
                    lat_i = lat
                    if queues is not None:
                        wait = 0.0
                        bottleneck = None
                        for queue in queues[tier_index]:
                            delay = queue._free_at - now
                            if delay > wait:
                                wait = delay
                                bottleneck = queue
                        if wait > 0.0:
                            self._session_wait_ns += wait
                            bottleneck.note_wait(wait)
                            lat_i = wait + lat
                    frame = frames_get(ids[s])
                    frame.accesses += 1
                    frame.last_access_ns = now
                    if write:
                        frame.dirty = True
                    now += lat_i
                    pool_demand += lat_i
                    accum += lat_i
                    if post_ns:
                        now += post_ns
                    rem = e - s - 1
                    if rem:
                        if lat > 0.0:
                            # Deferred segment: the clock and demand
                            # ladders are the only values the run
                            # itself observes, so the mid timestamps
                            # (frame touches), recency touches, and
                            # tracker feed are recorded and replayed
                            # by _drain_lazy() before any reader —
                            # chain_repeat_arr over the same
                            # (now, lat, think, post, rem) reproduces
                            # the identical float sequence then. Pure
                            # segments advance the clock by one exact
                            # ladder; think-bearing segments run the
                            # delta cycle (vectorised at _LADDER_MIN,
                            # the scalar chain below it — the ladder's
                            # own fallback regime, and exactly the
                            # chain the compat loop runs). The demand
                            # accumulators only ever add lat, so they
                            # fold with repeat_add regardless of the
                            # interleaving.
                            lazy.append(("run", ids, s, e,
                                         tier_index, now, lat,
                                         think_ns, post_ns, write))
                            if pure:
                                now = repeat_add(now, lat, rem)
                            elif rem >= _LADDER_MIN:
                                if think_ns:
                                    deltas = ((think_ns, lat, post_ns)
                                              if post_ns
                                              else (think_ns, lat))
                                    mid_index = 1
                                else:
                                    deltas = ((lat, post_ns) if post_ns
                                              else (lat,))
                                    mid_index = 0
                                now, _ = chain_repeat_arr(
                                    now, deltas, rem, mid_index)
                            elif think_ns:
                                if post_ns:
                                    for _ in range(rem):
                                        now += think_ns
                                        now += lat
                                        now += post_ns
                                else:
                                    for _ in range(rem):
                                        now += think_ns
                                        now += lat
                            else:
                                for _ in range(rem):
                                    now += lat
                                    now += post_ns
                            pool_demand = repeat_add(pool_demand,
                                                     lat, rem)
                            accum = repeat_add(accum, lat, rem)
                            self.stats.per_tier[
                                tier_index].hits += e - s
                            dstats = self.tiers[
                                tier_index].path.device.stats
                            if write:
                                dstats.stores += e - s
                                dstats.store_bytes += (e - s) * nbytes
                            else:
                                dstats.loads += e - s
                                dstats.load_bytes += (e - s) * nbytes
                            if queues is not None:
                                seg_tiers.append(tier_index)
                                seg_lasts.append(
                                    (now - post_ns if post_ns
                                     else now) - lat)
                                seg_counts.append(e - s)
                            continue
                        # lat == 0 (untimed tier): nothing to defer —
                        # the chain degenerates to think/post alone.
                        for pid in ids[s + 1:e].tolist():
                            if think_ns:
                                now += think_ns
                            f = frames_get(pid)
                            f.accesses += 1
                            f.last_access_ns = now
                            if write:
                                f.dirty = True
                            now += lat
                            pool_demand += lat
                            accum += lat
                            if post_ns:
                                now += post_ns
                    self._flush_segment(
                        ids, s, e, tier_index, nbytes, write,
                        end_ns=(now - post_ns) if post_ns else now,
                        lat=lat, occupy=False, lazy=lazy,
                    )
                    if queues is not None:
                        seg_tiers.append(tier_index)
                        seg_lasts.append(
                            (now - post_ns if post_ns else now) - lat)
                        seg_counts.append(e - s)
                if seg_tiers:
                    # Consecutive same-tier segments reserve in one
                    # call; tier changes cut the batch so queues
                    # shared across tiers see the exact per-segment
                    # accounting order (busy time is a float chain).
                    nsg = len(seg_tiers)
                    a = 0
                    while a < nsg:
                        b = a + 1
                        T = seg_tiers[a]
                        while b < nsg and seg_tiers[b] == T:
                            b += 1
                        if b - a == 1:
                            for queue in queues[T]:
                                queue.occupy_run(seg_lasts[a], nbytes,
                                                 seg_counts[a], write)
                        else:
                            for queue in queues[T]:
                                queue.reserve_run(seg_lasts[a:b],
                                                  nbytes,
                                                  seg_counts[a:b],
                                                  write)
                        a = b
                stats.accesses += hits
                stats.demand_time_ns = pool_demand
                clock._now = now
                lazy.append(("trk", ids, win_start, win_start + hits,
                             is_scan))
                note(ids, win_start, win_start + hits, is_scan)
                i += hits
            if hits < wlen:
                # The boundary access (fault or table-less tier)
                # resolves scalar after the writeback above; the next
                # window re-gathers, so its evictions/migrations are
                # fully observed.
                if think_ns:
                    clock.advance(think_ns)
                accum += self.access(int(ids[i]), nbytes=nbytes,
                                     write=write, is_scan=is_scan)
                if post_ns:
                    clock.advance(post_ns)
                i += 1
                res = self._res_tier
        return accum

    def preload(self, page_ids, nbytes: int = CACHE_LINE,
                write: bool = False, is_scan: bool = False,
                think_ns: float = 0.0) -> float:
        """Array-native warm-up: charge one uniform run of *page_ids*.

        Exactly :meth:`access_run` on the columnarised ids — cold-pool
        faults resolve through the bulk fault lane instead of the
        per-page scalar chain — provided for benchmark builders, churn
        drivers, and :meth:`ScaleUpEngine.warm_with` callers holding
        plain python id lists. Pool state afterwards (residency,
        stats, device counters, clock, recency order) is byte-identical
        to the scalar access loop over the same ids.
        """
        ids = np.ascontiguousarray(np.asarray(page_ids, dtype=np.int64))
        return self.access_run(ids, nbytes=nbytes, write=write,
                               is_scan=is_scan, think_ns=think_ns)

    def access_run(self, page_ids: np.ndarray, nbytes: int = CACHE_LINE,
                   write: bool = False, is_scan: bool = False,
                   think_ns: float = 0.0, post_ns: float = 0.0,
                   accum: float = 0.0) -> float:
        """Charge one uniform-shape run given as an id ndarray.

        The block lane's single-shape entry point (sessions use it for
        columnar runs); bit-identical to :meth:`access_batch` on the
        same ids. Runs too short for the vector setup, ids outside the
        dense table, or configurations without batch support fall back
        to the batched lane.

        Runs usually arrive as consecutive slices of one block's id
        column. The id-range guard (min/max/table-grow) is therefore
        memoised per *backing array*: once the whole base passes, its
        slices dispatch straight to the span. Blocks are immutable by
        engine contract, so the validated range cannot go stale, and
        the residency table only ever grows (``drop_all`` refills in
        place), so the grown size cannot shrink out from under it.
        """
        n = len(page_ids)
        if n == 0:
            return accum
        if (not self.fast_lane or n < _RUN_MIN
                or self._placement_headroom is None):
            return self.access_batch(page_ids.tolist(), nbytes=nbytes,
                                     write=write, is_scan=is_scan,
                                     think_ns=think_ns, post_ns=post_ns,
                                     accum=accum)
        if think_ns < 0 or post_ns < 0:
            raise BufferPoolError("think_ns and post_ns must be >= 0")
        base = page_ids.base
        if base is None:
            base = page_ids
        if base is self._span_base:
            return self._run_span(page_ids, 0, n, nbytes, write,
                                  is_scan, think_ns, post_ns, accum)
        hi = int(page_ids.max())
        if hi >= _RES_MAX_PIDS or int(page_ids.min()) < 0:
            return self.access_batch(page_ids.tolist(), nbytes=nbytes,
                                     write=write, is_scan=is_scan,
                                     think_ns=think_ns, post_ns=post_ns,
                                     accum=accum)
        if hi >= self._res_tier.shape[0]:
            self._res_grow(hi + 1)
        if base.ndim == 1 and base.dtype == page_ids.dtype:
            bhi = int(base.max())
            if bhi < _RES_MAX_PIDS and int(base.min()) >= 0:
                if bhi >= self._res_tier.shape[0]:
                    self._res_grow(bhi + 1)
                self._span_base = base
        return self._run_span(page_ids, 0, n, nbytes, write, is_scan,
                              think_ns, post_ns, accum)

    def quantum_lane_ready(self) -> bool:
        """Whether :meth:`access_quantum` may be used right now.

        The quantum lane dispatches straight to the vectorised span,
        which needs the fast lane on and a batch-capable placement
        policy; callers falling back use per-run :meth:`access_run` /
        :meth:`access_batch` (bit-identical either way).
        """
        return self.fast_lane and self._placement_headroom is not None

    def access_quantum(self, ids: np.ndarray, segs: list,
                       accum: float = 0.0
                       ) -> tuple[float, list[float]]:
        """Charge one scheduler quantum — consecutive uniform-shape
        segments of a single block's id column — in one call.

        *ids* is the whole column (indexed by segment bounds, never
        sliced) and *segs* holds ``(start, stop, nbytes, write,
        is_scan, think_ns)`` per segment in trace order, as produced
        by ``ShapeSegments.next_span``. Returns ``(accum,
        seg_demands)`` where ``seg_demands[i]`` is the accumulator
        after segment ``i`` — the boundaries the session scheduler's
        per-run samples are built from. Bit-identical to calling
        :meth:`access_run` on each segment's slice in order; the
        amortisation is the point: one id-range validation (memoised
        per column, exactly as in :meth:`access_run`) and no per-run
        slice objects or entry guards.

        Callers must check :meth:`quantum_lane_ready` first.
        """
        seg_demands: list[float] = []
        base = ids.base
        if base is None:
            base = ids
        if base is not self._span_base:
            ok = False
            if base.ndim == 1:
                bhi = int(base.max())
                if bhi < _RES_MAX_PIDS and int(base.min()) >= 0:
                    if bhi >= self._res_tier.shape[0]:
                        self._res_grow(bhi + 1)
                    self._span_base = base
                    ok = True
            if not ok:
                # Ids outside the dense table: the batched lane per
                # segment, exactly what access_run falls back to.
                for a, b, nb, wr, sc, th in segs:
                    accum = self.access_batch(
                        ids[a:b].tolist(), nbytes=nb, write=wr,
                        is_scan=sc, think_ns=th, accum=accum)
                    seg_demands.append(accum)
                return accum, seg_demands
        if segs:
            # All-hit quantum: when every access of the quantum is
            # resident on a timed tier and the whole quantum fits one
            # placement headroom window, per-segment span setup
            # (gather, boundary mask, tier cuts) collapses to a single
            # pass here and the hot core runs scalar per subsegment.
            clock = self._session_clock
            if clock is None:
                clock = self.clock
            q0 = segs[0][0]
            q1 = segs[-1][1]
            if self._placement_headroom() >= q1 - q0:
                qspan = self._res_tier[ids[q0:q1]]
                bad = qspan < 0
                if self._any_tierless:
                    bad |= self._tierless_mask[qspan]
                if not bad.any():
                    return self._quantum_hits(ids, segs, qspan, q0,
                                              clock, accum, seg_demands)
        run_span = self._run_span
        for a, b, nb, wr, sc, th in segs:
            if th < 0:
                raise BufferPoolError("think_ns must be >= 0")
            accum = run_span(ids, a, b, nb, wr, sc, th, 0.0, accum)
            seg_demands.append(accum)
        return accum, seg_demands

    def _quantum_hits(self, ids: np.ndarray, segs: list,
                      qspan: np.ndarray, q0: int, clock,
                      accum: float, seg_demands: list[float]
                      ) -> tuple[float, list[float]]:
        """All-hit quantum core.

        The caller proved, with one residency gather and one headroom
        probe, that every access in the quantum hits a timed tier and
        that no placement trigger can fire mid-quantum (headroom
        covers the whole span, and all-hit processing never evicts, so
        the gathered tiers cannot go stale). Under those guarantees
        this loop is access_run on each shape segment with the window
        machinery hoisted: tier-change cuts are located once across
        the quantum, and each uniform (shape x tier) subsegment folds
        the same first-access wait + deferred chain advance that
        :meth:`_run_span` performs — the identical float sequence.
        Clock and demand writebacks land at each shape-segment
        boundary, exactly where the per-run path writes them.
        """
        stats = self.stats
        frames_get = self._frames.get
        note = self._placement_note
        queues = self._session_queues
        lazy = self._lazy_runs
        per_tier = stats.per_tier
        tiers = self.tiers
        now = clock._now
        pool_demand = stats.demand_time_ns
        rel_cuts = np.nonzero(qspan[1:] != qspan[:-1])[0]
        cut_list = (rel_cuts + (q0 + 1)).tolist()
        cut_list.append(segs[-1][1])
        ci = 0
        for a, b, nbytes, write, is_scan, think_ns in segs:
            if think_ns < 0:
                raise BufferPoolError("think_ns must be >= 0")
            lats = self._shape_latencies(nbytes, write, is_scan)
            pure = think_ns == 0.0
            seg_tiers: list[int] = []
            seg_lasts: list[float] = []
            seg_counts: list[int] = []
            s = a
            while s < b:
                while cut_list[ci] <= s:
                    ci += 1
                e = cut_list[ci]
                if e > b:
                    e = b
                tier_index = int(qspan[s - q0])
                lat = lats[tier_index]
                if think_ns:
                    now += think_ns
                lat_i = lat
                if queues is not None:
                    wait = 0.0
                    bottleneck = None
                    for queue in queues[tier_index]:
                        delay = queue._free_at - now
                        if delay > wait:
                            wait = delay
                            bottleneck = queue
                    if wait > 0.0:
                        self._session_wait_ns += wait
                        bottleneck.note_wait(wait)
                        lat_i = wait + lat
                frame = frames_get(ids[s])
                frame.accesses += 1
                frame.last_access_ns = now
                if write:
                    frame.dirty = True
                now += lat_i
                pool_demand += lat_i
                accum += lat_i
                rem = e - s - 1
                if rem:
                    if lat > 0.0:
                        lazy.append(("run", ids, s, e, tier_index,
                                     now, lat, think_ns, 0.0, write))
                        if pure:
                            now = repeat_add(now, lat, rem)
                        elif rem >= _LADDER_MIN:
                            now, _ = chain_repeat_arr(
                                now, (think_ns, lat), rem, 1)
                        else:
                            for _ in range(rem):
                                now += think_ns
                                now += lat
                        pool_demand = repeat_add(pool_demand, lat, rem)
                        accum = repeat_add(accum, lat, rem)
                        per_tier[tier_index].hits += e - s
                        dstats = tiers[tier_index].path.device.stats
                        if write:
                            dstats.stores += e - s
                            dstats.store_bytes += (e - s) * nbytes
                        else:
                            dstats.loads += e - s
                            dstats.load_bytes += (e - s) * nbytes
                        if queues is not None:
                            seg_tiers.append(tier_index)
                            seg_lasts.append(now - lat)
                            seg_counts.append(e - s)
                        s = e
                        continue
                    for pid in ids[s + 1:e].tolist():
                        if think_ns:
                            now += think_ns
                        f = frames_get(pid)
                        f.accesses += 1
                        f.last_access_ns = now
                        if write:
                            f.dirty = True
                        now += lat
                        pool_demand += lat
                        accum += lat
                self._flush_segment(ids, s, e, tier_index, nbytes,
                                    write, end_ns=now, lat=lat,
                                    occupy=False, lazy=lazy)
                if queues is not None:
                    seg_tiers.append(tier_index)
                    seg_lasts.append(now - lat)
                    seg_counts.append(e - s)
                s = e
            if queues is not None and seg_tiers:
                nsg = len(seg_tiers)
                x = 0
                while x < nsg:
                    y = x + 1
                    T = seg_tiers[x]
                    while y < nsg and seg_tiers[y] == T:
                        y += 1
                    if y - x == 1:
                        for queue in queues[T]:
                            queue.occupy_run(seg_lasts[x], nbytes,
                                             seg_counts[x], write)
                    else:
                        for queue in queues[T]:
                            queue.reserve_run(seg_lasts[x:y], nbytes,
                                              seg_counts[x:y], write)
                    x = y
            stats.accesses += b - a
            stats.demand_time_ns = pool_demand
            clock._now = now
            lazy.append(("trk", ids, a, b, is_scan))
            note(ids, a, b, is_scan)
            seg_demands.append(accum)
        return accum, seg_demands

    def run_probe(self, page_ids: np.ndarray, nbytes: int,
                  write: bool = False,
                  is_scan: bool = False) -> float | None:
        """Constant per-access latency of a uniform run, when provable.

        The concurrent scheduler's escalation check: returns the
        unloaded latency ``lat`` when charging *page_ids* through
        :meth:`access_run` right now is guaranteed to advance the
        demand accumulator by exactly ``lat`` per access — every page
        resident in one timed tier, the whole run inside the current
        placement headroom window (no mid-run trigger), and, in the
        session lane, every consulted wait queue already free (a
        session's own reservations can never outrun its own cursor,
        so zero waits fold for the entire run). Returns ``None`` when
        any guarantee fails; probing mutates nothing.
        """
        if not self.fast_lane or self._placement_headroom is None:
            return None
        n = page_ids.shape[0]
        if n == 0 or self._placement_headroom() < n:
            return None
        # Scalar pre-checks first — under contention the busy-queue
        # rejection below fires on nearly every probe, so the O(n)
        # residency gather only runs once those have passed.
        res = self._res_tier
        first = int(page_ids[0])
        if first < 0 or first >= res.shape[0]:
            return None
        tier = int(res[first])
        if tier < 0:
            return None
        if self._any_tierless and bool(self._tierless_mask[tier]):
            return None
        lat = self._shape_latencies(nbytes, write, is_scan)[tier]
        if lat is None or lat <= 0.0 or not math.isfinite(lat):
            return None
        queues = self._session_queues
        if queues is not None:
            now = self._session_clock._now
            for queue in queues[tier]:
                if queue._free_at > now:
                    return None
        hi = int(page_ids.max())
        if hi >= _RES_MAX_PIDS or hi >= res.shape[0] \
                or int(page_ids.min()) < 0:
            return None
        span = res[page_ids]
        if not bool((span == tier).all()):
            return None
        return lat

    def access_block(self, block, accum: float = 0.0) -> float:
        """Charge a whole columnar AccessBlock; the block lane.

        Bit-identical to replaying the block's accesses through the
        scalar loop (think advance, :meth:`access`, demand into
        *accum*). Long uniform-shape segments go through
        :meth:`_run_span`; short segments take a lean per-access walk
        whose per-tier bookkeeping (replacement recency, hit counters,
        device traffic, temperature, placement notes) is deferred to
        window boundaries — and always flushed before any access
        routes scalar, so eviction and rebalance decisions see exactly
        the scalar-order state.
        """
        ids_nd = block.page_id
        n = len(ids_nd)
        if n == 0:
            return accum
        sizes_nd = block.nbytes
        writes_nd = block.write
        scans_nd = block.is_scan
        thinks_nd = block.think_ns
        bounds = block.segment_bounds()
        clock = self._session_clock
        if clock is None:
            clock = self.clock
        if not self.fast_lane:
            advance = clock.advance
            compat = self._access_compat
            ids_l = ids_nd.tolist()
            sizes_l = sizes_nd.tolist()
            writes_l = writes_nd.tolist()
            scans_l = scans_nd.tolist()
            thinks_l = thinks_nd.tolist()
            for j in range(n):
                t = thinks_l[j]
                if t:
                    advance(t)
                accum += compat(ids_l[j], sizes_l[j], writes_l[j],
                                scans_l[j])
            return accum
        hi = int(ids_nd.max())
        if self._session_queues is not None:
            # Contended session lane: one access_run per uniform-shape
            # segment. The vectorised span lane folds queue waits per
            # tier segment and reserves occupancy per window, so
            # contended blocks no longer drop to the per-access walk
            # (short segments still fall back to the batched lane
            # inside access_run, bit-identically).
            a = 0
            for b in bounds[1:]:
                accum = self.access_run(
                    ids_nd[a:b], nbytes=int(sizes_nd[a]),
                    write=bool(writes_nd[a]), is_scan=bool(scans_nd[a]),
                    think_ns=float(thinks_nd[a]), accum=accum,
                )
                a = b
            return accum
        if (self._placement_headroom is None
                or hi >= _RES_MAX_PIDS or int(ids_nd.min()) < 0):
            # Segment lane: one access_batch per uniform-shape segment,
            # exactly the pre-block-lane decomposition.
            a = 0
            for b in bounds[1:]:
                accum = self.access_batch(
                    ids_nd[a:b].tolist(), nbytes=int(sizes_nd[a]),
                    write=bool(writes_nd[a]), is_scan=bool(scans_nd[a]),
                    think_ns=float(thinks_nd[a]), accum=accum,
                )
                a = b
            return accum
        if hi >= self._res_tier.shape[0]:
            self._res_grow(hi + 1)
        if (getattr(self.tracker, "record_block", None) is not None
                and getattr(self._placement_note, "content_blind",
                            False)):
            result = self._block_exact(block, ids_nd, sizes_nd,
                                       writes_nd, scans_nd, thinks_nd,
                                       clock, accum)
            if result is not None:
                return result
        return self._block_walk(block, bounds, ids_nd, sizes_nd,
                                writes_nd, scans_nd, thinks_nd, clock,
                                0, accum)

    def _block_exact(self, block, ids_nd, sizes_nd, writes_nd,
                     scans_nd, thinks_nd, clock, accum):
        """Array-resolved block lane; returns None when ineligible.

        A whole placement-headroom window of hits resolves in a
        handful of array ops — one residency gather, one latency
        gather, and exact addition-chain cumsums
        (:func:`~repro.sim.ladder.chain_values`) that reproduce every
        intermediate clock/demand value bit-for-bit — plus a single
        python pass to stamp frame metadata and replay per-tier
        replacement recency in access order.  Faults, table-less
        tiers, and placement triggers resolve scalar between windows
        exactly as the lean walk does; anything the chain primitive
        cannot model exactly (ties, negative or non-finite values)
        delegates the remaining accesses to :meth:`_block_walk`.
        """
        n = ids_nd.shape[0]
        tiers = self.tiers
        ntiers = len(tiers)
        # Distinct access shapes and their per-tier latency rows
        # (np.nan marks table-less tiers: those accesses go scalar).
        pk = sizes_nd * 4 + writes_nd * 2 + scans_nd
        if n > 1:
            chg = np.nonzero(pk[1:] != pk[:-1])[0]
            seg_starts = np.empty(chg.shape[0] + 1, dtype=np.int64)
            seg_starts[0] = 0
            seg_starts[1:] = chg + 1
        else:
            seg_starts = np.zeros(1, dtype=np.int64)
        upk, inv = np.unique(pk[seg_starts], return_inverse=True)
        rows = []
        for key in upk.tolist():
            lats = self._shape_latencies(int(key >> 2), bool(key & 2),
                                         bool(key & 1))
            rows.append([np.nan if v is None else v for v in lats])
        lat_tab = np.array(rows, dtype=np.float64)
        finite = np.isfinite(lat_tab)
        fin_vals = lat_tab[finite]
        if fin_vals.shape[0] and float(fin_vals.min()) < 0.0:
            return None
        has_nan = not bool(finite.all())
        if n * float(sizes_nd.max()) >= _EXACT_LIMIT:
            return None
        seg_lens = np.diff(np.append(seg_starts, n))
        rowmap = np.repeat(inv.astype(np.int64), seg_lens) * ntiers
        # Delta classes for the addition chains: think values first,
        # then the flattened (shape, tier) latency table.
        if bool((thinks_nd == thinks_nd[0]).all()):
            tvals = np.array([float(thinks_nd[0])])
            tinv = np.zeros(n, dtype=np.int64)
        else:
            tvals, tinv = np.unique(thinks_nd, return_inverse=True)
        if float(tvals.min()) < 0.0 or not np.isfinite(tvals).all():
            return None
        nt_t = tvals.shape[0]
        vcls = np.concatenate((tvals, lat_tab.ravel()))

        stats = self.stats
        frames = self._frames
        headroom_fn = self._placement_headroom
        note = self._placement_note
        tracker_block = self.tracker.record_block
        lat_flat = lat_tab.ravel()
        j = 0
        while j < n:
            now = clock._now
            pool_demand = stats.demand_time_ns
            room = headroom_fn()
            if room <= 0:
                # Placement trigger: scalar route, then re-open.
                t = float(thinks_nd[j])
                if t:
                    clock.advance(t)
                accum += self.access(int(ids_nd[j]),
                                     nbytes=int(sizes_nd[j]),
                                     write=bool(writes_nd[j]),
                                     is_scan=bool(scans_nd[j]))
                j += 1
                continue
            wend = j + room
            if wend > n:
                wend = n
            sp = self._res_tier[ids_nd[j:wend]]
            lat = lat_flat[rowmap[j:wend] + np.maximum(sp, 0)]
            bad = sp < 0
            if has_nan:
                bad |= np.isnan(lat)
            if bad.any():
                k = int(bad.argmax())
            else:
                k = sp.shape[0]
            if k == 0:
                # Fault or table-less tier at the window head: try the
                # bulk fault lane on a true miss — the run is cut at
                # the current uniform-shape segment's end and the first
                # think-class change, the two axes _fault_span holds
                # constant — then fall back to scalar.
                if int(sp[0]) < 0:
                    si = int(np.searchsorted(seg_starts, j, side="right"))
                    fend = (int(seg_starts[si])
                            if si < seg_starts.shape[0] else n)
                    if nt_t > 1:
                        tv = tinv[j:fend]
                        dfi = np.nonzero(tv != tv[0])[0]
                        if dfi.size:
                            fend = j + int(dfi[0])
                    done = self._fault_span(
                        ids_nd, j, fend, int(sizes_nd[j]),
                        bool(writes_nd[j]), bool(scans_nd[j]),
                        float(tvals[int(tinv[j])]), 0.0, accum)
                    if done is not None:
                        j += done[0]
                        accum = done[1]
                        continue
                t = float(thinks_nd[j])
                if t:
                    clock.advance(t)
                accum += self.access(int(ids_nd[j]),
                                     nbytes=int(sizes_nd[j]),
                                     write=bool(writes_nd[j]),
                                     is_scan=bool(scans_nd[j]))
                j += 1
                continue
            # The hit prefix [j, j+k): replay the clock's and the two
            # demand accumulators' addition chains exactly.  The clock
            # chain interleaves think and latency adds; its even
            # positions are the post-think timestamps the frames see.
            jk = j + k
            ids_k = ids_nd[j:jk]
            sp_k = sp[:k]
            lat_cls = nt_t + rowmap[j:jk] + sp_k
            cls2 = np.empty(2 * k, dtype=np.int64)
            cls2[0::2] = tinv[j:jk]
            cls2[1::2] = lat_cls
            out2 = np.empty(2 * k)
            clock._now = chain_values(now, vcls, cls2, out2)
            outd = np.empty(k)
            stats.demand_time_ns = chain_values(pool_demand, vcls,
                                                lat_cls, outd)
            accum = chain_values(accum, vcls, lat_cls, outd)
            last_ts = out2[0::2]
            stats.accesses += k
            tracker_block(ids_nd, scans_nd, j, jk)
            note(ids_nd, j, jk, False)
            wr_k = writes_nd[j:jk]
            has_w = bool(wr_k.any())
            nb_k = sizes_nd[j:jk]
            cnt = np.bincount(sp_k, minlength=ntiers)
            if has_w:
                rd = ~wr_k
                l_cnt = np.bincount(sp_k[rd], minlength=ntiers)
                l_byt = np.bincount(sp_k[rd], weights=nb_k[rd],
                                    minlength=ntiers)
                s_byt = np.bincount(sp_k[wr_k], weights=nb_k[wr_k],
                                    minlength=ntiers)
            else:
                l_cnt = cnt
                l_byt = np.bincount(sp_k, weights=nb_k,
                                    minlength=ntiers)
            # Duplicate collapse: per-pid frame stats reduce to a count
            # and the final timestamp, and an LRU recency order after a
            # batch equals the order of each pid's *last* occurrence —
            # so dup-heavy (zipfian) windows fold per unique pid
            # instead of per access. The pigeonhole precheck keeps
            # dup-free scans off the sort.
            dedup = None
            pl = None
            if k >= 512:
                lo = int(ids_k.min())
                span = int(ids_k.max()) - lo + 1
                if span <= k:
                    rel = ids_k - lo
                    bc = np.bincount(rel, minlength=span)
                    nz = np.nonzero(bc)[0]
                    if nz.shape[0] * 5 <= 4 * k:
                        # Last-occurrence positions without a sort:
                        # np.put keeps the final value on duplicate
                        # indices, and the span gate above makes a
                        # span-sized scatter cheaper than np.unique.
                        pos = np.empty(span, dtype=np.int64)
                        np.put(pos, rel, np.arange(k))
                        dedup = (nz + lo, pos[nz], bc[nz])
            if dedup is None:
                pl = ids_k.tolist()
            uq_ord = uq_tier = None
            for T in np.nonzero(cnt)[0].tolist():
                c_t = int(cnt[T])
                tier = tiers[T]
                stats.per_tier[T].hits += c_t
                device_stats = tier.path.device.stats
                lc = int(l_cnt[T])
                if lc:
                    device_stats.loads += lc
                    device_stats.load_bytes += int(l_byt[T])
                if c_t - lc:
                    device_stats.stores += c_t - lc
                    device_stats.store_bytes += int(s_byt[T])
                policy = tier.policy
                batch = getattr(policy, "record_access_batch", None)
                if dedup is not None and type(policy) is LRUPolicy:
                    if uq_ord is None:
                        order = np.argsort(dedup[1])
                        uq_ord = dedup[0][order]
                        uq_tier = self._res_tier[uq_ord]
                    lst = (uq_ord if c_t == k
                           else uq_ord[uq_tier == T]).tolist()
                    batch(lst, 0, len(lst))
                    continue
                if pl is None:
                    pl = ids_k.tolist()
                lst = pl if c_t == k else ids_k[sp_k == T].tolist()
                if batch is not None:
                    batch(lst, 0, len(lst))
                else:
                    record = policy.record_access
                    for pid in lst:
                        record(pid)
            if dedup is not None:
                uq, lpos, ucnt = dedup
                self._pend_acc[uq] += ucnt
                self._pend_ts[uq] = last_ts[lpos]
                if has_w:
                    self._latch_dirty(ids_k[wr_k])
            elif k == 1 or bool((ids_k[1:] > ids_k[:-1]).all()):
                # Strictly increasing ⇒ duplicate-free, so the pending
                # arrays take plain fancy updates (the scan shape).
                self._pend_acc[ids_k] += 1
                self._pend_ts[ids_k] = last_ts
                if has_w:
                    self._latch_dirty(ids_k[wr_k])
            else:
                tl = last_ts.tolist()
                pl2 = ids_k.tolist() if pl is None else pl
                if has_w:
                    for frame, ts, w in zip(
                            map(frames.__getitem__, pl2), tl,
                            wr_k.tolist()):
                        frame.accesses += 1
                        frame.last_access_ns = ts
                        if w:
                            frame.dirty = True
                else:
                    for frame, ts in zip(
                            map(frames.__getitem__, pl2), tl):
                        frame.accesses += 1
                        frame.last_access_ns = ts
            j = jk
        return accum

    def _block_walk(self, block, bounds, ids_nd, sizes_nd, writes_nd,
                    scans_nd, thinks_nd, clock, start: int,
                    accum: float) -> float:
        """Ladder-based block walk: the general fast lane.

        Handles arbitrary (fractional) latencies via chain ladders and
        content-sensitive placement notes via per-portion spans; the
        integer-exact lane (:meth:`_block_exact`) delegates here from
        *start* when its preconditions fail mid-block.  Long
        uniform-shape segments go through :meth:`_run_span`; short
        segments take a lean per-access walk with deferred per-tier
        bookkeeping, always flushed before any access routes scalar.
        """
        n = len(ids_nd)
        stats = self.stats
        frames_get = self._frames.get
        headroom_fn = self._placement_headroom
        note = self._placement_note
        note_blind = getattr(note, "content_blind", False)
        tracker_batch = self._tracker_batch
        tracker_record = self.tracker.record
        tracker_block = getattr(self.tracker, "record_block", None)
        ntiers = len(self.tiers)
        nsegs = len(bounds) - 1
        # Shape columns: bulk-convert when segments are short (the
        # per-element cost amortises), index per segment when long.
        use_lists = 4 * nsegs > n
        if use_lists:
            sizes_l = sizes_nd.tolist()
            writes_l = writes_nd.tolist()
            scans_l = scans_nd.tolist()
            thinks_l = thinks_nd.tolist()
        ids_l: list | None = None

        # Lean-window state (see docstring): local clock/demand
        # mirrors plus deferred per-tier bookkeeping.
        win_room = 0
        win_count = 0
        win_tracker_start = 0
        now = 0.0
        pool_demand = 0.0
        note_spans: list[tuple[int, int, bool]] = []
        by_tier: list[list] = [[] for _ in range(ntiers)]
        tier_loads = [0] * ntiers
        tier_stores = [0] * ntiers
        tier_load_bytes = [0] * ntiers
        tier_store_bytes = [0] * ntiers

        def flush_lean() -> None:
            """Write the open lean window back: stats/clock first, then
            the deferred per-tier and temperature/placement records, in
            scalar-equivalent order."""
            nonlocal win_room, win_count
            win_room = 0
            if not win_count:
                return
            stats.accesses += win_count
            stats.demand_time_ns = pool_demand
            clock._now = now
            win_end = win_tracker_start + win_count
            if tracker_block is not None:
                tracker_block(ids_nd, scans_nd, win_tracker_start,
                              win_end)
            else:
                for k in range(win_tracker_start, win_end):
                    tracker_record(int(ids_nd[k]),
                                   is_scan=bool(scans_nd[k]))
            if note_blind:
                note(ids_nd, win_tracker_start, win_end, False)
            else:
                for s0, s1, sflag in note_spans:
                    note(ids_nd, s0, s1, sflag)
            note_spans.clear()
            for T in range(ntiers):
                lst = by_tier[T]
                if not lst:
                    continue
                tier = self.tiers[T]
                policy = tier.policy
                batch = getattr(policy, "record_access_batch", None)
                if batch is not None:
                    batch(lst, 0, len(lst))
                else:
                    record = policy.record_access
                    for pid in lst:
                        record(pid)
                stats.per_tier[T].hits += len(lst)
                device_stats = tier.path.device.stats
                if tier_loads[T]:
                    device_stats.loads += tier_loads[T]
                    device_stats.load_bytes += tier_load_bytes[T]
                    tier_loads[T] = 0
                    tier_load_bytes[T] = 0
                if tier_stores[T]:
                    device_stats.stores += tier_stores[T]
                    device_stats.store_bytes += tier_store_bytes[T]
                    tier_stores[T] = 0
                    tier_store_bytes[T] = 0
                lst.clear()
            win_count = 0

        a = 0
        for b in bounds[1:]:
            if b <= start:
                a = b
                continue
            a0 = a if a >= start else start
            if use_lists:
                nb = sizes_l[a]
                w = writes_l[a]
                sc = scans_l[a]
                t = thinks_l[a]
            else:
                nb = int(sizes_nd[a])
                w = bool(writes_nd[a])
                sc = bool(scans_nd[a])
                t = float(thinks_nd[a])
            if b - a0 >= VEC_SEG:
                flush_lean()
                accum = self._run_span(ids_nd, a0, b, nb, w, sc, t, 0.0,
                                       accum)
                a = b
                continue
            lats = self._shape_latencies(nb, w, sc)
            if ids_l is None:
                ids_l = ids_nd.tolist()
            j = a0
            p_start = a0
            while j < b:
                if win_room <= 0:
                    if win_count:
                        if p_start < j:
                            note_spans.append((p_start, j, sc))
                        flush_lean()
                    room = headroom_fn()
                    if room <= 0:
                        # Placement trigger: scalar route.
                        pid = ids_l[j]
                        if t:
                            clock.advance(t)
                        accum += self.access(pid, nbytes=nb, write=w,
                                             is_scan=sc)
                        j += 1
                        p_start = j
                        continue
                    win_room = room
                    win_tracker_start = j
                    now = clock._now
                    pool_demand = stats.demand_time_ns
                    p_start = j
                pid = ids_l[j]
                frame = frames_get(pid)
                if frame is not None:
                    T = frame.tier_index
                    lat = lats[T]
                else:
                    lat = None
                if lat is None:
                    # Fault or table-less tier: flush every deferred
                    # effect, then resolve scalar so evictions and
                    # migrations see exactly the scalar-order state.
                    # The window must close even when it is still empty
                    # — its clock/demand mirrors predate the scalar
                    # access and would go stale otherwise.
                    if win_count:
                        if p_start < j:
                            note_spans.append((p_start, j, sc))
                        flush_lean()
                    else:
                        win_room = 0
                    if frame is None:
                        # A true miss: hand the rest of the segment to
                        # the bulk fault lane (it consumes the leading
                        # miss run or declines).
                        done = self._fault_span(ids_nd, j, b, nb, w,
                                                sc, t, 0.0, accum)
                        if done is not None:
                            j += done[0]
                            accum = done[1]
                            p_start = j
                            continue
                    if t:
                        clock.advance(t)
                    accum += self.access(pid, nbytes=nb, write=w,
                                         is_scan=sc)
                    j += 1
                    p_start = j
                    continue
                if t:
                    now += t
                frame.accesses += 1
                frame.last_access_ns = now
                if w:
                    frame.dirty = True
                    tier_stores[T] += 1
                    tier_store_bytes[T] += nb
                else:
                    tier_loads[T] += 1
                    tier_load_bytes[T] += nb
                by_tier[T].append(pid)
                now += lat
                pool_demand += lat
                accum += lat
                win_room -= 1
                win_count += 1
                j += 1
            if win_count and p_start < j:
                note_spans.append((p_start, j, sc))
            a = b
        flush_lean()
        return accum

    def _register_hit(self, page_id: PageId, tier_index: int) -> None:
        """Shared hit bookkeeping for the scalar access paths."""
        self.tiers[tier_index].policy.record_access(page_id)
        self.stats.per_tier[tier_index].hits += 1

    def access_at(self, page_id: PageId, now_ns: float,
                  nbytes: int = CACHE_LINE, write: bool = False,
                  is_scan: bool = False) -> float:
        """Contended access for multi-threaded execution.

        Unlike :meth:`access`, the caller owns time: *now_ns* is the
        issuing thread's clock and the return value is the absolute
        completion time. Transfers are charged to the shared device
        and link channels, so concurrent threads contend for
        bandwidth — this is how scan threads can starve point-lookup
        threads on the same expander. Placement runs admission only
        (no migration side effects), keeping multi-thread runs
        deterministic.
        """
        self.stats.accesses += 1
        self.tracker.record(page_id, is_scan=is_scan)
        frame = self._frames.get(page_id)
        if frame is None:
            self.stats.misses += 1
            page, completion = self._fault_at(page_id, now_ns,
                                              is_scan=is_scan)
            frame = self._frames[page_id]
            trace = self._trace
            if trace.enabled:
                trace.emit_span("pool.fault", "pool", now_ns, completion,
                                {"page": page_id})
        else:
            tier = self.tiers[frame.tier_index]
            if write:
                completion = tier.path.write_completion(nbytes, now_ns)
            else:
                completion = tier.path.read_completion(nbytes, now_ns)
            self._register_hit(page_id, frame.tier_index)
        frame.touch(now_ns, write=write)
        self.stats.demand_time_ns += completion - now_ns
        return completion

    def _fault_at(self, page_id: PageId, now_ns: float,
                  is_scan: bool) -> tuple[Page, float]:
        """Contended fault path; returns (page, completion time)."""
        if self.backing is not None:
            self.backing.ensure(page_id)
            page = self.backing.peek(page_id)
            t = self.backing.device.read_completion(self.page_size,
                                                    now_ns)
        else:
            page = self._anonymous(page_id)
            t = now_ns
        tier_index = self.placement.choose_admit_tier(page_id,
                                                      is_scan=is_scan)
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(
                f"placement chose invalid tier {tier_index}"
            )
        # Evictions on the contended path reuse the analytic costs.
        make_room = self._make_room(tier_index)
        tier = self.tiers[tier_index]
        completion = tier.path.write_completion(self.page_size,
                                                t + make_room)
        # The contended path never tracked resident_peak (it belongs
        # to the analytic lane's reports); keep that behaviour.
        self._install(page, tier_index, update_peak=False)
        self.stats.fault_time_ns += completion - now_ns
        return page, completion

    def get_page(self, page_id: PageId) -> Page:
        """The resident Page object (faults it in at zero charge if
        needed — use :meth:`access` for timed paths)."""
        if self._lazy_runs:
            self._drain_lazy()
        frame = self._frames.get(page_id)
        if frame is None:
            self._fault(page_id)
            frame = self._frames[page_id]
        return frame.page

    # -- fault path ----------------------------------------------------------------

    @staticmethod
    def _policy_insert_batch(policy, keys: list) -> None:
        """Insert a run of new keys into a replacement policy (batch
        API when available, scalar loop otherwise) — equivalent to a
        :meth:`record_insert` loop in key order."""
        batch = getattr(policy, "record_insert_batch", None)
        if batch is not None:
            batch(keys)
        else:
            insert = policy.record_insert
            for key in keys:
                insert(key)

    def _fault_list(self, seq, i: int, n: int, nbytes: int, write: bool,
                    is_scan: bool, think_ns: float, post_ns: float,
                    accum: float) -> tuple[int, float] | None:
        """Bulk-resolve a miss run arriving as a python sequence (the
        batched lane's boundary path): columnarise a bounded window,
        validate the id range, and hand it to :meth:`_fault_span`."""
        end = i + 4096
        if end > n:
            end = n
        if end - i < _FAULT_MIN:
            return None
        arr = np.asarray(seq[i:end], dtype=np.int64)
        if int(arr.min()) < 0 or int(arr.max()) >= _RES_MAX_PIDS:
            return None
        hi = int(arr.max())
        if hi >= self._res_tier.shape[0]:
            self._res_grow(hi + 1)
        return self._fault_span(arr, 0, arr.shape[0], nbytes, write,
                                is_scan, think_ns, post_ns, accum)

    def _fault_span(self, ids: np.ndarray, start: int, stop: int,
                    nbytes: int, write: bool, is_scan: bool,
                    think_ns: float, post_ns: float,
                    accum: float) -> tuple[int, float] | None:
        """Resolve a run of consecutive misses in array ops.

        Returns ``(consumed, accum)`` after charging ``consumed``
        faults bit-identically to the scalar loop (think advance,
        :meth:`access` on a miss, post advance), or ``None`` when the
        run is ineligible and the caller must fall back to the scalar
        fault path. The caller guarantees every id in
        ``ids[start:stop]`` indexes inside the dense residency table.

        The run is cut to the placement headroom window, the leading
        all-miss prefix, and the first repeated id (its second
        occurrence is a hit once installed). Admit tiers for the whole
        run come back from one
        :meth:`PlacementPolicy.choose_admit_tiers` call, and the run
        decomposes into *phases*: a fill phase while the admit tier has
        free frames, then eviction phases whose demotion cascade is
        structurally constant until the terminal destination fills.
        Within a phase every per-fault latency is one of at most two
        constants (clean/dirty terminal victim), so the four scalar
        float accumulators (clock, fault time, demand, the caller's
        accumulator) replay exactly through
        :func:`~repro.sim.ladder.chain_values`, and victim selection
        drains through :meth:`ReplacementPolicy.victim_batch` — exact
        because LRU victims are the first *k* keys of the initial
        recency order whenever a chunk is no longer than each source
        tier's population, and demoted/installed pages land at the MRU
        end where a chunk that size can never reach them.

        Bail-outs, each checked *before* any state change so a partial
        run is always a clean prefix: session lane, tracing, pins,
        no/unhealthy backing, placement without a bulk answer, a
        non-LRU policy on a cascade tier, cyclic demotion chains, and
        dirty victims missing from the backing file (the anonymous
        writeback path).
        """
        if (self._session_clock is not None
                or self._session_queues is not None
                or self._trace.enabled
                or self._pinned_frames):
            return None
        backing = self.backing
        if backing is None or not backing.device.healthy:
            return None
        choose = getattr(self.placement, "choose_admit_tiers", None)
        headroom_fn = self._placement_headroom
        if choose is None or headroom_fn is None:
            return None
        room = headroom_fn()
        if room <= 0:
            return None
        end = start + room
        if end > stop:
            end = stop
        if end - start < _FAULT_MIN:
            return None
        res = self._res_tier
        seg = ids[start:end]
        miss = res[seg] < 0
        mlen = seg.shape[0] if miss.all() else int(miss.argmin())
        if mlen < _FAULT_MIN:
            return None
        run = seg[:mlen]
        # Cut at the first page id that repeats inside the run: its
        # second occurrence is a hit once the first installs.
        order = np.argsort(run, kind="stable")
        sv = run[order]
        dup = sv[1:] == sv[:-1]
        if dup.any():
            mlen = int(order[1:][dup].min())
            if mlen < _FAULT_MIN:
                return None
            run = run[:mlen]
        if self._lazy_runs:
            self._drain_lazy()
        adm = choose(run, is_scan)
        if adm is None:
            return None
        adm = np.asarray(adm, dtype=np.int64)
        ntier = len(self.tiers)
        if (adm.shape[0] != mlen or int(adm.min()) < 0
                or int(adm.max()) >= ntier):
            return None
        tiers = self.tiers
        counts = self._resident_counts
        frames = self._frames
        stats = self.stats
        per_tier = stats.per_tier
        page_size = self.page_size
        demote_target = self.placement.demote_target
        device = backing.device
        bsize = backing.page_size
        bmemo = self._back_rd
        io = bmemo[1] if (bmemo is not None and bmemo[0] is device) \
            else None
        # Admit-tier segment boundaries, precomputed so the phase loop
        # never rescans the tail.
        achg = np.nonzero(adm[1:] != adm[:-1])[0]
        aseg = np.empty(achg.shape[0] + 2, dtype=np.int64)
        aseg[0] = 0
        aseg[1:-1] = achg + 1
        aseg[-1] = mlen
        ai = 0
        pos = 0
        clock = self.clock
        # The clock interleaves [think,] L [, post] per fault; the
        # other three accumulators only ever add L. Chunk chains feed
        # each other sequentially, so per-chunk chain_values calls
        # reproduce the one long scalar addition sequence exactly.
        pieces = 1 + (1 if think_ns else 0) + (1 if post_ns else 0)
        while pos < mlen:
            while aseg[ai + 1] <= pos:
                ai += 1
            sub = int(aseg[ai + 1]) - pos
            A = int(adm[pos])
            tier_a = tiers[A]
            cap_a = tier_a.capacity_pages
            free_a = cap_a - counts[A]
            chain: list[int] | None = None
            term_dst = -1
            if free_a > 0:
                m = sub if sub < free_a else free_a
            else:
                # Walk the demotion cascade from A; it is structurally
                # constant for the chunk (every chain tier is full and
                # stays full — each loses m victims, gains m pages).
                chain = [A]
                src = A
                ok = True
                while True:
                    d = demote_target(src)
                    if d is None or d == src:
                        break                    # storage-terminal
                    if not 0 <= d < ntier:
                        ok = False
                        break
                    if counts[d] < tiers[d].capacity_pages:
                        term_dst = d             # tier-terminal
                        break
                    if d in chain:
                        ok = False               # cyclic: scalar's job
                        break
                    chain.append(d)
                    src = d
                if ok:
                    for t in chain:
                        if type(tiers[t].policy) is not LRUPolicy:
                            ok = False
                            break
                if not ok:
                    break
                m = sub
                if term_dst >= 0:
                    free_d = (tiers[term_dst].capacity_pages
                              - counts[term_dst])
                    if m > free_d:
                        m = free_d
                # Order-equivalence bound: a chunk may not outrun any
                # source tier's current population (victims must all
                # come from the initial recency order).
                chunk = min(counts[t] for t in chain)
                if m > chunk:
                    m = chunk
                if m <= 0:
                    break
                term = chain[-1]
                if term_dst < 0:
                    # Validate the storage-terminal victims before any
                    # mutation: a dirty victim outside the backing file
                    # takes the anonymous-writeback path, which the
                    # bulk lane does not model.
                    planned = tiers[term].policy.peek_batch(m)
                    if len(planned) < m:
                        break
                    dirty_flags = [frames[v].dirty for v in planned]
                    if any(dirty_flags):
                        contains = backing.contains
                        if any(df and not contains(v) for v, df
                               in zip(planned, dirty_flags)):
                            break
            sub_run = run[pos:pos + m]
            # Backing-read + install-write charges for the chunk: the
            # memo protocol of the scalar path — one real stat-bumping
            # call seeds the constant, replays bump device stats.
            dstats = device.stats
            if io is None:
                io = device.read_time(bsize)
                self._back_rd = (device, io, bsize)
                dstats.reads += m - 1
                dstats.read_bytes += (m - 1) * bsize
            else:
                dstats.reads += m
                dstats.read_bytes += m * bsize
            inst = self._inst_wr.get(A)
            if inst is None:
                inst = tier_a.path.write_time(page_size)
                self._inst_wr[A] = inst
                rep = m - 1
            else:
                rep = m
            if rep:
                istats = tier_a.path.device.stats
                istats.stores += rep
                istats.store_bytes += rep * page_size
            df_arr = None
            if chain is None:
                # Fill phase: L = (io + 0.0) + inst, one class.
                l_clean = (io + 0.0) + inst
                l_dirty = l_clean
            else:
                # Eviction cascade: replay the per-edge migration
                # charges (memo-seeded), drain victims per source
                # tier, then compose the make-room constant by
                # unwinding the chain from its terminal.
                edges = list(zip(chain, chain[1:]))
                if term_dst >= 0:
                    edges.append((chain[-1], term_dst))
                rw_vals = []
                for s_t, d_t in edges:
                    rw = self._mig_rw.get((s_t, d_t))
                    if rw is None:
                        rw = (tiers[s_t].path.read_time(page_size),
                              tiers[d_t].path.write_time(page_size))
                        self._mig_rw[(s_t, d_t)] = rw
                        erep = m - 1
                    else:
                        erep = m
                    if erep:
                        s_stats = tiers[s_t].path.device.stats
                        s_stats.loads += erep
                        s_stats.load_bytes += erep * page_size
                        d_stats = tiers[d_t].path.device.stats
                        d_stats.stores += erep
                        d_stats.store_bytes += erep * page_size
                    rw_vals.append(rw)
                if term_dst < 0:
                    evt = self._evt_rd.get(term)
                    if evt is None:
                        evt = tiers[term].path.read_time(page_size)
                        self._evt_rd[term] = evt
                        erep = m - 1
                    else:
                        erep = m
                    if erep:
                        t_stats = tiers[term].path.device.stats
                        t_stats.loads += erep
                        t_stats.load_bytes += erep * page_size
                # Victim selection: first-m keys per tier, removed.
                vlists = [tiers[t].policy.victim_batch(m)
                          for t in chain]
                # Demote each non-terminal tier's victims one edge
                # down (frames keep dirty flags; inserts land in exact
                # scalar order at the MRU end).
                slot_map = self._ord_slot
                ord_tier = self._ord_tier
                ndemote = len(edges)
                for ei in range(ndemote):
                    d_t = edges[ei][1]
                    vs = vlists[ei] if ei < len(vlists) else vlists[-1]
                    self._policy_insert_batch(tiers[d_t].policy, vs)
                    for v in vs:
                        frames[v].tier_index = d_t
                        slot = slot_map.get(v)
                        if slot is not None:
                            ord_tier[slot] = d_t
                    va = np.asarray(vs, dtype=np.int64)
                    inb = va[(va >= 0) & (va < res.shape[0])]
                    res[inb] = d_t
                    stats.migrations += m
                    per_tier[d_t].demotions_in += m
                wb = None
                if term_dst < 0:
                    # Storage-terminal: the deepest tier's victims
                    # leave the pool (real write_page per dirty one).
                    vterm = vlists[-1]
                    per_tier[term].evictions += m
                    pend = self._pend_acc
                    psize = pend.shape[0]
                    ord_valid = self._ord_valid
                    slot_pop = slot_map.pop
                    write_page = backing.write_page
                    ndirty = 0
                    for v, df in zip(vterm, dirty_flags):
                        fr = frames.pop(v)
                        slot = slot_pop(v, None)
                        if slot is not None:
                            ord_valid[slot] = False
                        if v < psize:
                            pend[v] = 0
                        if df:
                            ndirty += 1
                            wb = write_page(fr.page)
                    if ndirty:
                        stats.writebacks += ndirty
                    va = np.asarray(vterm, dtype=np.int64)
                    inb = va[(va >= 0) & (va < res.shape[0])]
                    res[inb] = -1
                else:
                    counts[term_dst] += m
                # Every chain tier nets to zero residents (m victims
                # out, m demotions/installs in); only the terminal
                # destination grows. Peak high-water marks follow the
                # post-install counts exactly as the scalar updates do.
                for _s_t, d_t in edges:
                    pt = per_tier[d_t]
                    if counts[d_t] > pt.resident_peak:
                        pt.resident_peak = counts[d_t]
                # Compose E by unwinding from the chain terminal, then
                # M = 0.0 + E (the _make_room accumulator), exactly as
                # the scalar recursion associates.
                if term_dst < 0:
                    e_clean = evt
                    inner = rw_vals
                else:
                    rd_l, wr_l = rw_vals[-1]
                    e_clean = (0.0 + rd_l) + wr_l
                    inner = rw_vals[:-1]
                for rd_l, wr_l in reversed(inner):
                    e_clean = ((0.0 + e_clean) + rd_l) + wr_l
                l_clean = (io + (0.0 + e_clean)) + inst
                if term_dst < 0 and wb is not None:
                    e_dirty = evt + wb
                    for rd_l, wr_l in reversed(inner):
                        e_dirty = ((0.0 + e_dirty) + rd_l) + wr_l
                    l_dirty = (io + (0.0 + e_dirty)) + inst
                    df_arr = np.asarray(dirty_flags)
                    if df_arr.all():
                        l_clean = l_dirty
                        df_arr = None
                else:
                    l_dirty = l_clean
            # Charge the chunk: the clock's interleaved chain plus the
            # three L-only accumulator chains, all exact replays.
            vals_c = np.array([think_ns, post_ns, l_clean, l_dirty])
            if df_arr is None:
                lcls = np.full(m, 2, dtype=np.int64)
            else:
                lcls = np.where(df_arr, 3, 2)
            now0 = clock._now
            if pieces == 1:
                cls_c = lcls
            else:
                cls_c = np.empty(pieces * m, dtype=np.int64)
                off = 0
                if think_ns:
                    cls_c[0::pieces] = 0
                    off = 1
                cls_c[off::pieces] = lcls
                if post_ns:
                    cls_c[off + 1::pieces] = 1
            out_c = np.empty(cls_c.shape[0], dtype=np.float64)
            clock._now = chain_values(now0, vals_c, cls_c, out_c)
            # Frame.touch timestamps: the clock value after the think
            # advance (post-think, pre-latency), as the scalar takes.
            if think_ns:
                ts = out_c[0::pieces]
            else:
                ts = np.empty(m, dtype=np.float64)
                ts[0] = now0
                if m > 1:
                    ts[1:] = out_c[pieces - 1::pieces][:m - 1]
            scratch = np.empty(m, dtype=np.float64)
            stats.fault_time_ns = chain_values(stats.fault_time_ns,
                                               vals_c, lcls, scratch)
            stats.demand_time_ns = chain_values(stats.demand_time_ns,
                                                vals_c, lcls, scratch)
            accum = chain_values(accum, vals_c, lcls, scratch)
            stats.accesses += m
            stats.misses += m
            # Bulk install into the admit tier, frames fully
            # materialised (touch stats included) so later chunks'
            # victim checks and direct frame readers see exactly the
            # scalar-eager state. Frames land before the order-index
            # append so an overflow rebuild already includes them.
            ensure = backing.ensure
            for pid, tsv in zip(sub_run.tolist(), ts.tolist()):
                frames[pid] = Frame(page=ensure(pid), tier_index=A,
                                    dirty=write, last_access_ns=tsv,
                                    accesses=1)
            res[sub_run] = A
            self._dirty_mirror[sub_run] = False
            self._ord_extend(sub_run, A)
            if chain is None:
                counts[A] += m
            self._policy_insert_batch(tier_a.policy, sub_run.tolist())
            pt = per_tier[A]
            if counts[A] > pt.resident_peak:
                pt.resident_peak = counts[A]
            pos += m
        if pos == 0:
            return None
        k = pos
        # Temperature + placement feeds for the consumed window, in
        # run order (nothing reads either mid-window; the tracker's
        # and placement's own updates depend only on their input
        # sequences, so front/back-loading around the run is exact).
        tracker_batch = self._tracker_batch
        if tracker_batch is not None:
            tracker_batch(ids, start, start + k, is_scan)
        else:
            record = self.tracker.record
            for pid in run[:k].tolist():
                record(pid, is_scan=is_scan)
        self._placement_note(ids, start, start + k, is_scan)
        return k, accum

    def _fault(self, page_id: PageId, is_scan: bool = False) -> float:
        """Bring a page in from backing storage; returns elapsed ns."""
        page, io_time = self._read_backing(page_id)
        tier_index = self.placement.choose_admit_tier(page_id, is_scan=is_scan)
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(
                f"placement chose invalid tier {tier_index}"
            )
        tier = self.tiers[tier_index]
        if self._resident_counts[tier_index] < tier.capacity_pages:
            make_room_time = 0.0
        else:
            make_room_time = self._make_room(tier_index)
        install_time = self._inst_wr.get(tier_index)
        if install_time is None:
            install_time = tier.path.write_time(self.page_size)
            self._inst_wr[tier_index] = install_time
        else:
            device_stats = tier.path.device.stats
            device_stats.stores += 1
            device_stats.store_bytes += self.page_size
        self._install(page, tier_index)
        return io_time + make_room_time + install_time

    def _read_backing(self, page_id: PageId) -> tuple[Page, float]:
        backing = self.backing
        if backing is None:
            # No backing: anonymous page, materialized on first touch.
            return self._anonymous(page_id), 0.0
        # The page file is the home of the whole page-id space: every
        # fault pays a storage read, constant per (device, page size).
        page = backing.ensure(page_id)
        device = backing.device
        memo = self._back_rd
        if memo is not None and memo[0] is device and device.healthy:
            stats = device.stats
            stats.reads += 1
            stats.read_bytes += memo[2]
            return page, memo[1]
        size = backing.page_size
        io_time = device.read_time(size)
        self._back_rd = (device, io_time, size)
        return page, io_time

    def _anonymous(self, page_id: PageId) -> Page:
        """The anonymous (backing-less) page, created on first touch."""
        page = self._anonymous_pages.get(page_id)
        if page is None:
            page = Page(page_id=page_id, size_bytes=self.page_size)
            self._anonymous_pages[page_id] = page
        return page

    def _install(self, page: Page, tier_index: int,
                 update_peak: bool = True) -> Frame:
        """Make a materialized page resident in a tier: frame, residency
        count, replacement tracking, and (for the analytic lane) the
        tier's resident_peak high-water mark."""
        frame = Frame(page=page, tier_index=tier_index)
        self._frames[page.page_id] = frame
        self._res_set(page.page_id, tier_index)
        if page.page_id < self._dirty_mirror.shape[0]:
            self._dirty_mirror[page.page_id] = False
        self._ord_add(page.page_id, tier_index)
        self._resident_counts[tier_index] += 1
        self.tiers[tier_index].policy.record_insert(page.page_id)
        if update_peak:
            tier_stats = self.stats.per_tier[tier_index]
            tier_stats.resident_peak = max(
                tier_stats.resident_peak, self.tier_residents(tier_index)
            )
        return frame

    def _make_room(self, tier_index: int) -> float:
        """Ensure one free frame in a tier; returns elapsed ns.

        Reads ``_resident_counts`` directly — the list every eviction
        and install mutates in place — instead of re-calling
        :meth:`tier_residents` per loop iteration. ``drop_all`` is the
        only writer that rebinds the list and cannot run mid-eviction,
        so the hoisted reference stays live across the loop.
        """
        elapsed = 0.0
        guard = 0
        counts = self._resident_counts
        capacity = self.tiers[tier_index].capacity_pages
        while counts[tier_index] >= capacity:
            guard += 1
            if guard > self.total_capacity_pages + 1:
                raise BufferPoolError("eviction livelock")
            elapsed += self._evict_one(tier_index)
        return elapsed

    def _evict_one(self, tier_index: int) -> float:
        """Evict or demote one page out of a tier; returns elapsed ns."""
        tier = self.tiers[tier_index]
        # Only pay for the pinned predicate when something is actually
        # pinned; with the default predicate LRU victim selection is
        # O(1) instead of a scan through the recency order.
        if self._pinned_frames:
            victim_id = tier.policy.victim(self._is_pinned)
        else:
            victim_id = tier.policy.victim()
        if victim_id is None:
            raise PageFaultError(
                f"tier {tier.name}: all frames pinned, cannot evict"
            )
        target = self.placement.demote_target(tier_index)
        if target is not None and target != tier_index:
            # Demotion time is part of the fault being served: it is
            # charged as demand latency, not as migration time.
            return self._migrate_locked(victim_id, target, demotion=True,
                                        charge_migration_time=False)
        return self._evict_to_storage(victim_id)

    def _evict_to_storage(self, page_id: PageId) -> float:
        frame = self._frames.pop(page_id)
        self._res_set(page_id, -1)
        slot = self._ord_slot.pop(page_id, None)
        if slot is not None:
            self._ord_valid[slot] = False
        if page_id < self._pend_acc.shape[0]:
            # A frame's stats die with the frame; a re-faulted page
            # starts from zero, so pending deltas must not leak into
            # the next frame for this pid.
            self._pend_acc[page_id] = 0
        self._resident_counts[frame.tier_index] -= 1
        tier = self.tiers[frame.tier_index]
        tier.policy.remove(page_id)
        self.stats.per_tier[frame.tier_index].evictions += 1
        elapsed = self._evt_rd.get(frame.tier_index)
        if elapsed is None:
            elapsed = tier.path.read_time(self.page_size)
            self._evt_rd[frame.tier_index] = elapsed
        else:
            device_stats = tier.path.device.stats
            device_stats.loads += 1
            device_stats.load_bytes += self.page_size
        if frame.dirty:
            self.stats.writebacks += 1
            if self.backing is not None and \
                    self.backing.contains(page_id):
                elapsed += self.backing.write_page(frame.page)
            else:
                self._anonymous_pages[page_id] = frame.page
        return elapsed

    def _is_pinned(self, page_id: PageId) -> bool:
        frame = self._frames.get(page_id)
        return frame is not None and frame.pinned

    # -- migration ---------------------------------------------------------------

    def migrate(self, page_id: PageId, to_tier: int) -> float:
        """Move a resident page to another tier (promotion/demotion).

        Returns the elapsed ns, which is also recorded as migration
        time and advances the pool clock (or, inside a session
        quantum, that session's clock cursor — migrations triggered by
        a session's accesses are time the session experiences).
        """
        if self._lazy_runs:
            self._drain_lazy()
        elapsed = self._migrate_locked(page_id, to_tier, demotion=False)
        clock = self._session_clock
        (clock if clock is not None else self.clock).advance(elapsed)
        return elapsed

    def _migrate_locked(self, page_id: PageId, to_tier: int,
                        demotion: bool,
                        charge_migration_time: bool = True) -> float:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"cannot migrate non-resident {page_id}")
        if frame.pinned:
            raise BufferPoolError(f"cannot migrate pinned page {page_id}")
        if not 0 <= to_tier < len(self.tiers):
            raise BufferPoolError(f"invalid tier {to_tier}")
        from_tier = frame.tier_index
        if from_tier == to_tier:
            return 0.0
        src = self.tiers[from_tier]
        dst = self.tiers[to_tier]
        if self._resident_counts[to_tier] < dst.capacity_pages:
            elapsed = 0.0
        else:
            elapsed = self._make_room(to_tier)
        page_size = self.page_size
        rw = self._mig_rw.get((from_tier, to_tier))
        if rw is None:
            rw = (src.path.read_time(page_size),
                  dst.path.write_time(page_size))
            self._mig_rw[(from_tier, to_tier)] = rw
        else:
            # read_time/write_time also count device traffic; replay
            # those bumps when the times come from the cache.
            src_stats = src.path.device.stats
            src_stats.loads += 1
            src_stats.load_bytes += page_size
            dst_stats = dst.path.device.stats
            dst_stats.stores += 1
            dst_stats.store_bytes += page_size
        elapsed += rw[0]
        elapsed += rw[1]
        src.policy.remove(page_id)
        dst.policy.record_insert(page_id)
        counts = self._resident_counts
        counts[from_tier] -= 1
        counts[to_tier] += 1
        frame.tier_index = to_tier
        self._res_set(page_id, to_tier)
        slot = self._ord_slot.get(page_id)
        if slot is not None:
            self._ord_tier[slot] = to_tier
        stats = self.stats
        stats.migrations += 1
        if charge_migration_time:
            stats.migration_time_ns += elapsed
        trace = self._trace
        if trace.enabled:
            session_clock = self._session_clock
            now = (session_clock or self.clock).now
            trace.emit_span(
                "pool.demotion" if demotion else "pool.promotion",
                "pool", now, now + elapsed,
                {"page": page_id, "from": src.name, "to": dst.name},
            )
        tier_stats = stats.per_tier[to_tier]
        if demotion:
            tier_stats.demotions_in += 1
        else:
            tier_stats.promotions_in += 1
        residents = counts[to_tier]
        if residents > tier_stats.resident_peak:
            tier_stats.resident_peak = residents
        return elapsed

    # -- flushing -------------------------------------------------------------------

    def flush_all(self) -> float:
        """Write every dirty frame back to storage; returns elapsed ns."""
        if self._lazy_runs:
            self._drain_lazy()
        self._dirty_mirror[:] = False
        elapsed = 0.0
        for frame in self._frames.values():
            if not frame.dirty:
                continue
            tier = self.tiers[frame.tier_index]
            elapsed += tier.path.read_time(self.page_size)
            if self.backing is not None and \
                    self.backing.contains(frame.page_id):
                elapsed += self.backing.write_page(frame.page)
            frame.dirty = False
            self.stats.writebacks += 1
        trace = self._trace
        if trace.enabled:
            now = self.clock.now
            trace.emit_span("pool.flush_all", "pool", now, now + elapsed)
        self.clock.advance(elapsed)
        return elapsed

    def register_page(self, page: Page) -> None:
        """Register an externally built page as faultable content.

        With a backing file the page is installed there; otherwise it
        joins the anonymous page set. No tier residency and no timing
        — the page simply becomes reachable via :meth:`access`.
        """
        if self._lazy_runs:
            self._drain_lazy()
        if self.backing is not None:
            self.backing.install(page)
        else:
            self._anonymous_pages[page.page_id] = page

    def adopt_resident(self, page: Page, tier_index: int) -> None:
        """Install a page as already resident in a tier, at zero cost.

        Used by warm engine spawn (Sec 3.2): pages cached in pooled
        CXL memory by a previous engine are adopted by its successor
        without any I/O or fabric transfer.
        """
        if self._lazy_runs:
            self._drain_lazy()
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(f"invalid tier {tier_index}")
        if page.page_id in self._frames:
            raise BufferPoolError(f"page {page.page_id} already resident")
        if self.tier_residents(tier_index) >= \
                self.tiers[tier_index].capacity_pages:
            raise BufferPoolError(
                f"tier {self.tiers[tier_index].name} full; cannot adopt"
            )
        self._install(page, tier_index, update_peak=False)

    def resize_tier(self, tier_index: int, capacity_pages: int) -> float:
        """Change a tier's capacity in place; returns elapsed ns.

        Growing is free. Shrinking evicts (or demotes, per the
        placement policy) pages until the tier fits — the same
        make-room machinery the fault path uses, so the residency
        table stays in sync through the ordinary hooks. The elapsed
        eviction time is returned without advancing any clock; the
        caller decides whom to charge.
        """
        if self._lazy_runs:
            self._drain_lazy()
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(f"invalid tier {tier_index}")
        if capacity_pages <= 0:
            raise BufferPoolError(
                f"tier {self.tiers[tier_index].name}: capacity must be"
                " positive"
            )
        self.tiers[tier_index].capacity_pages = capacity_pages
        elapsed = 0.0
        while self.tier_residents(tier_index) > capacity_pages:
            elapsed += self._evict_one(tier_index)
        return elapsed

    def drop_all(self) -> None:
        """Empty the pool without timing (test/reset helper)."""
        if self._lazy_runs:
            self._drain_lazy()
        # policy.remove does not touch self._frames, so no snapshot
        # copy of the frame map is needed.
        for page_id, frame in self._frames.items():
            self.tiers[frame.tier_index].policy.remove(page_id)
        self._frames.clear()
        self._res_tier.fill(-1)
        self._ord_valid[:self._ord_len] = False
        self._ord_len = 0
        self._ord_slot = {}
        self._pend_acc[:] = 0
        self._dirty_mirror[:] = False
        self._resident_counts = [0] * len(self.tiers)
        self._pinned_frames = 0

    def __repr__(self) -> str:
        tiers = ", ".join(
            f"{t.name}:{self.tier_residents(i)}/{t.capacity_pages}"
            for i, t in enumerate(self.tiers)
        )
        return f"TieredBufferPool({tiers})"
