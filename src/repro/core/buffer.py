"""The CXL-tiered buffer pool (Sec 3.1 of the paper).

A :class:`TieredBufferPool` manages frames across an ordered list of
memory :class:`Tier` objects — typically local DRAM first, then one or
more CXL tiers — backed by an optional page file on block storage.
Pages live in exactly one tier at a time; a placement policy
(:mod:`repro.core.placement`) decides where pages are admitted, when
they are promoted or demoted, and where evictions drain to.

Timing: every operation charges virtual nanoseconds to the pool's
clock using the tier's :class:`~repro.sim.interconnect.AccessPath`.
``access()`` returns the *demand latency* — what a query thread waits
for — while migration/maintenance costs are accounted separately in
the stats (and also advance the clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..errors import BufferPoolError, PageFaultError
from ..sim.clock import SimClock
from ..sim.context import SimContext
from ..sim.interconnect import AccessPath
from ..storage.file import PageFile
from ..storage.page import Page, PageId
from ..units import CACHE_LINE
from .frame import Frame
from .replacement import ReplacementPolicy, make_policy
from .temperature import ExactTracker, TemperatureTracker

if TYPE_CHECKING:  # pragma: no cover
    from .placement import PlacementPolicy


@dataclass
class Tier:
    """One memory tier of the pool."""

    name: str
    path: AccessPath
    capacity_pages: int
    policy: ReplacementPolicy = field(default_factory=lambda: make_policy("lru"))

    def __post_init__(self) -> None:
        if self.capacity_pages <= 0:
            raise BufferPoolError(
                f"tier {self.name}: capacity must be positive"
            )

    @classmethod
    def from_device_path(cls, name: str, path: AccessPath,
                         page_size: int, policy_name: str = "lru",
                         capacity_pages: int | None = None) -> "Tier":
        """Build a tier sized to (a fraction of) its device capacity."""
        capacity = capacity_pages
        if capacity is None:
            capacity = path.device.capacity_bytes // page_size
        return cls(name=name, path=path, capacity_pages=capacity,
                   policy=make_policy(policy_name))


@dataclass
class TierStats:
    """Per-tier accounting."""

    hits: int = 0
    evictions: int = 0
    promotions_in: int = 0
    demotions_in: int = 0
    resident_peak: int = 0

    def snapshot(self) -> dict:
        """Counters as a dict (metrics snapshot protocol)."""
        return {
            "hits": self.hits,
            "evictions": self.evictions,
            "promotions_in": self.promotions_in,
            "demotions_in": self.demotions_in,
            "resident_peak": self.resident_peak,
        }


@dataclass
class BufferPoolStats:
    """Pool-wide accounting."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0
    migrations: int = 0
    demand_time_ns: float = 0.0
    fault_time_ns: float = 0.0
    migration_time_ns: float = 0.0
    per_tier: list[TierStats] = field(default_factory=list)

    @property
    def hits(self) -> int:
        """Accesses served from some tier."""
        return self.accesses - self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served without a storage fault."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def tier_hit_rate(self, tier_index: int) -> float:
        """Fraction of all accesses served by one tier."""
        if self.accesses == 0:
            return 0.0
        return self.per_tier[tier_index].hits / self.accesses

    def snapshot(self) -> dict:
        """Pool-wide counters as a dict (metrics snapshot protocol).

        Per-tier stats are keyed by index here; the pool's own
        :meth:`TieredBufferPool.snapshot` re-keys them by tier name.
        """
        snap: dict = {
            "accesses": self.accesses,
            "misses": self.misses,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "writebacks": self.writebacks,
            "migrations": self.migrations,
            "demand_time_ns": self.demand_time_ns,
            "fault_time_ns": self.fault_time_ns,
            "migration_time_ns": self.migration_time_ns,
        }
        for index, tier_stats in enumerate(self.per_tier):
            snap[f"tier.{index}"] = tier_stats.snapshot()
        return snap


class TieredBufferPool:
    """A buffer pool spanning DRAM and CXL memory tiers."""

    def __init__(
        self,
        tiers: list[Tier],
        backing: PageFile | None = None,
        placement: "PlacementPolicy | None" = None,
        tracker: TemperatureTracker | None = None,
        clock: SimClock | None = None,
        page_size: int = 4096,
        ctx: SimContext | None = None,
    ) -> None:
        if not tiers:
            raise BufferPoolError("a pool needs at least one tier")
        self.tiers = list(tiers)
        self.backing = backing
        # One clock per run: with a context the pool *adopts* the
        # shared clock instead of constructing its own; bind_clock
        # asserts no second clock sneaks in.
        if ctx is None:
            ctx = SimContext(clock=clock)
        elif clock is not None and clock is not ctx.clock:
            raise BufferPoolError(
                "pool was given both a SimContext and a different"
                " clock; a run must use exactly one clock"
            )
        self.ctx = ctx
        self.clock = ctx.bind_clock(ctx.clock, owner="buffer-pool")
        self._trace = ctx.trace
        ctx.register("pool", self)
        self.page_size = page_size
        self.tracker: TemperatureTracker = tracker or ExactTracker()
        self.stats = BufferPoolStats(
            per_tier=[TierStats() for _ in self.tiers]
        )
        self._frames: dict[PageId, Frame] = {}
        self._anonymous_pages: dict[PageId, Page] = {}
        self._resident_counts = [0] * len(self.tiers)
        if placement is None:
            from .placement import DbCostPolicy
            placement = DbCostPolicy()
        self.placement = placement
        self.placement.attach(self)

    # -- introspection -------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Number of pages currently held in any tier."""
        return len(self._frames)

    def tier_residents(self, tier_index: int) -> int:
        """Number of pages resident in one tier."""
        return self._resident_counts[tier_index]

    def frame_of(self, page_id: PageId) -> Frame | None:
        """The frame holding a page, if resident."""
        return self._frames.get(page_id)

    def tier_of(self, page_id: PageId) -> int | None:
        """Index of the tier holding a page, if resident."""
        frame = self._frames.get(page_id)
        return frame.tier_index if frame else None

    def resident_in(self, tier_index: int) -> Iterable[PageId]:
        """Page ids resident in one tier."""
        return [
            pid for pid, frame in self._frames.items()
            if frame.tier_index == tier_index
        ]

    @property
    def total_capacity_pages(self) -> int:
        """Sum of tier capacities."""
        return sum(tier.capacity_pages for tier in self.tiers)

    def snapshot(self) -> dict:
        """Pool state for a metrics snapshot: the stats counters with
        per-tier entries re-keyed by tier name plus residency."""
        snap = self.stats.snapshot()
        for index, tier in enumerate(self.tiers):
            tier_snap = snap.pop(f"tier.{index}", None)
            if tier_snap is None:
                tier_snap = self.stats.per_tier[index].snapshot()
            tier_snap["resident"] = self.tier_residents(index)
            tier_snap["capacity_pages"] = tier.capacity_pages
            snap[f"tier.{tier.name}"] = tier_snap
        return snap

    # -- pinning --------------------------------------------------------------

    def pin(self, page_id: PageId) -> None:
        """Pin a resident page."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"cannot pin non-resident page {page_id}")
        frame.pin()

    def unpin(self, page_id: PageId) -> None:
        """Unpin a resident page."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"cannot unpin non-resident page {page_id}")
        frame.unpin()

    # -- the access fast path ---------------------------------------------------

    def access(self, page_id: PageId, nbytes: int = CACHE_LINE,
               write: bool = False, is_scan: bool = False) -> float:
        """Touch *nbytes* of a page; returns the demand latency (ns).

        A resident page is charged its tier's access time; a miss runs
        the fault path (storage read + admission, possibly evicting).
        The placement policy observes every access and may migrate
        pages as a side effect (charged to migration time, not to the
        returned demand latency).
        """
        self.stats.accesses += 1
        self.tracker.record(page_id, is_scan=is_scan)
        frame = self._frames.get(page_id)
        if frame is None:
            latency = self._fault(page_id, is_scan=is_scan)
            frame = self._frames[page_id]
            self.stats.misses += 1
            self.stats.fault_time_ns += latency
            trace = self._trace
            if trace.enabled:
                # The clock advances by `latency` just below; the span
                # covers exactly that charged interval.
                now = self.clock.now
                trace.emit_span("pool.fault", "pool", now, now + latency,
                                {"page": page_id})
        else:
            tier = self.tiers[frame.tier_index]
            if write:
                latency = (tier.path.write_time_sequential(nbytes)
                           if is_scan else tier.path.write_time(nbytes))
            else:
                latency = (tier.path.read_time_sequential(nbytes)
                           if is_scan else tier.path.read_time(nbytes))
            tier.policy.record_access(page_id)
            self.stats.per_tier[frame.tier_index].hits += 1
        frame.touch(self.clock.now, write=write)
        self.clock.advance(latency)
        self.stats.demand_time_ns += latency
        self.placement.on_access(page_id, frame.tier_index, is_scan=is_scan)
        return latency

    def access_at(self, page_id: PageId, now_ns: float,
                  nbytes: int = CACHE_LINE, write: bool = False,
                  is_scan: bool = False) -> float:
        """Contended access for multi-threaded execution.

        Unlike :meth:`access`, the caller owns time: *now_ns* is the
        issuing thread's clock and the return value is the absolute
        completion time. Transfers are charged to the shared device
        and link channels, so concurrent threads contend for
        bandwidth — this is how scan threads can starve point-lookup
        threads on the same expander. Placement runs admission only
        (no migration side effects), keeping multi-thread runs
        deterministic.
        """
        self.stats.accesses += 1
        self.tracker.record(page_id, is_scan=is_scan)
        frame = self._frames.get(page_id)
        if frame is None:
            self.stats.misses += 1
            page, completion = self._fault_at(page_id, now_ns,
                                              is_scan=is_scan)
            frame = self._frames[page_id]
            trace = self._trace
            if trace.enabled:
                trace.emit_span("pool.fault", "pool", now_ns, completion,
                                {"page": page_id})
        else:
            tier = self.tiers[frame.tier_index]
            if write:
                completion = tier.path.write_completion(nbytes, now_ns)
            else:
                completion = tier.path.read_completion(nbytes, now_ns)
            tier.policy.record_access(page_id)
            self.stats.per_tier[frame.tier_index].hits += 1
        frame.touch(now_ns, write=write)
        self.stats.demand_time_ns += completion - now_ns
        return completion

    def _fault_at(self, page_id: PageId, now_ns: float,
                  is_scan: bool) -> tuple[Page, float]:
        """Contended fault path; returns (page, completion time)."""
        if self.backing is not None:
            self.backing.ensure(page_id)
            page = self.backing.peek(page_id)
            t = self.backing.device.read_completion(self.page_size,
                                                    now_ns)
        else:
            page = self._anonymous_pages.get(page_id)
            if page is None:
                page = Page(page_id=page_id, size_bytes=self.page_size)
                self._anonymous_pages[page_id] = page
            t = now_ns
        tier_index = self.placement.choose_admit_tier(page_id,
                                                      is_scan=is_scan)
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(
                f"placement chose invalid tier {tier_index}"
            )
        # Evictions on the contended path reuse the analytic costs.
        make_room = self._make_room(tier_index)
        tier = self.tiers[tier_index]
        completion = tier.path.write_completion(self.page_size,
                                                t + make_room)
        frame = Frame(page=page, tier_index=tier_index)
        self._frames[page_id] = frame
        self._resident_counts[tier_index] += 1
        tier.policy.record_insert(page_id)
        self.stats.fault_time_ns += completion - now_ns
        return page, completion

    def get_page(self, page_id: PageId) -> Page:
        """The resident Page object (faults it in at zero charge if
        needed — use :meth:`access` for timed paths)."""
        frame = self._frames.get(page_id)
        if frame is None:
            self._fault(page_id)
            frame = self._frames[page_id]
        return frame.page

    # -- fault path ----------------------------------------------------------------

    def _fault(self, page_id: PageId, is_scan: bool = False) -> float:
        """Bring a page in from backing storage; returns elapsed ns."""
        page, io_time = self._read_backing(page_id)
        tier_index = self.placement.choose_admit_tier(page_id, is_scan=is_scan)
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(
                f"placement chose invalid tier {tier_index}"
            )
        make_room_time = self._make_room(tier_index)
        tier = self.tiers[tier_index]
        install_time = tier.path.write_time(self.page_size)
        frame = Frame(page=page, tier_index=tier_index)
        self._frames[page_id] = frame
        self._resident_counts[tier_index] += 1
        tier.policy.record_insert(page_id)
        tier_stats = self.stats.per_tier[tier_index]
        tier_stats.resident_peak = max(
            tier_stats.resident_peak, self.tier_residents(tier_index)
        )
        return io_time + make_room_time + install_time

    def _read_backing(self, page_id: PageId) -> tuple[Page, float]:
        if self.backing is not None:
            # The page file is the home of the whole page-id space:
            # every fault pays a storage read.
            self.backing.ensure(page_id)
            return self.backing.read_page(page_id)
        # No backing: anonymous page, materialized free on first touch.
        page = self._anonymous_pages.get(page_id)
        if page is None:
            page = Page(page_id=page_id, size_bytes=self.page_size)
            self._anonymous_pages[page_id] = page
        return page, 0.0

    def _make_room(self, tier_index: int) -> float:
        """Ensure one free frame in a tier; returns elapsed ns."""
        elapsed = 0.0
        guard = 0
        while self.tier_residents(tier_index) >= \
                self.tiers[tier_index].capacity_pages:
            guard += 1
            if guard > self.total_capacity_pages + 1:
                raise BufferPoolError("eviction livelock")
            elapsed += self._evict_one(tier_index)
        return elapsed

    def _evict_one(self, tier_index: int) -> float:
        """Evict or demote one page out of a tier; returns elapsed ns."""
        tier = self.tiers[tier_index]
        victim_id = tier.policy.victim(self._is_pinned)
        if victim_id is None:
            raise PageFaultError(
                f"tier {tier.name}: all frames pinned, cannot evict"
            )
        target = self.placement.demote_target(tier_index)
        if target is not None and target != tier_index:
            # Demotion time is part of the fault being served: it is
            # charged as demand latency, not as migration time.
            return self._migrate_locked(victim_id, target, demotion=True,
                                        charge_migration_time=False)
        return self._evict_to_storage(victim_id)

    def _evict_to_storage(self, page_id: PageId) -> float:
        frame = self._frames.pop(page_id)
        self._resident_counts[frame.tier_index] -= 1
        tier = self.tiers[frame.tier_index]
        tier.policy.remove(page_id)
        self.stats.per_tier[frame.tier_index].evictions += 1
        elapsed = tier.path.read_time(self.page_size)
        if frame.dirty:
            self.stats.writebacks += 1
            if self.backing is not None and \
                    self.backing.contains(page_id):
                elapsed += self.backing.write_page(frame.page)
            else:
                self._anonymous_pages[page_id] = frame.page
        return elapsed

    def _is_pinned(self, page_id: PageId) -> bool:
        frame = self._frames.get(page_id)
        return frame is not None and frame.pinned

    # -- migration ---------------------------------------------------------------

    def migrate(self, page_id: PageId, to_tier: int) -> float:
        """Move a resident page to another tier (promotion/demotion).

        Returns the elapsed ns, which is also recorded as migration
        time and advances the pool clock.
        """
        elapsed = self._migrate_locked(page_id, to_tier, demotion=False)
        self.clock.advance(elapsed)
        return elapsed

    def _migrate_locked(self, page_id: PageId, to_tier: int,
                        demotion: bool,
                        charge_migration_time: bool = True) -> float:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"cannot migrate non-resident {page_id}")
        if frame.pinned:
            raise BufferPoolError(f"cannot migrate pinned page {page_id}")
        if not 0 <= to_tier < len(self.tiers):
            raise BufferPoolError(f"invalid tier {to_tier}")
        from_tier = frame.tier_index
        if from_tier == to_tier:
            return 0.0
        src = self.tiers[from_tier]
        dst = self.tiers[to_tier]
        elapsed = self._make_room(to_tier)
        elapsed += src.path.read_time(self.page_size)
        elapsed += dst.path.write_time(self.page_size)
        src.policy.remove(page_id)
        dst.policy.record_insert(page_id)
        self._resident_counts[from_tier] -= 1
        self._resident_counts[to_tier] += 1
        frame.tier_index = to_tier
        self.stats.migrations += 1
        if charge_migration_time:
            self.stats.migration_time_ns += elapsed
        trace = self._trace
        if trace.enabled:
            now = self.clock.now
            trace.emit_span(
                "pool.demotion" if demotion else "pool.promotion",
                "pool", now, now + elapsed,
                {"page": page_id, "from": src.name, "to": dst.name},
            )
        tier_stats = self.stats.per_tier[to_tier]
        if demotion:
            tier_stats.demotions_in += 1
        else:
            tier_stats.promotions_in += 1
        tier_stats.resident_peak = max(
            tier_stats.resident_peak, self.tier_residents(to_tier)
        )
        return elapsed

    # -- flushing -------------------------------------------------------------------

    def flush_all(self) -> float:
        """Write every dirty frame back to storage; returns elapsed ns."""
        elapsed = 0.0
        for frame in self._frames.values():
            if not frame.dirty:
                continue
            tier = self.tiers[frame.tier_index]
            elapsed += tier.path.read_time(self.page_size)
            if self.backing is not None and \
                    self.backing.contains(frame.page_id):
                elapsed += self.backing.write_page(frame.page)
            frame.dirty = False
            self.stats.writebacks += 1
        trace = self._trace
        if trace.enabled:
            now = self.clock.now
            trace.emit_span("pool.flush_all", "pool", now, now + elapsed)
        self.clock.advance(elapsed)
        return elapsed

    def register_page(self, page: Page) -> None:
        """Register an externally built page as faultable content.

        With a backing file the page is installed there; otherwise it
        joins the anonymous page set. No tier residency and no timing
        — the page simply becomes reachable via :meth:`access`.
        """
        if self.backing is not None:
            self.backing.install(page)
        else:
            self._anonymous_pages[page.page_id] = page

    def adopt_resident(self, page: Page, tier_index: int) -> None:
        """Install a page as already resident in a tier, at zero cost.

        Used by warm engine spawn (Sec 3.2): pages cached in pooled
        CXL memory by a previous engine are adopted by its successor
        without any I/O or fabric transfer.
        """
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(f"invalid tier {tier_index}")
        if page.page_id in self._frames:
            raise BufferPoolError(f"page {page.page_id} already resident")
        if self.tier_residents(tier_index) >= \
                self.tiers[tier_index].capacity_pages:
            raise BufferPoolError(
                f"tier {self.tiers[tier_index].name} full; cannot adopt"
            )
        self._frames[page.page_id] = Frame(page=page, tier_index=tier_index)
        self._resident_counts[tier_index] += 1
        self.tiers[tier_index].policy.record_insert(page.page_id)

    def drop_all(self) -> None:
        """Empty the pool without timing (test/reset helper)."""
        for page_id, frame in list(self._frames.items()):
            self.tiers[frame.tier_index].policy.remove(page_id)
        self._frames.clear()
        self._resident_counts = [0] * len(self.tiers)

    def __repr__(self) -> str:
        tiers = ", ".join(
            f"{t.name}:{self.tier_residents(i)}/{t.capacity_pages}"
            for i, t in enumerate(self.tiers)
        )
        return f"TieredBufferPool({tiers})"
