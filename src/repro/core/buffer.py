"""The CXL-tiered buffer pool (Sec 3.1 of the paper).

A :class:`TieredBufferPool` manages frames across an ordered list of
memory :class:`Tier` objects — typically local DRAM first, then one or
more CXL tiers — backed by an optional page file on block storage.
Pages live in exactly one tier at a time; a placement policy
(:mod:`repro.core.placement`) decides where pages are admitted, when
they are promoted or demoted, and where evictions drain to.

Timing: every operation charges virtual nanoseconds to the pool's
clock using the tier's :class:`~repro.sim.interconnect.AccessPath`.
``access()`` returns the *demand latency* — what a query thread waits
for — while migration/maintenance costs are accounted separately in
the stats (and also advance the clock).

Execution lanes: the pool exposes three ways to charge accesses that
produce **bit-identical** simulated state and differ only in
wall-clock cost.

* :meth:`TieredBufferPool.access` — the scalar path, one page at a
  time, using the precomputed per-path timing tables.
* :meth:`TieredBufferPool.access_batch` — the fast lane: a run of
  accesses sharing one shape (size, read/write, scan flag, think
  time) is resolved with loop-hoisted bookkeeping and local-variable
  accumulators, falling back to the scalar path at any boundary (a
  fault, a tier without timing tables, or a placement-policy trigger
  point). The per-access float additions to the clock and the demand
  counters happen in exactly the scalar order, which is what makes
  the lane byte-identical rather than merely equivalent.
* :meth:`TieredBufferPool._access_compat` — the frozen pre-table
  reference (per-access spec arithmetic); the perfbench compat lane
  measures against it so speedups are computed in-process.

Session lane: between :meth:`TieredBufferPool.session_begin` and
:meth:`TieredBufferPool.session_end` every lane times accesses
against a *session clock cursor* (an unbound
:class:`~repro.sim.clock.SimClock` owned by one
:class:`~repro.core.sessions.ClientSession`) instead of the pool's
bound clock, and folds arrival-order waits on the tier's shared
resources (:class:`~repro.sim.bandwidth.WaitQueue`) into the demand
latency. A lone session never waits — its own completion is always at
or past the resource's free time — so an N=1 session run stays
byte-identical to the single-stream lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import BufferPoolError, PageFaultError
from ..sim.bandwidth import WaitQueue
from ..sim.clock import SimClock
from ..sim.context import SimContext
from ..sim.interconnect import AccessPath, PathTiming
from ..storage.file import PageFile
from ..storage.page import Page, PageId
from ..units import CACHE_LINE
from .frame import Frame
from .replacement import ReplacementPolicy, make_policy
from .temperature import ExactTracker, TemperatureTracker

if TYPE_CHECKING:  # pragma: no cover
    from .placement import PlacementPolicy


@dataclass
class Tier:
    """One memory tier of the pool."""

    name: str
    path: AccessPath
    capacity_pages: int
    policy: ReplacementPolicy = field(default_factory=lambda: make_policy("lru"))

    def __post_init__(self) -> None:
        if self.capacity_pages <= 0:
            raise BufferPoolError(
                f"tier {self.name}: capacity must be positive"
            )

    @classmethod
    def from_device_path(cls, name: str, path: AccessPath,
                         page_size: int, policy_name: str = "lru",
                         capacity_pages: int | None = None) -> "Tier":
        """Build a tier sized to (a fraction of) its device capacity."""
        capacity = capacity_pages
        if capacity is None:
            capacity = path.device.capacity_bytes // page_size
        return cls(name=name, path=path, capacity_pages=capacity,
                   policy=make_policy(policy_name))


#: Below this run length the batched lane falls back to plain scalar
#: calls: the loop-hoisting setup costs more than it saves.
MIN_BATCH_RUN = 3


@dataclass(slots=True)
class TierStats:
    """Per-tier accounting (slotted: bumped on every hit)."""

    hits: int = 0
    evictions: int = 0
    promotions_in: int = 0
    demotions_in: int = 0
    resident_peak: int = 0

    def snapshot(self) -> dict:
        """Counters as a dict (metrics snapshot protocol)."""
        return {
            "hits": self.hits,
            "evictions": self.evictions,
            "promotions_in": self.promotions_in,
            "demotions_in": self.demotions_in,
            "resident_peak": self.resident_peak,
        }


@dataclass(slots=True)
class BufferPoolStats:
    """Pool-wide accounting (slotted: bumped on every access)."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0
    migrations: int = 0
    demand_time_ns: float = 0.0
    fault_time_ns: float = 0.0
    migration_time_ns: float = 0.0
    per_tier: list[TierStats] = field(default_factory=list)

    @property
    def hits(self) -> int:
        """Accesses served from some tier."""
        return self.accesses - self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served without a storage fault."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def tier_hit_rate(self, tier_index: int) -> float:
        """Fraction of all accesses served by one tier."""
        if self.accesses == 0:
            return 0.0
        return self.per_tier[tier_index].hits / self.accesses

    def snapshot(self) -> dict:
        """Pool-wide counters as a dict (metrics snapshot protocol).

        Per-tier stats are keyed by index here; the pool's own
        :meth:`TieredBufferPool.snapshot` re-keys them by tier name.
        """
        snap: dict = {
            "accesses": self.accesses,
            "misses": self.misses,
            "hits": self.hits,
            "hit_rate": self.hit_rate,
            "writebacks": self.writebacks,
            "migrations": self.migrations,
            "demand_time_ns": self.demand_time_ns,
            "fault_time_ns": self.fault_time_ns,
            "migration_time_ns": self.migration_time_ns,
        }
        for index, tier_stats in enumerate(self.per_tier):
            snap[f"tier.{index}"] = tier_stats.snapshot()
        return snap


class TieredBufferPool:
    """A buffer pool spanning DRAM and CXL memory tiers."""

    def __init__(
        self,
        tiers: list[Tier],
        backing: PageFile | None = None,
        placement: "PlacementPolicy | None" = None,
        tracker: TemperatureTracker | None = None,
        clock: SimClock | None = None,
        page_size: int = 4096,
        ctx: SimContext | None = None,
    ) -> None:
        if not tiers:
            raise BufferPoolError("a pool needs at least one tier")
        self.tiers = list(tiers)
        self.backing = backing
        # One clock per run: with a context the pool *adopts* the
        # shared clock instead of constructing its own; bind_clock
        # asserts no second clock sneaks in.
        if ctx is None:
            ctx = SimContext(clock=clock)
        elif clock is not None and clock is not ctx.clock:
            raise BufferPoolError(
                "pool was given both a SimContext and a different"
                " clock; a run must use exactly one clock"
            )
        self.ctx = ctx
        self.clock = ctx.bind_clock(ctx.clock, owner="buffer-pool")
        self._trace = ctx.trace
        ctx.register("pool", self)
        self.page_size = page_size
        self.tracker: TemperatureTracker = tracker or ExactTracker()
        self.stats = BufferPoolStats(
            per_tier=[TierStats() for _ in self.tiers]
        )
        self._frames: dict[PageId, Frame] = {}
        self._anonymous_pages: dict[PageId, Page] = {}
        self._resident_counts = [0] * len(self.tiers)
        self._pinned_frames = 0
        if placement is None:
            from .placement import DbCostPolicy
            placement = DbCostPolicy()
        self.placement = placement
        self.placement.attach(self)
        #: Batched fast-lane switch; see the module docstring. Off, the
        #: pool behaves exactly like the pre-fast-lane implementation
        #: (scalar execution, per-access arithmetic).
        self.fast_lane = True
        # Precomputed per-tier timing tables; None for tiers whose path
        # has no table support (those always take the scalar path).
        self._tier_timing: list[PathTiming | None] = [
            self._path_timing(tier.path) for tier in self.tiers
        ]
        # Optional batch hooks, resolved once so the fast lane degrades
        # (to correct scalar behaviour) with custom trackers/policies.
        self._tracker_batch = getattr(self.tracker, "record_batch", None)
        headroom = getattr(placement, "fast_headroom", None)
        note = getattr(placement, "note_accesses", None)
        self._placement_headroom = headroom if note is not None else None
        self._placement_note = note if headroom is not None else None
        # Session lane (see module docstring): while a ConcurrentEngine
        # quantum runs, accesses are timed against that session's clock
        # cursor and contend on per-resource wait queues. Both fields
        # are None outside a quantum so single-stream runs pay only a
        # None-check on the hot paths.
        self._session_clock: SimClock | None = None
        self._session_queues: list[tuple[WaitQueue, ...]] | None = None
        self._wait_queues: list[tuple[WaitQueue, ...]] | None = None
        self._session_wait_ns = 0.0

    @staticmethod
    def _path_timing(path: AccessPath) -> PathTiming | None:
        """The path's precomputed timing table, if it supports one."""
        build = getattr(path, "timing", None)
        if build is None:
            return None
        try:
            return build()
        except Exception:
            return None

    def set_fast_lane(self, enabled: bool) -> None:
        """Toggle the batched fast lane (simulated results are
        identical either way; only wall-clock changes)."""
        self.fast_lane = bool(enabled)

    # -- the session lane -----------------------------------------------------

    def wait_queues(self) -> list[tuple[WaitQueue, ...]]:
        """Per-tier wait queues over each tier's shared path resources.

        One :class:`~repro.sim.bandwidth.WaitQueue` per distinct link
        and per terminal device, *shared* between tiers whose paths
        share the resource — two tiers behind the same CXL port
        contend with each other; separate expanders do not. Built on
        first use and persistent across session runs, the way link
        channels persist across :meth:`access_at` calls.
        """
        queues = self._wait_queues
        if queues is None:
            by_resource: dict[int, WaitQueue] = {}
            queues = []
            for tier in self.tiers:
                path = tier.path
                tier_queues = []
                for link in getattr(path, "links", ()) or ():
                    queue = by_resource.get(id(link))
                    if queue is None:
                        queue = WaitQueue(f"link.{link.name}",
                                          link.effective_bandwidth)
                        by_resource[id(link)] = queue
                    tier_queues.append(queue)
                device = getattr(path, "device", None)
                if device is not None:
                    queue = by_resource.get(id(device))
                    if queue is None:
                        spec = device.spec
                        queue = WaitQueue(
                            f"device.{device.name}",
                            spec.effective_load_bandwidth,
                            spec.effective_store_bandwidth,
                        )
                        by_resource[id(device)] = queue
                    tier_queues.append(queue)
                queues.append(tuple(tier_queues))
            self._wait_queues = queues
        return queues

    def session_begin(self, clock: SimClock,
                      contended: bool = True) -> None:
        """Enter the session lane: time accesses against *clock* (a
        session-local cursor) and, when *contended*, fold per-resource
        queue waits into demand latency.

        The cursor is deliberately **not** bound to the context — the
        pool's own clock remains the run's single authoritative clock
        (advanced only by the event loop), so the one-clock invariant
        of :meth:`~repro.sim.context.SimContext.bind_clock` holds.
        """
        self._session_clock = clock
        self._session_queues = self.wait_queues() if contended else None

    def session_end(self) -> None:
        """Leave the session lane; single-stream behaviour resumes."""
        self._session_clock = None
        self._session_queues = None

    @property
    def session_wait_ns(self) -> float:
        """Total contention wait folded into demand latency so far."""
        return self._session_wait_ns

    def _contend(self, tier_index: int, now_ns: float, latency: float,
                 nbytes: int, write: bool) -> float:
        """Queue one access on its tier's shared resources.

        Returns the latency with any arrival-order wait folded in as a
        single addition — zero wait returns the float *untouched*,
        which is what keeps N=1 session runs byte-identical to the
        single-stream lanes.
        """
        tier_queues = self._session_queues[tier_index]
        wait = 0.0
        bottleneck = None
        for queue in tier_queues:
            delay = queue._free_at - now_ns
            if delay > wait:
                wait = delay
                bottleneck = queue
        if wait > 0.0:
            self._session_wait_ns += wait
            bottleneck.note_wait(wait)
            latency = wait + latency
        start = now_ns + wait
        for queue in tier_queues:
            queue.occupy_run(start, nbytes, 1, write)
        return latency

    # -- introspection -------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        """Number of pages currently held in any tier."""
        return len(self._frames)

    def tier_residents(self, tier_index: int) -> int:
        """Number of pages resident in one tier."""
        return self._resident_counts[tier_index]

    def frame_of(self, page_id: PageId) -> Frame | None:
        """The frame holding a page, if resident."""
        return self._frames.get(page_id)

    def tier_of(self, page_id: PageId) -> int | None:
        """Index of the tier holding a page, if resident."""
        frame = self._frames.get(page_id)
        return frame.tier_index if frame else None

    def resident_in(self, tier_index: int) -> Iterable[PageId]:
        """Page ids resident in one tier."""
        return [
            pid for pid, frame in self._frames.items()
            if frame.tier_index == tier_index
        ]

    @property
    def total_capacity_pages(self) -> int:
        """Sum of tier capacities."""
        return sum(tier.capacity_pages for tier in self.tiers)

    def snapshot(self) -> dict:
        """Pool state for a metrics snapshot: the stats counters with
        per-tier entries re-keyed by tier name plus residency."""
        snap = self.stats.snapshot()
        for index, tier in enumerate(self.tiers):
            tier_snap = snap.pop(f"tier.{index}", None)
            if tier_snap is None:
                tier_snap = self.stats.per_tier[index].snapshot()
            tier_snap["resident"] = self.tier_residents(index)
            tier_snap["capacity_pages"] = tier.capacity_pages
            snap[f"tier.{tier.name}"] = tier_snap
        return snap

    # -- pinning --------------------------------------------------------------

    def pin(self, page_id: PageId) -> None:
        """Pin a resident page.

        Pin through the pool (not ``frame.pin()`` directly): the pool
        counts pinned frames so victim selection can skip the pinned
        predicate entirely in the no-pins common case.
        """
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"cannot pin non-resident page {page_id}")
        if not frame.pinned:
            self._pinned_frames += 1
        frame.pin()

    def unpin(self, page_id: PageId) -> None:
        """Unpin a resident page."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"cannot unpin non-resident page {page_id}")
        frame.unpin()
        if not frame.pinned:
            self._pinned_frames -= 1

    # -- the access fast path ---------------------------------------------------

    def access(self, page_id: PageId, nbytes: int = CACHE_LINE,
               write: bool = False, is_scan: bool = False) -> float:
        """Touch *nbytes* of a page; returns the demand latency (ns).

        A resident page is charged its tier's access time; a miss runs
        the fault path (storage read + admission, possibly evicting).
        The placement policy observes every access and may migrate
        pages as a side effect (charged to migration time, not to the
        returned demand latency).

        In the session lane the access is timed against the session's
        clock cursor and any arrival-order wait on the tier's shared
        resources is folded into the returned latency.
        """
        self.stats.accesses += 1
        self.tracker.record(page_id, is_scan=is_scan)
        clock = self._session_clock
        if clock is None:
            clock = self.clock
        frame = self._frames.get(page_id)
        if frame is None:
            latency = self._fault(page_id, is_scan=is_scan)
            frame = self._frames[page_id]
            self.stats.misses += 1
            self.stats.fault_time_ns += latency
            if self._session_queues is not None:
                # The fault installs a full page into the admit tier;
                # that write is what occupies the tier's resources.
                latency = self._contend(frame.tier_index, clock._now,
                                        latency, self.page_size, True)
            trace = self._trace
            if trace.enabled:
                # The clock advances by `latency` just below; the span
                # covers exactly that charged interval.
                now = clock.now
                trace.emit_span("pool.fault", "pool", now, now + latency,
                                {"page": page_id})
        else:
            tier = self.tiers[frame.tier_index]
            if write:
                latency = (tier.path.write_time_sequential(nbytes)
                           if is_scan else tier.path.write_time(nbytes))
            else:
                latency = (tier.path.read_time_sequential(nbytes)
                           if is_scan else tier.path.read_time(nbytes))
            if self._session_queues is not None:
                latency = self._contend(frame.tier_index, clock._now,
                                        latency, nbytes, write)
            self._register_hit(page_id, frame.tier_index)
        frame.touch(clock.now, write=write)
        clock.advance(latency)
        self.stats.demand_time_ns += latency
        self.placement.on_access(page_id, frame.tier_index, is_scan=is_scan)
        return latency

    def _access_compat(self, page_id: PageId, nbytes: int = CACHE_LINE,
                       write: bool = False, is_scan: bool = False) -> float:
        """The frozen pre-fast-lane :meth:`access`: hit latency derived
        from specs per call, no tables. Kept verbatim as the perfbench
        compat lane and the reference the equivalence tests compare the
        fast lane against. Results are bit-identical to :meth:`access`;
        only the wall-clock cost differs.
        """
        self.stats.accesses += 1
        self.tracker.record(page_id, is_scan=is_scan)
        clock = self._session_clock
        if clock is None:
            clock = self.clock
        frame = self._frames.get(page_id)
        if frame is None:
            latency = self._fault(page_id, is_scan=is_scan)
            frame = self._frames[page_id]
            self.stats.misses += 1
            self.stats.fault_time_ns += latency
            if self._session_queues is not None:
                latency = self._contend(frame.tier_index, clock._now,
                                        latency, self.page_size, True)
            trace = self._trace
            if trace.enabled:
                now = clock.now
                trace.emit_span("pool.fault", "pool", now, now + latency,
                                {"page": page_id})
        else:
            path = self.tiers[frame.tier_index].path
            if write:
                latency = (path.write_time_sequential_uncached(nbytes)
                           if is_scan else path.write_time_uncached(nbytes))
            else:
                latency = (path.read_time_sequential_uncached(nbytes)
                           if is_scan else path.read_time_uncached(nbytes))
            if self._session_queues is not None:
                latency = self._contend(frame.tier_index, clock._now,
                                        latency, nbytes, write)
            self._register_hit(page_id, frame.tier_index)
        frame.touch(clock.now, write=write)
        clock.advance(latency)
        self.stats.demand_time_ns += latency
        self.placement.on_access(page_id, frame.tier_index, is_scan=is_scan)
        return latency

    def access_batch(self, page_ids: Sequence[PageId],
                     nbytes: int = CACHE_LINE, write: bool = False,
                     is_scan: bool = False, think_ns: float = 0.0,
                     post_ns: float = 0.0, accum: float = 0.0) -> float:
        """Charge a run of accesses sharing one shape; the fast lane.

        Semantically (and bit-for-bit) identical to::

            for pid in page_ids:
                if think_ns:
                    clock.advance(think_ns)
                accum += pool.access(pid, nbytes=nbytes, write=write,
                                     is_scan=is_scan)
                if post_ns:
                    clock.advance(post_ns)
            return accum

        *think_ns* is CPU time charged before each access (workload
        think time), *post_ns* after it (operator per-page CPU), and
        *accum* is the caller's running demand accumulator — threading
        it through keeps the caller's float addition sequence exactly
        as in the scalar loop.

        Hits on tiers with timing tables are resolved in a tight loop
        with local accumulators that are written back at run
        boundaries; a miss, a table-less tier, or a placement trigger
        point flushes the window and routes that one access through
        the scalar path, so eviction, migration, and rebalance
        decisions see exactly the state they would have scalar-wise.
        """
        if think_ns < 0 or post_ns < 0:
            raise BufferPoolError("think_ns and post_ns must be >= 0")
        seq = page_ids if hasattr(page_ids, "__getitem__") \
            else list(page_ids)
        n = len(seq)
        if n == 0:
            return accum
        clock = self._session_clock
        if clock is None:
            clock = self.clock
        if not self.fast_lane:
            advance = clock.advance
            compat = self._access_compat
            for pid in seq:
                if think_ns:
                    advance(think_ns)
                accum += compat(pid, nbytes, write, is_scan)
                if post_ns:
                    advance(post_ns)
            return accum
        if n < MIN_BATCH_RUN:
            advance = clock.advance
            access = self.access
            for pid in seq:
                if think_ns:
                    advance(think_ns)
                accum += access(pid, nbytes=nbytes, write=write,
                                is_scan=is_scan)
                if post_ns:
                    advance(post_ns)
            return accum
        stats = self.stats
        frames_get = self._frames.get
        tier_timing = self._tier_timing
        headroom_fn = self._placement_headroom
        note = self._placement_note
        tracker_batch = self._tracker_batch
        tracker_record = self.tracker.record
        queues = self._session_queues
        i = 0
        while i < n:
            headroom = headroom_fn() if headroom_fn is not None else 0
            if headroom <= 0:
                # A placement trigger (or a policy without batch
                # support): route one access through the scalar path.
                if think_ns:
                    clock.advance(think_ns)
                accum += self.access(seq[i], nbytes=nbytes, write=write,
                                     is_scan=is_scan)
                if post_ns:
                    clock.advance(post_ns)
                i += 1
                continue
            end = i + headroom
            if end > n:
                end = n
            win_start = i
            # Local accumulators mirror clock/stats state; per-access
            # additions below happen in exactly the scalar order, so
            # the written-back floats are bit-identical.
            now = clock._now
            pool_demand = stats.demand_time_ns
            cur_tier = -1
            seg_start = i
            lat = 0.0
            lat_i = 0.0
            tier_queues: tuple[WaitQueue, ...] = ()
            seg_fresh = False
            boundary = False
            while i < end:
                frame = frames_get(seq[i])
                if frame is None:
                    boundary = True
                    break
                tier_index = frame.tier_index
                if tier_index != cur_tier:
                    if seg_start < i:
                        self._flush_segment(
                            seq, seg_start, i, cur_tier, nbytes, write,
                            end_ns=(now - post_ns) if post_ns else now,
                            lat=lat,
                        )
                    timing = tier_timing[tier_index]
                    if timing is None:
                        boundary = True
                        break
                    cur_tier = tier_index
                    seg_start = i
                    if write:
                        lat = (timing.seq_write_latency_ns if is_scan
                               else timing.write_latency_ns
                               ) + timing.write_transfer.time_ns(nbytes)
                    else:
                        lat = (timing.seq_read_latency_ns if is_scan
                               else timing.read_latency_ns
                               ) + timing.read_transfer.time_ns(nbytes)
                    if queues is not None:
                        tier_queues = queues[tier_index]
                        seg_fresh = True
                if think_ns:
                    now += think_ns
                if seg_fresh:
                    # First access of a contended segment: fold the
                    # arrival-order queue wait into its latency as one
                    # addition, exactly as the scalar _contend does.
                    # Later accesses of the run cannot wait (the run
                    # itself keeps the resource busy behind them).
                    seg_fresh = False
                    wait = 0.0
                    bottleneck = None
                    for queue in tier_queues:
                        delay = queue._free_at - now
                        if delay > wait:
                            wait = delay
                            bottleneck = queue
                    if wait > 0.0:
                        self._session_wait_ns += wait
                        bottleneck.note_wait(wait)
                        lat_i = wait + lat
                    else:
                        lat_i = lat
                else:
                    lat_i = lat
                # Inlined frame.touch at the pre-advance clock value,
                # as in the scalar path.
                frame.accesses += 1
                frame.last_access_ns = now
                if write:
                    frame.dirty = True
                now += lat_i
                pool_demand += lat_i
                accum += lat_i
                if post_ns:
                    now += post_ns
                i += 1
            if seg_start < i:
                self._flush_segment(
                    seq, seg_start, i, cur_tier, nbytes, write,
                    end_ns=(now - post_ns) if post_ns else now,
                    lat=lat,
                )
            count = i - win_start
            if count:
                stats.accesses += count
                stats.demand_time_ns = pool_demand
                clock._now = now
                if tracker_batch is not None:
                    tracker_batch(seq, win_start, i, is_scan)
                else:
                    for j in range(win_start, i):
                        tracker_record(seq[j], is_scan=is_scan)
                note(seq, win_start, i, is_scan)
            if boundary:
                # The access that broke the window (fault or table-less
                # tier) resolves scalar, after the flush above so it
                # observes fully up-to-date state.
                if think_ns:
                    clock.advance(think_ns)
                accum += self.access(seq[i], nbytes=nbytes, write=write,
                                     is_scan=is_scan)
                if post_ns:
                    clock.advance(post_ns)
                i += 1
        return accum

    def _flush_segment(self, seq: Sequence[PageId], start: int, end: int,
                       tier_index: int, nbytes: int, write: bool,
                       end_ns: float = 0.0, lat: float = 0.0) -> None:
        """Apply the deferred per-tier bookkeeping of a same-tier run:
        replacement recency, hit counters, device traffic. Counter
        order within a window does not affect simulated results (they
        are integers read only at scalar boundaries).

        In the session lane, *end_ns* (demand completion of the run's
        last access) and *lat* (its unloaded latency) place the run's
        occupancy on the tier's wait queues — the batched equivalent of
        the per-access ``occupy_run`` in :meth:`_contend`.
        """
        count = end - start
        tier = self.tiers[tier_index]
        policy = tier.policy
        batch = getattr(policy, "record_access_batch", None)
        if batch is not None:
            batch(seq, start, end)
        else:
            record = policy.record_access
            for i in range(start, end):
                record(seq[i])
        self.stats.per_tier[tier_index].hits += count
        device_stats = tier.path.device.stats
        if write:
            device_stats.stores += count
            device_stats.store_bytes += count * nbytes
        else:
            device_stats.loads += count
            device_stats.load_bytes += count * nbytes
        queues = self._session_queues
        if queues is not None:
            start_last = end_ns - lat
            for queue in queues[tier_index]:
                queue.occupy_run(start_last, nbytes, count, write)

    def _register_hit(self, page_id: PageId, tier_index: int) -> None:
        """Shared hit bookkeeping for the scalar access paths."""
        self.tiers[tier_index].policy.record_access(page_id)
        self.stats.per_tier[tier_index].hits += 1

    def access_at(self, page_id: PageId, now_ns: float,
                  nbytes: int = CACHE_LINE, write: bool = False,
                  is_scan: bool = False) -> float:
        """Contended access for multi-threaded execution.

        Unlike :meth:`access`, the caller owns time: *now_ns* is the
        issuing thread's clock and the return value is the absolute
        completion time. Transfers are charged to the shared device
        and link channels, so concurrent threads contend for
        bandwidth — this is how scan threads can starve point-lookup
        threads on the same expander. Placement runs admission only
        (no migration side effects), keeping multi-thread runs
        deterministic.
        """
        self.stats.accesses += 1
        self.tracker.record(page_id, is_scan=is_scan)
        frame = self._frames.get(page_id)
        if frame is None:
            self.stats.misses += 1
            page, completion = self._fault_at(page_id, now_ns,
                                              is_scan=is_scan)
            frame = self._frames[page_id]
            trace = self._trace
            if trace.enabled:
                trace.emit_span("pool.fault", "pool", now_ns, completion,
                                {"page": page_id})
        else:
            tier = self.tiers[frame.tier_index]
            if write:
                completion = tier.path.write_completion(nbytes, now_ns)
            else:
                completion = tier.path.read_completion(nbytes, now_ns)
            self._register_hit(page_id, frame.tier_index)
        frame.touch(now_ns, write=write)
        self.stats.demand_time_ns += completion - now_ns
        return completion

    def _fault_at(self, page_id: PageId, now_ns: float,
                  is_scan: bool) -> tuple[Page, float]:
        """Contended fault path; returns (page, completion time)."""
        if self.backing is not None:
            self.backing.ensure(page_id)
            page = self.backing.peek(page_id)
            t = self.backing.device.read_completion(self.page_size,
                                                    now_ns)
        else:
            page = self._anonymous(page_id)
            t = now_ns
        tier_index = self.placement.choose_admit_tier(page_id,
                                                      is_scan=is_scan)
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(
                f"placement chose invalid tier {tier_index}"
            )
        # Evictions on the contended path reuse the analytic costs.
        make_room = self._make_room(tier_index)
        tier = self.tiers[tier_index]
        completion = tier.path.write_completion(self.page_size,
                                                t + make_room)
        # The contended path never tracked resident_peak (it belongs
        # to the analytic lane's reports); keep that behaviour.
        self._install(page, tier_index, update_peak=False)
        self.stats.fault_time_ns += completion - now_ns
        return page, completion

    def get_page(self, page_id: PageId) -> Page:
        """The resident Page object (faults it in at zero charge if
        needed — use :meth:`access` for timed paths)."""
        frame = self._frames.get(page_id)
        if frame is None:
            self._fault(page_id)
            frame = self._frames[page_id]
        return frame.page

    # -- fault path ----------------------------------------------------------------

    def _fault(self, page_id: PageId, is_scan: bool = False) -> float:
        """Bring a page in from backing storage; returns elapsed ns."""
        page, io_time = self._read_backing(page_id)
        tier_index = self.placement.choose_admit_tier(page_id, is_scan=is_scan)
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(
                f"placement chose invalid tier {tier_index}"
            )
        make_room_time = self._make_room(tier_index)
        install_time = self.tiers[tier_index].path.write_time(self.page_size)
        self._install(page, tier_index)
        return io_time + make_room_time + install_time

    def _read_backing(self, page_id: PageId) -> tuple[Page, float]:
        if self.backing is not None:
            # The page file is the home of the whole page-id space:
            # every fault pays a storage read.
            self.backing.ensure(page_id)
            return self.backing.read_page(page_id)
        # No backing: anonymous page, materialized free on first touch.
        return self._anonymous(page_id), 0.0

    def _anonymous(self, page_id: PageId) -> Page:
        """The anonymous (backing-less) page, created on first touch."""
        page = self._anonymous_pages.get(page_id)
        if page is None:
            page = Page(page_id=page_id, size_bytes=self.page_size)
            self._anonymous_pages[page_id] = page
        return page

    def _install(self, page: Page, tier_index: int,
                 update_peak: bool = True) -> Frame:
        """Make a materialized page resident in a tier: frame, residency
        count, replacement tracking, and (for the analytic lane) the
        tier's resident_peak high-water mark."""
        frame = Frame(page=page, tier_index=tier_index)
        self._frames[page.page_id] = frame
        self._resident_counts[tier_index] += 1
        self.tiers[tier_index].policy.record_insert(page.page_id)
        if update_peak:
            tier_stats = self.stats.per_tier[tier_index]
            tier_stats.resident_peak = max(
                tier_stats.resident_peak, self.tier_residents(tier_index)
            )
        return frame

    def _make_room(self, tier_index: int) -> float:
        """Ensure one free frame in a tier; returns elapsed ns."""
        elapsed = 0.0
        guard = 0
        while self.tier_residents(tier_index) >= \
                self.tiers[tier_index].capacity_pages:
            guard += 1
            if guard > self.total_capacity_pages + 1:
                raise BufferPoolError("eviction livelock")
            elapsed += self._evict_one(tier_index)
        return elapsed

    def _evict_one(self, tier_index: int) -> float:
        """Evict or demote one page out of a tier; returns elapsed ns."""
        tier = self.tiers[tier_index]
        # Only pay for the pinned predicate when something is actually
        # pinned; with the default predicate LRU victim selection is
        # O(1) instead of a scan through the recency order.
        if self._pinned_frames:
            victim_id = tier.policy.victim(self._is_pinned)
        else:
            victim_id = tier.policy.victim()
        if victim_id is None:
            raise PageFaultError(
                f"tier {tier.name}: all frames pinned, cannot evict"
            )
        target = self.placement.demote_target(tier_index)
        if target is not None and target != tier_index:
            # Demotion time is part of the fault being served: it is
            # charged as demand latency, not as migration time.
            return self._migrate_locked(victim_id, target, demotion=True,
                                        charge_migration_time=False)
        return self._evict_to_storage(victim_id)

    def _evict_to_storage(self, page_id: PageId) -> float:
        frame = self._frames.pop(page_id)
        self._resident_counts[frame.tier_index] -= 1
        tier = self.tiers[frame.tier_index]
        tier.policy.remove(page_id)
        self.stats.per_tier[frame.tier_index].evictions += 1
        elapsed = tier.path.read_time(self.page_size)
        if frame.dirty:
            self.stats.writebacks += 1
            if self.backing is not None and \
                    self.backing.contains(page_id):
                elapsed += self.backing.write_page(frame.page)
            else:
                self._anonymous_pages[page_id] = frame.page
        return elapsed

    def _is_pinned(self, page_id: PageId) -> bool:
        frame = self._frames.get(page_id)
        return frame is not None and frame.pinned

    # -- migration ---------------------------------------------------------------

    def migrate(self, page_id: PageId, to_tier: int) -> float:
        """Move a resident page to another tier (promotion/demotion).

        Returns the elapsed ns, which is also recorded as migration
        time and advances the pool clock (or, inside a session
        quantum, that session's clock cursor — migrations triggered by
        a session's accesses are time the session experiences).
        """
        elapsed = self._migrate_locked(page_id, to_tier, demotion=False)
        clock = self._session_clock
        (clock if clock is not None else self.clock).advance(elapsed)
        return elapsed

    def _migrate_locked(self, page_id: PageId, to_tier: int,
                        demotion: bool,
                        charge_migration_time: bool = True) -> float:
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(f"cannot migrate non-resident {page_id}")
        if frame.pinned:
            raise BufferPoolError(f"cannot migrate pinned page {page_id}")
        if not 0 <= to_tier < len(self.tiers):
            raise BufferPoolError(f"invalid tier {to_tier}")
        from_tier = frame.tier_index
        if from_tier == to_tier:
            return 0.0
        src = self.tiers[from_tier]
        dst = self.tiers[to_tier]
        elapsed = self._make_room(to_tier)
        elapsed += src.path.read_time(self.page_size)
        elapsed += dst.path.write_time(self.page_size)
        src.policy.remove(page_id)
        dst.policy.record_insert(page_id)
        self._resident_counts[from_tier] -= 1
        self._resident_counts[to_tier] += 1
        frame.tier_index = to_tier
        self.stats.migrations += 1
        if charge_migration_time:
            self.stats.migration_time_ns += elapsed
        trace = self._trace
        if trace.enabled:
            session_clock = self._session_clock
            now = (session_clock or self.clock).now
            trace.emit_span(
                "pool.demotion" if demotion else "pool.promotion",
                "pool", now, now + elapsed,
                {"page": page_id, "from": src.name, "to": dst.name},
            )
        tier_stats = self.stats.per_tier[to_tier]
        if demotion:
            tier_stats.demotions_in += 1
        else:
            tier_stats.promotions_in += 1
        tier_stats.resident_peak = max(
            tier_stats.resident_peak, self.tier_residents(to_tier)
        )
        return elapsed

    # -- flushing -------------------------------------------------------------------

    def flush_all(self) -> float:
        """Write every dirty frame back to storage; returns elapsed ns."""
        elapsed = 0.0
        for frame in self._frames.values():
            if not frame.dirty:
                continue
            tier = self.tiers[frame.tier_index]
            elapsed += tier.path.read_time(self.page_size)
            if self.backing is not None and \
                    self.backing.contains(frame.page_id):
                elapsed += self.backing.write_page(frame.page)
            frame.dirty = False
            self.stats.writebacks += 1
        trace = self._trace
        if trace.enabled:
            now = self.clock.now
            trace.emit_span("pool.flush_all", "pool", now, now + elapsed)
        self.clock.advance(elapsed)
        return elapsed

    def register_page(self, page: Page) -> None:
        """Register an externally built page as faultable content.

        With a backing file the page is installed there; otherwise it
        joins the anonymous page set. No tier residency and no timing
        — the page simply becomes reachable via :meth:`access`.
        """
        if self.backing is not None:
            self.backing.install(page)
        else:
            self._anonymous_pages[page.page_id] = page

    def adopt_resident(self, page: Page, tier_index: int) -> None:
        """Install a page as already resident in a tier, at zero cost.

        Used by warm engine spawn (Sec 3.2): pages cached in pooled
        CXL memory by a previous engine are adopted by its successor
        without any I/O or fabric transfer.
        """
        if not 0 <= tier_index < len(self.tiers):
            raise BufferPoolError(f"invalid tier {tier_index}")
        if page.page_id in self._frames:
            raise BufferPoolError(f"page {page.page_id} already resident")
        if self.tier_residents(tier_index) >= \
                self.tiers[tier_index].capacity_pages:
            raise BufferPoolError(
                f"tier {self.tiers[tier_index].name} full; cannot adopt"
            )
        self._install(page, tier_index, update_peak=False)

    def drop_all(self) -> None:
        """Empty the pool without timing (test/reset helper)."""
        # policy.remove does not touch self._frames, so no snapshot
        # copy of the frame map is needed.
        for page_id, frame in self._frames.items():
            self.tiers[frame.tier_index].policy.remove(page_id)
        self._frames.clear()
        self._resident_counts = [0] * len(self.tiers)
        self._pinned_frames = 0

    def __repr__(self) -> str:
        tiers = ", ".join(
            f"{t.name}:{self.tier_residents(i)}/{t.capacity_pages}"
            for i, t in enumerate(self.tiers)
        )
        return f"TieredBufferPool({tiers})"
