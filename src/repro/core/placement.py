"""Data-placement policies across memory tiers.

These answer the Sec 3.1 research questions: who should decide where a
page lives — the OS or the database engine — and how should data
structures span conventional and CXL memory?

* :class:`OSPagingPolicy` — what Meta's TPP does: admit to fast
  memory, sample access bits, demote cold pages under memory pressure,
  promote pages the sampler happens to observe. Workload-blind.
* :class:`DbCostPolicy` — the paper's position [11]: the engine sees
  every logical access, discounts sequential scans, and periodically
  solves "hottest pages in the fastest tier" exactly.
* :class:`StaticPolicy` — explicit placement by page class, modelling
  the HTAP configuration of Sec 3.1 (OLTP on local DRAM, OLAP data
  structures on CXL, no interference).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Sequence

import numpy as np

from ..errors import BufferPoolError
from .temperature import ExactTracker, SampledTracker

if TYPE_CHECKING:  # pragma: no cover
    from .buffer import TieredBufferPool


class PlacementPolicy(Protocol):
    """Interface the buffer pool drives."""

    def attach(self, pool: "TieredBufferPool") -> None:
        """Bind the policy to its pool (called once by the pool)."""

    def choose_admit_tier(self, page_id: int, is_scan: bool = False) -> int:
        """Tier index for a freshly faulted page."""

    def choose_admit_tiers(self, page_ids: "np.ndarray",
                           is_scan: bool = False) -> "np.ndarray | None":
        """Admit tiers for a run of distinct fresh faults, as one int
        array — or None when the policy cannot answer in bulk.

        The contract: element *i* must equal what
        :meth:`choose_admit_tier` would have returned for
        ``page_ids[i]`` with the first *i* pages of the run already
        installed (each install raising its tier's resident count by
        one; a full admit tier stays full because the eviction cascade
        frees a slot before the install lands). Returning None sends
        the whole run down the scalar fault path — always correct."""

    def on_access(self, page_id: int, tier_index: int,
                  is_scan: bool = False) -> None:
        """Observe an access; may migrate pages as a side effect."""

    def demote_target(self, tier_index: int) -> int | None:
        """Where evictions from a tier drain: a slower tier index, or
        None for backing storage."""

    def fast_headroom(self) -> int:
        """How many consecutive accesses :meth:`on_access` could
        observe *right now* without any side effect (migration,
        rebalance, promotion pass). The buffer pool's fast lane
        processes at most this many accesses analytically, then routes
        the next one through the scalar path so periodic triggers fire
        with exactly the state they would have seen access-by-access.
        Returning 0 disables batching (the safe default)."""

    def note_accesses(self, page_ids: Sequence[int], start: int,
                      end: int, is_scan: bool = False) -> None:
        """Observe ``page_ids[start:end]`` at once. Called by the fast
        lane only for runs within :meth:`fast_headroom`, so the
        implementation must be side-effect-equivalent to the scalar
        :meth:`on_access` loop minus the (unreachable) periodic
        triggers."""


class _BasePolicy:
    """Shared plumbing: pool binding and cascade demotion.

    Subclasses that override :meth:`on_access` with *periodic* side
    effects must override :meth:`fast_headroom` /
    :meth:`note_accesses` in tandem; the inherited defaults disable
    batching entirely, which is always correct, just slower.
    """

    def __init__(self) -> None:
        self._pool: "TieredBufferPool | None" = None

    def attach(self, pool: "TieredBufferPool") -> None:
        """Bind to the owning pool."""
        self._pool = pool

    def fast_headroom(self) -> int:
        """Conservative default: no batching, every access observed
        through :meth:`on_access`."""
        return 0

    def choose_admit_tiers(self, page_ids: np.ndarray,
                           is_scan: bool = False) -> np.ndarray | None:
        """Conservative default: no bulk answer, scalar fault path."""
        del page_ids, is_scan
        return None

    def _fill_then_steady(self, n: int, steady_tier: int) -> np.ndarray:
        """Admit tiers for *n* first-with-headroom admissions.

        Models the install feedback exactly: tier *i* receives its
        current free-slot count of admissions, then the run moves to
        tier *i+1*; once every tier is full each further fault admits
        to *steady_tier* (whose eviction cascade keeps counts pinned,
        so the answer never changes again)."""
        pool = self.pool
        frees = [
            max(0, tier.capacity_pages - pool.tier_residents(index))
            for index, tier in enumerate(pool.tiers)
        ]
        total_free = sum(frees)
        if total_free == 0:
            return np.full(n, steady_tier, dtype=np.int64)
        fill = np.repeat(
            np.arange(len(frees), dtype=np.int64),
            np.minimum(frees, n),
        )[:n]
        if fill.shape[0] >= n:
            return fill
        steady = np.full(n - fill.shape[0], steady_tier, dtype=np.int64)
        return np.concatenate([fill, steady])

    def note_accesses(self, page_ids: Sequence[int], start: int,
                      end: int, is_scan: bool = False) -> None:
        """Unreachable under the zero default headroom."""
        raise BufferPoolError(
            f"{type(self).__name__}.note_accesses called despite a"
            " zero fast_headroom; override both together"
        )

    @property
    def pool(self) -> "TieredBufferPool":
        """The bound pool (raises if unattached)."""
        if self._pool is None:
            raise BufferPoolError("policy not attached to a pool")
        return self._pool

    def demote_target(self, tier_index: int) -> int | None:
        """Cascade: tier i drains into tier i+1; the last tier drains
        to storage."""
        if tier_index + 1 < len(self.pool.tiers):
            return tier_index + 1
        return None


class StaticPolicy(_BasePolicy):
    """Fixed placement by page class; no migration.

    ``classifier`` maps a page id to a tier index. Pages never move;
    evictions drain straight to storage so tiers stay isolated (the
    HTAP property: OLTP pages can never be pushed out by OLAP pages).
    """

    def __init__(self, classifier: Callable[[int], int]) -> None:
        super().__init__()
        self.classifier = classifier

    def choose_admit_tier(self, page_id: int, is_scan: bool = False) -> int:
        """The class-assigned tier, clamped to the available tiers."""
        del is_scan
        tier = self.classifier(page_id)
        return max(0, min(tier, len(self.pool.tiers) - 1))

    def choose_admit_tiers(self, page_ids: np.ndarray,
                           is_scan: bool = False) -> np.ndarray | None:
        """Classifier per id (state-independent, so the run needs no
        install feedback), clamped in one vector op."""
        del is_scan
        classify = self.classifier
        tiers = np.fromiter(
            (classify(pid) for pid in page_ids.tolist()),
            dtype=np.int64, count=page_ids.shape[0],
        )
        return np.clip(tiers, 0, len(self.pool.tiers) - 1)

    def on_access(self, page_id: int, tier_index: int,
                  is_scan: bool = False) -> None:
        """Static placement: nothing to do."""

    def fast_headroom(self) -> int:
        """No periodic triggers: runs of any length are safe."""
        return 1 << 30

    def note_accesses(self, page_ids: Sequence[int], start: int,
                      end: int, is_scan: bool = False) -> None:
        """Static placement observes nothing."""

    # Ignores which pages were touched: the block lane may merge notes
    # across mixed-shape segments instead of calling per segment.
    note_accesses.content_blind = True

    def demote_target(self, tier_index: int) -> int | None:
        """Straight to storage — tiers are isolated."""
        return None


class OSPagingPolicy(_BasePolicy):
    """TPP-style OS page placement (ASPLOS'23, paper ref [34]).

    Behaviour modelled:

    * new pages are admitted to the fast (top) tier — TPP's
      "allocate local, demote later";
    * a sampled tracker observes a small fraction of accesses (the
      page-table access-bit scan);
    * every ``check_interval`` accesses, pages the sampler considers
      hot but that live in slow tiers are promoted, as long as the
      fast tier is below its high watermark;
    * scans are invisible: the OS cannot tell a scan from hot traffic.
    """

    def __init__(self, sample_rate: float = 0.01,
                 check_interval: int = 2_000,
                 promote_min_heat: float = 2.0,
                 high_watermark: float = 0.95,
                 low_watermark: float = 0.85,
                 max_moves_per_check: int = 64) -> None:
        super().__init__()
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise BufferPoolError("invalid watermarks")
        self.tracker = SampledTracker(sample_rate=sample_rate)
        self.check_interval = check_interval
        self.promote_min_heat = promote_min_heat
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.max_moves_per_check = max_moves_per_check
        self._accesses = 0

    def choose_admit_tier(self, page_id: int, is_scan: bool = False) -> int:
        """Admit to the fast tier if it has headroom, else the next
        tier down (first-touch NUMA-style allocation)."""
        del page_id, is_scan
        pool = self.pool
        for index, tier in enumerate(pool.tiers):
            if pool.tier_residents(index) < tier.capacity_pages:
                return index
        return len(pool.tiers) - 1

    def choose_admit_tiers(self, page_ids: np.ndarray,
                           is_scan: bool = False) -> np.ndarray | None:
        """First-touch fill, then steady admission to the last tier
        (once every tier is full the scalar loop always lands there)."""
        del is_scan
        return self._fill_then_steady(page_ids.shape[0],
                                      len(self.pool.tiers) - 1)

    def on_access(self, page_id: int, tier_index: int,
                  is_scan: bool = False) -> None:
        """Sample the access; periodically run the promotion scan."""
        del tier_index
        self.tracker.record(page_id, is_scan=is_scan)
        self._accesses += 1
        if self._accesses % self.check_interval == 0:
            self._demote_pass()
            self._promote_pass()

    def fast_headroom(self) -> int:
        """Accesses until the next demote/promote check could fire."""
        return self.check_interval - 1 - (
            self._accesses % self.check_interval
        )

    def note_accesses(self, page_ids: Sequence[int], start: int,
                      end: int, is_scan: bool = False) -> None:
        """Feed the sampler and advance the check counter; by the
        headroom contract no check boundary lies inside the run."""
        self.tracker.record_batch(page_ids, start, end, is_scan=is_scan)
        self._accesses += end - start

    def _demote_pass(self) -> None:
        """kswapd-style: keep the fast tier below its high watermark by
        demoting the coldest (least-sampled) pages to the next tier."""
        pool = self.pool
        if len(pool.tiers) < 2:
            return
        fast = pool.tiers[0]
        high = int(fast.capacity_pages * self.high_watermark)
        low = int(fast.capacity_pages * self.low_watermark)
        if pool.tier_residents(0) < high:
            return
        budget = self.max_moves_per_check
        residents = sorted(pool.resident_in(0), key=self.tracker.heat)
        for page_id in residents:
            if budget == 0 or pool.tier_residents(0) <= low:
                break
            frame = pool.frame_of(page_id)
            if frame is None or frame.pinned:
                continue
            pool.migrate(page_id, 1)
            budget -= 1

    def _promote_pass(self) -> None:
        pool = self.pool
        fast = pool.tiers[0]
        budget = self.max_moves_per_check
        limit = int(fast.capacity_pages * self.high_watermark)
        for page_id in self.tracker.hottest(4 * budget):
            if budget == 0:
                break
            if pool.tier_residents(0) >= limit:
                break
            if self.tracker.heat(page_id) < self.promote_min_heat:
                break
            frame = pool.frame_of(page_id)
            if frame is None or frame.tier_index == 0 or frame.pinned:
                continue
            pool.migrate(page_id, 0)
            budget -= 1


class DbCostPolicy(_BasePolicy):
    """Engine-driven cost-based placement (the paper's position).

    The engine tracks exact, scan-discounted page heat and periodically
    re-solves the placement: the hottest pages belong in the fastest
    tier. Pages faulted in by scans are admitted directly to the CXL
    tier so a one-shot analytical scan never displaces the
    transactional working set (Sec 3.1's HTAP motivation).
    """

    def __init__(self, rebalance_interval: int = 5_000,
                 max_moves_per_rebalance: int = 128,
                 scan_admit_slow: bool = True,
                 tracker: ExactTracker | None = None) -> None:
        super().__init__()
        self.rebalance_interval = rebalance_interval
        self.max_moves_per_rebalance = max_moves_per_rebalance
        self.scan_admit_slow = scan_admit_slow
        self._tracker = tracker
        self._accesses = 0

    def attach(self, pool: "TieredBufferPool") -> None:
        """Bind and share the pool's exact tracker."""
        super().attach(pool)
        if self._tracker is None:
            tracker = pool.tracker
            if not isinstance(tracker, ExactTracker):
                tracker = ExactTracker()
            self._tracker = tracker

    @property
    def tracker(self) -> ExactTracker:
        """The engine-side exact temperature tracker."""
        if self._tracker is None:
            raise BufferPoolError("policy not attached to a pool")
        return self._tracker

    def choose_admit_tier(self, page_id: int, is_scan: bool = False) -> int:
        """Admit scans to the slow tier; everything else to the
        fastest tier with headroom."""
        pool = self.pool
        if is_scan and self.scan_admit_slow and len(pool.tiers) > 1:
            return 1
        for index, tier in enumerate(pool.tiers):
            if pool.tier_residents(index) < tier.capacity_pages:
                return index
        return 0

    def choose_admit_tiers(self, page_ids: np.ndarray,
                           is_scan: bool = False) -> np.ndarray | None:
        """Scans admit straight to the slow tier (state-independent);
        point faults fill first-with-headroom then steady at tier 0."""
        pool = self.pool
        if is_scan and self.scan_admit_slow and len(pool.tiers) > 1:
            return np.ones(page_ids.shape[0], dtype=np.int64)
        return self._fill_then_steady(page_ids.shape[0], 0)

    def on_access(self, page_id: int, tier_index: int,
                  is_scan: bool = False) -> None:
        """Count accesses; rebalance placement periodically."""
        del page_id, tier_index, is_scan  # pool already fed the tracker
        self._accesses += 1
        if self._accesses % self.rebalance_interval == 0:
            self.rebalance()

    def fast_headroom(self) -> int:
        """Accesses until the next rebalance could fire."""
        return self.rebalance_interval - 1 - (
            self._accesses % self.rebalance_interval
        )

    def note_accesses(self, page_ids: Sequence[int], start: int,
                      end: int, is_scan: bool = False) -> None:
        """Advance the rebalance counter (the pool feeds the shared
        tracker); by the headroom contract no rebalance boundary lies
        inside the run."""
        del page_ids, is_scan
        self._accesses += end - start

    # Only the count matters (the pool feeds the shared tracker), so
    # the block lane may merge notes across mixed-shape segments.
    note_accesses.content_blind = True

    def rebalance(self) -> int:
        """Promote the hottest misplaced pages / demote the coldest.

        Returns the number of migrations performed. The solve is
        greedy: compare the heat of slow-tier pages against the
        coldest fast-tier residents and swap while profitable.
        """
        pool = self.pool
        if len(pool.tiers) < 2:
            return 0
        tracker = self.tracker
        fast_capacity = pool.tiers[0].capacity_pages

        def residents(tier_range):
            chunks = [pool.resident_ids_in(i) for i in tier_range]
            return chunks[0] if len(chunks) == 1 else \
                np.concatenate(chunks)

        slow_tiers = range(1, len(pool.tiers))
        fast_residents = residents(range(1))
        slow_residents = residents(slow_tiers)
        moves = 0
        # Fill unused fast capacity with the hottest slow pages.
        headroom = fast_capacity - len(fast_residents)
        if headroom > 0:
            candidates = self._sorted_by_heat(
                slow_residents, reverse=True
            )[:headroom]
            for page_id in candidates:
                if moves >= self.max_moves_per_rebalance:
                    return moves
                if self._movable(page_id):
                    pool.migrate(page_id, 0)
                    moves += 1
            fast_residents = residents(range(1))
            slow_residents = residents(slow_tiers)
        # Swap: hottest slow page vs coldest fast page.
        hot_slow, hs = self._sorted_with_heat(slow_residents,
                                              reverse=True)
        cold_fast, hf = self._sorted_with_heat(fast_residents)
        pairs = min(len(hot_slow), len(cold_fast))
        if hs is not None and hf is not None:
            # Heat is static during the solve, so the profitability
            # break falls at the first unprofitable pair — found with
            # one vectorized compare instead of two heat calls a pair.
            ok = hs[:pairs] > hf[:pairs] + 1e-9
            pairs = pairs if ok.all() else int(ok.argmin())
        for i in range(pairs):
            slow_pid = hot_slow[i]
            fast_pid = cold_fast[i]
            if moves + 2 > self.max_moves_per_rebalance:
                break
            if (hs is None or hf is None) and \
                    tracker.heat(slow_pid) <= \
                    tracker.heat(fast_pid) + 1e-9:
                break
            if not (self._movable(slow_pid) and self._movable(fast_pid)):
                continue
            pool.migrate(fast_pid, 1)
            pool.migrate(slow_pid, 0)
            moves += 2
        return moves

    def _sorted_by_heat(self, page_ids: "Sequence[int] | np.ndarray",
                        reverse: bool = False) -> list[int]:
        """Residents ordered by tracker heat, ties in input order."""
        return self._sorted_with_heat(page_ids, reverse)[0]

    def _sorted_with_heat(
            self, page_ids: "Sequence[int] | np.ndarray",
            reverse: bool = False,
    ) -> tuple[list[int], np.ndarray | None]:
        """Residents ordered by tracker heat, ties in input order,
        plus the heats in that order when bulk gathering is available.

        One bulk heat gather plus a stable argsort — the same
        permutation ``sorted(page_ids, key=tracker.heat)`` produces,
        without a python call per key."""
        heat_array = getattr(self.tracker, "heat_array", None)
        if heat_array is None or len(page_ids) < 64:
            if isinstance(page_ids, np.ndarray):
                # Downstream (migrate, trace spans) expects plain ints.
                page_ids = page_ids.tolist()
            return (sorted(page_ids, key=self.tracker.heat,
                           reverse=reverse), None)
        ids = np.asarray(page_ids, dtype=np.int64)
        heats = heat_array(ids)
        order = np.argsort(-heats if reverse else heats, kind="stable")
        return ids[order].tolist(), heats[order]

    def _movable(self, page_id: int) -> bool:
        frame = self.pool.frame_of(page_id)
        return frame is not None and not frame.pin_count
