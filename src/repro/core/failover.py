"""End-to-end failover: what CXL buys when an engine dies (Sec 2.6 +
Sec 3.2 combined).

Downtime decomposes into detection + takeover:

* **CXL-pooled engine** — the fabric's RAS surfaces the failure in
  microseconds; a standby host warm-attaches the pooled buffer slice
  (no state copy) and replays the tail of a log that lives in CXL
  NVM at memory speed.
* **Classic engine** — heartbeat timeouts burn hundreds of
  milliseconds before anyone reacts; the standby restarts cold,
  re-reads its working set from NVMe, and replays the log from NVMe.

The orchestrator composes the models built elsewhere in this package
(RAS monitors, elastic warm attach, WAL backends) into one number a
database operator cares about: seconds of unavailability.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..sim.ras import RASMonitor, TimeoutMonitor
from ..storage.disk import StorageDevice
from ..units import GBPS, PAGE_SIZE, transfer_time_ns, us
from .elastic import ElasticCluster
from .wal import CXLNVMLogBackend, NVMeLogBackend


@dataclass
class FailoverOutcome:
    """Downtime breakdown for one failover strategy."""

    name: str
    detection_ns: float
    state_recovery_ns: float
    log_replay_ns: float

    @property
    def total_downtime_ns(self) -> float:
        """Failure to back-in-service."""
        return (self.detection_ns + self.state_recovery_ns
                + self.log_replay_ns)


class FailoverOrchestrator:
    """Composes detection, state recovery, and log replay costs."""

    #: Rate at which the recovering engine applies log records.
    APPLY_RATE = 2.0 * GBPS

    def __init__(self, working_set_pages: int = 500_000,
                 log_tail_bytes: int = 64 * 1024 * 1024) -> None:
        if working_set_pages <= 0 or log_tail_bytes <= 0:
            raise ConfigError("working set and log tail must be positive")
        self.working_set_pages = working_set_pages
        self.log_tail_bytes = log_tail_bytes

    def cxl_pooled(self) -> FailoverOutcome:
        """RAS detection + warm attach + CXL-NVM log replay."""
        detection = RASMonitor().detection_latency_ns
        # The buffer pool and engine state live in the pool: takeover
        # is a remap, not a copy.
        recovery = ElasticCluster.ATTACH_OVERHEAD_NS + us(50.0)
        log = CXLNVMLogBackend.build()
        replay = (log.path.read_time_sequential(self.log_tail_bytes)
                  + transfer_time_ns(self.log_tail_bytes,
                                     self.APPLY_RATE))
        return FailoverOutcome(
            name="cxl-pooled",
            detection_ns=detection,
            state_recovery_ns=recovery,
            log_replay_ns=replay,
        )

    def classic(self) -> FailoverOutcome:
        """Timeout detection + cold restart from NVMe + NVMe replay."""
        monitor = TimeoutMonitor()
        # Expected detection: failure lands uniformly inside an
        # interval, plus (threshold - 1) further intervals.
        detection = monitor.heartbeat_interval_ns * (
            0.5 + monitor.miss_threshold
        )
        disk = StorageDevice()
        working_set_bytes = self.working_set_pages * PAGE_SIZE
        recovery = disk.read_time(working_set_bytes)
        log = NVMeLogBackend(StorageDevice())
        replay = (log.device.read_time(self.log_tail_bytes)
                  + transfer_time_ns(self.log_tail_bytes,
                                     self.APPLY_RATE))
        return FailoverOutcome(
            name="classic",
            detection_ns=detection,
            state_recovery_ns=recovery,
            log_replay_ns=replay,
        )

    def compare(self) -> tuple[FailoverOutcome, FailoverOutcome, float]:
        """Returns (pooled, classic, downtime ratio classic/pooled)."""
        pooled = self.cxl_pooled()
        classic = self.classic()
        ratio = classic.total_downtime_ns / pooled.total_downtime_ns
        return pooled, classic, ratio
