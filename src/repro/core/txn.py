"""Transaction execution under two-phase locking.

A deterministic concurrency model shared by the scale-up and scale-out
engines: transactions are greedily scheduled onto worker threads; each
transaction computes its cost (lock operations + data accesses +
commit) from the engine's cost model, and a *timed* lock table makes
conflicting transactions wait for the holder's completion, exactly the
serialization 2PL would impose. Throughput falls out of the makespan.

This turns the paper's Sec 3.3 comparison — shared-memory locking at
CXL latency vs distributed locking and 2PC at RDMA latency — into a
direct, measurable contest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigError, TransactionError
from ..sim.context import SimContext
from ..units import SECOND
from ..workloads.tpcc import RecordOp, Transaction
from .locks import LockMode


@dataclass
class _TimedHold:
    mode: LockMode
    expiry_ns: float


class TimedLockTable:
    """Lock holds with expiry times instead of explicit release.

    A transaction scheduled to run in [start, finish) registers its
    holds with expiry ``finish``. A later transaction needing an
    incompatible lock must start at or after that expiry. Lazy pruning
    keeps entries bounded.
    """

    def __init__(self) -> None:
        self._holds: dict[object, list[_TimedHold]] = {}
        self.waits = 0
        self.wait_time_ns = 0.0

    def earliest_start(self, keys: list[tuple[object, LockMode]],
                       not_before_ns: float) -> float:
        """Earliest instant >= *not_before_ns* at which every lock in
        *keys* is available."""
        start = not_before_ns
        for key, mode in keys:
            holds = self._holds.get(key)
            if not holds:
                continue
            for hold in holds:
                if hold.expiry_ns <= start:
                    continue
                if mode is LockMode.EXCLUSIVE or \
                        hold.mode is LockMode.EXCLUSIVE:
                    start = hold.expiry_ns
        if start > not_before_ns:
            self.waits += 1
            self.wait_time_ns += start - not_before_ns
        return start

    def register(self, keys: list[tuple[object, LockMode]],
                 expiry_ns: float) -> None:
        """Record the holds of a scheduled transaction."""
        for key, mode in keys:
            self._holds.setdefault(key, []).append(
                _TimedHold(mode=mode, expiry_ns=expiry_ns)
            )

    def prune(self, now_ns: float) -> None:
        """Drop holds that expired before *now_ns*."""
        for key in list(self._holds):
            live = [h for h in self._holds[key] if h.expiry_ns > now_ns]
            if live:
                self._holds[key] = live
            else:
                del self._holds[key]


@dataclass
class OLTPReport:
    """Outcome of an OLTP run."""

    name: str
    transactions: int = 0
    makespan_ns: float = 0.0
    busy_ns: float = 0.0
    lock_wait_ns: float = 0.0
    remote_ops: int = 0
    distributed_txns: int = 0
    threads: int = 1
    latency_sum_ns: float = 0.0

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per second of virtual time."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.transactions / self.makespan_ns * SECOND

    @property
    def mean_latency_ns(self) -> float:
        """Mean transaction latency (including lock waits)."""
        if self.transactions == 0:
            return 0.0
        return self.latency_sum_ns / self.transactions

    def __str__(self) -> str:
        return (
            f"OLTPReport({self.name}: {self.transactions:,} txns,"
            f" {self.throughput_tps:,.0f} tps,"
            f" mean={self.mean_latency_ns:.0f}ns,"
            f" waits={self.lock_wait_ns / max(self.makespan_ns, 1):.1%})"
        )


#: Computes the pure execution cost (ns) of one transaction,
#: excluding lock waits. Returns (cost_ns, remote_ops).
CostModel = Callable[[Transaction], tuple[float, int]]
#: Maps a record op to its lock key.
LockKeyFn = Callable[[RecordOp], object]


def default_lock_key(op: RecordOp) -> object:
    """Record-granularity lock key."""
    return (op.table, op.warehouse, op.key)


class TwoPhaseLockingExecutor:
    """Greedy 2PL scheduler over a fixed thread pool.

    Transactions are assigned to the least-loaded thread; each starts
    at the earliest instant its whole lock set is free (strict 2PL
    with waiting, no deadlocks because lock sets are acquired
    atomically at schedule time).
    """

    def __init__(self, cost_model: CostModel, threads: int = 8,
                 lock_key: LockKeyFn = default_lock_key,
                 name: str = "2pl",
                 ctx: SimContext | None = None) -> None:
        if threads <= 0:
            raise ConfigError("need at least one thread")
        self.cost_model = cost_model
        self.threads = threads
        self.lock_key = lock_key
        self.name = name
        self.lock_table = TimedLockTable()
        self.ctx = ctx
        self._last_report: OLTPReport | None = None
        if ctx is not None:
            ctx.register(f"oltp.{name}", self)

    def execute(self, transactions: list[Transaction]) -> OLTPReport:
        """Schedule all transactions; returns the run report."""
        if not transactions:
            raise TransactionError("no transactions to execute")
        thread_clock = [0.0] * self.threads
        report = OLTPReport(name=self.name, threads=self.threads)
        table = self.lock_table
        prune_counter = 0
        for txn in transactions:
            thread = min(range(self.threads), key=thread_clock.__getitem__)
            ready = thread_clock[thread]
            keys = self._lock_set(txn)
            start = table.earliest_start(keys, ready)
            cost, remote_ops = self.cost_model(txn)
            finish = start + cost
            table.register(keys, finish)
            thread_clock[thread] = finish
            report.transactions += 1
            report.busy_ns += cost
            report.lock_wait_ns += start - ready
            report.latency_sum_ns += finish - ready
            report.remote_ops += remote_ops
            if txn.remote:
                report.distributed_txns += 1
            prune_counter += 1
            if prune_counter % 512 == 0:
                table.prune(min(thread_clock))
        report.makespan_ns = max(thread_clock)
        self._last_report = report
        ctx = self.ctx
        if ctx is not None:
            if ctx.trace.enabled:
                ctx.trace.emit_span(
                    f"oltp:{self.name}", "txn", 0.0, report.makespan_ns,
                    {"transactions": report.transactions,
                     "threads": report.threads},
                )
            ctx.metrics.incr(f"oltp.{self.name}.executions")
        return report

    def snapshot(self) -> dict:
        """Scheduler accounting (metrics snapshot protocol)."""
        snap: dict = {
            "threads": self.threads,
            "lock_waits": self.lock_table.waits,
            "lock_wait_time_ns": self.lock_table.wait_time_ns,
        }
        report = self._last_report
        if report is not None:
            snap["transactions"] = report.transactions
            snap["makespan_ns"] = report.makespan_ns
            snap["busy_ns"] = report.busy_ns
            snap["remote_ops"] = report.remote_ops
            snap["distributed_txns"] = report.distributed_txns
        return snap

    def _lock_set(self, txn: Transaction) -> list[tuple[object, LockMode]]:
        keys: dict[object, LockMode] = {}
        for op in txn.ops:
            key = self.lock_key(op)
            mode = LockMode.EXCLUSIVE if op.write else LockMode.SHARED
            if key not in keys or mode is LockMode.EXCLUSIVE:
                keys[key] = mode
        return list(keys.items())
