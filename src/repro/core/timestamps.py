"""Timestamp oracles over the memory hierarchy (Sec 4).

The paper suggests CXL can improve "fundamental mechanisms that are
central to OLTP, such as collective communication, locking,
timestamps". A timestamp oracle is the cleanest case: every
transaction needs a monotonically increasing number, and the cost of
getting one bounds commit throughput.

Three implementations are modelled:

* :class:`LocalAtomicOracle` — a fetch-and-add in one host's DRAM:
  fastest, but only reachable by that host's threads; other hosts
  need an RPC (that's :class:`RPCOracle` for them);
* :class:`CXLSharedOracle` — a fetch-and-add on a line in shared CXL
  memory: every host pays one fabric RFO, no server component;
* :class:`RPCOracle` — the scale-out answer: a timestamp server
  reached over RDMA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import config
from ..errors import ConfigError
from ..sim.interconnect import AccessPath, Link
from ..sim.memory import MemoryDevice
from ..sim.rdma import RDMAFabric
from ..units import SECOND


@dataclass
class OracleStats:
    """Issued-timestamp accounting."""

    issued: int = 0
    time_ns: float = 0.0

    @property
    def mean_cost_ns(self) -> float:
        """Mean cost per timestamp."""
        if self.issued == 0:
            return 0.0
        return self.time_ns / self.issued


class LocalAtomicOracle:
    """Fetch-and-add in the owning host's DRAM (same-host callers)."""

    name = "local-atomic"

    def __init__(self, path: AccessPath | None = None) -> None:
        self.path = path or AccessPath(
            device=MemoryDevice(config.local_ddr5()))
        self.stats = OracleStats()
        self._counter = 0

    def next_timestamp(self) -> tuple[int, float]:
        """Returns (timestamp, cost in ns)."""
        self._counter += 1
        # Atomic RMW on a local line: one cache-coherent access.
        cost = self.path.read_latency_ns()
        self.stats.issued += 1
        self.stats.time_ns += cost
        return self._counter, cost


class CXLSharedOracle:
    """Fetch-and-add on a line in rack-shared CXL memory.

    Any host's thread can call this; the cost is one read-for-
    ownership on the fabric. Under contention the line ping-pongs, so
    an expected serialization term scales with the number of
    concurrently incrementing hosts.
    """

    name = "cxl-shared"

    def __init__(self, path: AccessPath | None = None,
                 contending_hosts: int = 1) -> None:
        if contending_hosts < 1:
            raise ConfigError("need at least one host")
        if path is None:
            device = MemoryDevice(config.cxl_expander_ddr5())
            path = AccessPath(device=device, links=(
                Link(config.cxl_port()), Link(config.cxl_switch_hop()),
            ))
        self.path = path
        self.contending_hosts = contending_hosts
        self.stats = OracleStats()
        self._counter = 0

    def next_timestamp(self) -> tuple[int, float]:
        """Returns (timestamp, cost in ns)."""
        self._counter += 1
        rfo = self.path.read_latency_ns()
        # Expected wait for the line while other hosts hold it in M.
        contention = rfo * 0.5 * (self.contending_hosts - 1)
        cost = rfo + contention
        self.stats.issued += 1
        self.stats.time_ns += cost
        return self._counter, cost


class RPCOracle:
    """A timestamp server reached over the network (scale-out)."""

    name = "rpc"

    def __init__(self, fabric: RDMAFabric | None = None,
                 batch: int = 1) -> None:
        if batch < 1:
            raise ConfigError("batch must be >= 1")
        if fabric is None:
            fabric = RDMAFabric()
            fabric.add_host("client")
            fabric.add_host("tso")
        self.fabric = fabric
        self.batch = batch
        self.stats = OracleStats()
        self._counter = 0
        self._cached: int = 0

    def next_timestamp(self) -> tuple[int, float]:
        """Returns (timestamp, cost in ns). Batching amortizes the
        round trip over ``batch`` timestamps (TSO leases)."""
        self._counter += 1
        if self._cached == 0:
            cost = self.fabric.rpc_time("client", "tso", 64, 64)
            self._cached = self.batch
        else:
            cost = 5.0  # consume from the leased range
        self._cached -= 1
        self.stats.issued += 1
        self.stats.time_ns += cost
        return self._counter, cost


@dataclass
class OracleComparison:
    """Throughput bound per oracle at a given host count."""

    rows: list[tuple[str, float, float]] = field(default_factory=list)

    def add(self, name: str, mean_cost_ns: float) -> None:
        """Record one oracle's mean cost."""
        bound = SECOND / mean_cost_ns if mean_cost_ns > 0 else 0.0
        self.rows.append((name, mean_cost_ns, bound))


def compare_oracles(hosts: int = 4, draws: int = 2_000,
                    rpc_batch: int = 1) -> OracleComparison:
    """Issue *draws* timestamps from each oracle; return mean costs."""
    comparison = OracleComparison()
    local = LocalAtomicOracle()
    shared = CXLSharedOracle(contending_hosts=hosts)
    rpc = RPCOracle(batch=rpc_batch)
    for oracle in (local, shared, rpc):
        for _ in range(draws):
            oracle.next_timestamp()
        comparison.add(oracle.name, oracle.stats.mean_cost_ns)
    return comparison
