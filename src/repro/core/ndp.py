"""Near-data processing on CXL controllers (Sec 4, Fig 3).

The CXL coherency controller fronts the expander's DRAM, so it can be
"co-opted to perform computations over the data it transports". Two
mechanisms from the paper:

* **Operator offload** (Fig 3a): the controller runs selection /
  projection / aggregation against the expander's *internal* DRAM
  bandwidth and ships only results over the fabric, while the host
  path must pull every byte through the CXL port first. Because CXL
  keeps both sides coherent — and the lock table can be shared — host
  and controller can partition the same scan and run in parallel
  (:meth:`NDPController.parallel_filter_time`), which classic
  non-coherent NDP could not do.
* **Active memory regions** (Fig 3b): an address range not backed by
  DRAM; reads trigger a streaming computation whose results flow to
  the reader without ever being materialized
  (:class:`ActiveMemoryRegion`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..sim.context import SimContext
from ..sim.interconnect import AccessPath
from ..units import GBPS, PAGE_SIZE, transfer_time_ns


@dataclass(frozen=True)
class OffloadResult:
    """Timing and traffic outcome of one offloaded (or host) operator."""

    time_ns: float
    fabric_bytes: int
    compute_bytes: int

    @property
    def effective_scan_rate(self) -> float:
        """Bytes scanned per ns."""
        if self.time_ns <= 0:
            return 0.0
        return self.compute_bytes / self.time_ns


class NDPController:
    """A compute-capable CXL controller in front of an expander.

    ``scan_rate`` is the controller's filtering throughput against the
    device's internal DRAM (an FPGA/ASIC datapath — it sees the raw
    DIMM bandwidth, not the CXL port), so it is calibrated *above* the
    CXL port bandwidth that gates the host path. ``host_scan_rate`` is
    a multicore host's filter throughput — high enough that the host
    is usually transfer-bound, not compute-bound. ``op_latency_ns`` is
    the fixed offload invocation cost (doorbell + completion).
    """

    def __init__(self, path: AccessPath,
                 scan_rate: float = 100.0 * GBPS,
                 op_latency_ns: float = 1_000.0,
                 host_scan_rate: float = 80.0 * GBPS,
                 ctx: SimContext | None = None) -> None:
        if scan_rate <= 0 or host_scan_rate <= 0:
            raise ConfigError("scan rates must be positive")
        self.path = path
        self.scan_rate = scan_rate
        self.op_latency_ns = op_latency_ns
        self.host_scan_rate = host_scan_rate
        #: Internal bandwidth: the device's raw DRAM channels.
        self.internal_bandwidth = path.device.spec.peak_bandwidth
        self.host_queries = 0
        self.offload_queries = 0
        self.fabric_bytes_shipped = 0
        self.bytes_scanned = 0
        self.ctx = ctx
        if ctx is not None:
            ctx.register("ndp", self)

    # -- host-side baseline -----------------------------------------------------

    def host_filter_time(self, num_pages: int, selectivity: float,
                         page_size: int = PAGE_SIZE) -> OffloadResult:
        """Scan on the host: pull every page over the fabric, filter
        at the host's scan rate (transfer and compute pipelined)."""
        self._check(num_pages, selectivity)
        total = num_pages * page_size
        transfer = transfer_time_ns(total, self.path.read_bandwidth)
        compute = transfer_time_ns(total, self.host_scan_rate)
        time_ns = self.path.read_latency_ns() + max(transfer, compute)
        self.host_queries += 1
        self.fabric_bytes_shipped += total
        self.bytes_scanned += total
        return OffloadResult(
            time_ns=time_ns, fabric_bytes=total, compute_bytes=total
        )

    # -- offloaded operators -------------------------------------------------------

    def offload_filter_time(self, num_pages: int, selectivity: float,
                            page_size: int = PAGE_SIZE) -> OffloadResult:
        """Filter on the controller: scan at min(internal bandwidth,
        controller rate), ship only matches over the fabric."""
        self._check(num_pages, selectivity)
        total = num_pages * page_size
        result_bytes = int(total * selectivity)
        scan = transfer_time_ns(
            total, min(self.internal_bandwidth, self.scan_rate)
        )
        shipping = transfer_time_ns(
            result_bytes, self.path.read_bandwidth
        ) if result_bytes else 0.0
        time_ns = self.op_latency_ns + max(scan, shipping) \
            + self.path.read_latency_ns()
        self.offload_queries += 1
        self.fabric_bytes_shipped += result_bytes
        self.bytes_scanned += total
        return OffloadResult(
            time_ns=time_ns, fabric_bytes=result_bytes, compute_bytes=total
        )

    def offload_aggregate_time(self, num_pages: int,
                               page_size: int = PAGE_SIZE) -> OffloadResult:
        """Aggregate on the controller: full scan, one line back."""
        result = self.offload_filter_time(
            num_pages, selectivity=0.0, page_size=page_size
        )
        return OffloadResult(
            time_ns=result.time_ns + self.path.read_time(64),
            fabric_bytes=64,
            compute_bytes=result.compute_bytes,
        )

    def parallel_filter_time(self, num_pages: int, selectivity: float,
                             host_fraction: float = 0.5,
                             page_size: int = PAGE_SIZE) -> OffloadResult:
        """Host and controller filter disjoint partitions in parallel.

        Possible only because coherence lets both sides share the data
        and the lock table (Sec 4); makespan is the slower side.
        """
        if not 0.0 <= host_fraction <= 1.0:
            raise ConfigError("host_fraction must be in [0,1]")
        host_pages = int(num_pages * host_fraction)
        device_pages = num_pages - host_pages
        host = self.host_filter_time(max(host_pages, 1), selectivity,
                                     page_size) \
            if host_pages else OffloadResult(0.0, 0, 0)
        device = self.offload_filter_time(max(device_pages, 1), selectivity,
                                          page_size) \
            if device_pages else OffloadResult(0.0, 0, 0)
        return OffloadResult(
            time_ns=max(host.time_ns, device.time_ns),
            fabric_bytes=host.fabric_bytes + device.fabric_bytes,
            compute_bytes=host.compute_bytes + device.compute_bytes,
        )

    def best_host_fraction(self, num_pages: int, selectivity: float,
                           page_size: int = PAGE_SIZE,
                           steps: int = 20) -> float:
        """Grid-search the work split minimizing the parallel makespan."""
        best_f, best_t = 0.0, float("inf")
        for i in range(steps + 1):
            fraction = i / steps
            t = self.parallel_filter_time(
                num_pages, selectivity, fraction, page_size
            ).time_ns
            if t < best_t:
                best_f, best_t = fraction, t
        return best_f

    def snapshot(self) -> dict:
        """Controller accounting (metrics snapshot protocol)."""
        return {
            "host_queries": self.host_queries,
            "offload_queries": self.offload_queries,
            "fabric_bytes_shipped": self.fabric_bytes_shipped,
            "bytes_scanned": self.bytes_scanned,
            "scan_rate_bytes_per_ns": self.scan_rate,
        }

    @staticmethod
    def _check(num_pages: int, selectivity: float) -> None:
        if num_pages <= 0:
            raise ConfigError("num_pages must be positive")
        if not 0.0 <= selectivity <= 1.0:
            raise ConfigError("selectivity must be in [0,1]")


@dataclass(frozen=True)
class NDPOpSpec:
    """One offloadable operator (Sec 4's candidate list).

    ``output_ratio`` is output bytes per input byte — the quantity
    that decides where the operator belongs: an operator that shrinks
    data (compression, selection, LIKE) saves fabric traffic when it
    runs near the data, while one that expands data (decompression)
    *increases* fabric traffic when offloaded.
    """

    name: str
    controller_rate: float  # bytes/ns through the controller datapath
    host_rate: float        # bytes/ns on host cores
    output_ratio: float

    def __post_init__(self) -> None:
        if self.controller_rate <= 0 or self.host_rate <= 0:
            raise ConfigError(f"{self.name}: rates must be positive")
        if self.output_ratio <= 0:
            raise ConfigError(f"{self.name}: output ratio must be > 0")


#: The operator candidates Sec 4 enumerates, with representative rates
#: (controller = dedicated datapath; host = multicore software).
NDP_OPERATORS: dict[str, NDPOpSpec] = {
    "selection": NDPOpSpec("selection", 100.0 * GBPS, 80.0 * GBPS, 0.05),
    "projection": NDPOpSpec("projection", 100.0 * GBPS, 80.0 * GBPS, 0.25),
    "like_filter": NDPOpSpec("like_filter", 60.0 * GBPS, 8.0 * GBPS, 0.02),
    "compression": NDPOpSpec("compression", 40.0 * GBPS, 3.0 * GBPS, 0.35),
    "decompression": NDPOpSpec("decompression", 40.0 * GBPS,
                               24.0 * GBPS, 3.0),
    "encryption": NDPOpSpec("encryption", 50.0 * GBPS, 10.0 * GBPS, 1.0),
    "decryption": NDPOpSpec("decryption", 50.0 * GBPS, 10.0 * GBPS, 1.0),
}


@dataclass(frozen=True)
class OpPlacement:
    """Outcome of deciding where one operator runs."""

    op: str
    offload: bool
    host_time_ns: float
    ndp_time_ns: float
    host_fabric_bytes: int
    ndp_fabric_bytes: int

    @property
    def speedup(self) -> float:
        """Host time over offloaded time (>1 favors offload)."""
        if self.ndp_time_ns <= 0:
            return 1.0
        return self.host_time_ns / self.ndp_time_ns


class NDPOperatorLibrary:
    """Cost model for the Sec 4 operator candidates on one controller.

    The source data lives in the expander; the consumer is the host.
    Host execution pulls the input over the fabric and computes
    locally; offloaded execution computes on the controller against
    internal DRAM and ships only the output.
    """

    def __init__(self, path: AccessPath,
                 op_latency_ns: float = 1_000.0,
                 operators: dict[str, NDPOpSpec] | None = None) -> None:
        self.path = path
        self.op_latency_ns = op_latency_ns
        self.operators = dict(operators or NDP_OPERATORS)

    def _spec(self, op: str) -> NDPOpSpec:
        try:
            return self.operators[op]
        except KeyError:
            raise ConfigError(
                f"unknown NDP operator {op!r};"
                f" have {sorted(self.operators)}"
            ) from None

    def host_time_ns(self, op: str, input_bytes: int) -> float:
        """Pull input over the fabric, compute on the host (pipelined)."""
        spec = self._spec(op)
        transfer = transfer_time_ns(input_bytes, self.path.read_bandwidth)
        compute = transfer_time_ns(input_bytes, spec.host_rate)
        return self.path.read_latency_ns() + max(transfer, compute)

    def offload_time_ns(self, op: str, input_bytes: int) -> float:
        """Compute on the controller, ship the output (pipelined)."""
        spec = self._spec(op)
        compute = transfer_time_ns(
            input_bytes,
            min(spec.controller_rate,
                self.path.device.spec.peak_bandwidth),
        )
        output = int(input_bytes * spec.output_ratio)
        shipping = transfer_time_ns(output, self.path.read_bandwidth) \
            if output else 0.0
        return (self.op_latency_ns + self.path.read_latency_ns()
                + max(compute, shipping))

    def place(self, op: str, input_bytes: int) -> OpPlacement:
        """Decide where the operator should run."""
        spec = self._spec(op)
        host = self.host_time_ns(op, input_bytes)
        ndp = self.offload_time_ns(op, input_bytes)
        return OpPlacement(
            op=op,
            offload=ndp < host,
            host_time_ns=host,
            ndp_time_ns=ndp,
            host_fabric_bytes=input_bytes,
            ndp_fabric_bytes=int(input_bytes * spec.output_ratio),
        )

    def placement_table(self, input_bytes: int) -> list[OpPlacement]:
        """Placement decision for every operator in the library."""
        return [self.place(op, input_bytes)
                for op in sorted(self.operators)]


class ActiveMemoryRegion:
    """A computed address range: reads trigger a streaming computation.

    ``compute_rate`` is how fast the controller produces view bytes
    from ``expansion`` source bytes each (e.g. a projection producing
    1 view byte per 4 source bytes has expansion 4). Streaming reads
    overlap production with fabric shipping; the materialized baseline
    produces the whole view into expander DRAM first, then ships it.
    """

    def __init__(self, path: AccessPath, view_bytes: int,
                 compute_rate: float = 20.0 * GBPS,
                 expansion: float = 1.0,
                 setup_ns: float = 2_000.0) -> None:
        if view_bytes <= 0:
            raise ConfigError("view_bytes must be positive")
        if compute_rate <= 0 or expansion <= 0:
            raise ConfigError("compute_rate and expansion must be positive")
        self.path = path
        self.view_bytes = view_bytes
        self.compute_rate = compute_rate
        self.expansion = expansion
        self.setup_ns = setup_ns

    def _production_time(self, nbytes: int) -> float:
        source = nbytes * self.expansion
        scan = transfer_time_ns(
            source, min(self.path.device.spec.peak_bandwidth,
                        self.compute_rate * self.expansion)
        )
        return scan

    def streaming_read_time(self, nbytes: int | None = None) -> float:
        """Read the view through the active region: production and
        shipping pipeline; nothing is materialized."""
        nbytes = self.view_bytes if nbytes is None else nbytes
        if not 0 < nbytes <= self.view_bytes:
            raise ConfigError(f"invalid read size {nbytes}")
        ship = transfer_time_ns(nbytes, self.path.read_bandwidth)
        return (self.setup_ns + self.path.read_latency_ns()
                + max(self._production_time(nbytes), ship))

    def materialized_read_time(self, nbytes: int | None = None) -> float:
        """Baseline: materialize the whole view in expander DRAM,
        then read the requested bytes over the fabric."""
        nbytes = self.view_bytes if nbytes is None else nbytes
        if not 0 < nbytes <= self.view_bytes:
            raise ConfigError(f"invalid read size {nbytes}")
        produce = self._production_time(self.view_bytes)
        write_back = transfer_time_ns(
            self.view_bytes, self.path.device.spec.effective_store_bandwidth
        )
        ship = transfer_time_ns(nbytes, self.path.read_bandwidth)
        return (self.setup_ns + produce + write_back
                + self.path.read_latency_ns() + ship)
