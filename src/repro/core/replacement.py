"""Buffer replacement policies.

Classic database eviction policies, each implementing
:class:`ReplacementPolicy`. They operate on opaque integer keys (page
ids within one tier) and must tolerate a *pinned* predicate: pinned
pages cannot be chosen as victims.

The paper (Sec 3.1) argues a database engine "can better calculate the
utility of keeping a page in a given memory tier than the OS" [11];
these policies are the engine-side machinery that claim rests on.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from itertools import islice
from typing import Callable, Protocol, Sequence

from ..errors import BufferPoolError

Pinned = Callable[[int], bool]


def _never_pinned(_key: int) -> bool:
    return False


class ReplacementPolicy(Protocol):
    """Interface every eviction policy implements."""

    def record_insert(self, key: int) -> None:
        """A new page entered the tier."""

    def record_access(self, key: int) -> None:
        """An existing page was touched."""

    def record_access_batch(self, keys: Sequence[int], start: int,
                            end: int) -> None:
        """Touch ``keys[start:end]`` in order; equivalent to calling
        :meth:`record_access` once per element. Policies may override
        with a loop-hoisted implementation; recency state after the
        batch must be identical to the scalar loop's."""

    def remove(self, key: int) -> None:
        """A page left the tier (evicted or migrated)."""

    def victim(self, pinned: Pinned = _never_pinned) -> int | None:
        """Choose an evictable page, or None if all are pinned."""

    def victim_batch(self, k: int,
                     pinned: Pinned = _never_pinned) -> list[int]:
        """Choose and *remove* up to *k* evictable pages.

        Must return exactly the sequence that *k* rounds of
        ``victim(pinned)`` followed by ``remove(victim)`` would have
        produced (stopping early once every remaining page is pinned).
        The bulk fault lane drains whole eviction deficits through this
        in one call; policies with cheap ordered state should override
        the generic loop with an O(k) pop."""

    def __len__(self) -> int:
        """Number of tracked pages."""


def _victim_batch_generic(policy: "ReplacementPolicy", k: int,
                          pinned: Pinned) -> list[int]:
    """Reference victim_batch: k rounds of victim-then-remove.

    Used by policies whose victim choice mutates state (e.g. CLOCK's
    sweeping hand) — there is no shortcut that preserves the exact
    victim sequence, so the batch is just the loop, hoisted."""
    victims: list[int] = []
    for _ in range(k):
        key = policy.victim(pinned)
        if key is None:
            break
        policy.remove(key)
        victims.append(key)
    return victims


class LRUPolicy:
    """Least-recently-used, the textbook default."""

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def record_insert(self, key: int) -> None:
        """Track a new page as most-recently used."""
        if key in self._order:
            raise BufferPoolError(f"duplicate insert of {key}")
        self._order[key] = None

    def record_insert_batch(self, keys: Sequence[int]) -> None:
        """Track a run of new pages, in order — equivalent to a
        :meth:`record_insert` loop (each lands at the MRU end)."""
        order = self._order
        before = len(order)
        run = keys if type(keys) is list else list(keys)
        for key in run:
            order[key] = None
        if len(order) != before + len(run):
            # Rare error path: some key was already tracked (or the
            # batch repeated one). Find it for the same diagnostic the
            # scalar loop raises; state is already corrupt either way.
            seen: set[int] = set()
            for key in run:
                if key in seen:
                    raise BufferPoolError(f"duplicate insert of {key}")
                seen.add(key)
            raise BufferPoolError(
                f"duplicate insert in batch of {len(run)} keys"
            )

    def record_access(self, key: int) -> None:
        """Move a page to the MRU end."""
        if key not in self._order:
            raise BufferPoolError(f"access to untracked {key}")
        self._order.move_to_end(key)

    def record_access_batch(self, keys: Sequence[int], start: int,
                            end: int) -> None:
        """Move a run of pages to the MRU end, in order."""
        n = end - start
        order = self._order
        if n == len(order) and n > 64:
            # A batch of distinct keys covering every tracked page
            # leaves the recency order equal to the batch order — one
            # C-level rebuild instead of n move_to_end calls.
            rebuilt = OrderedDict.fromkeys(
                keys if start == 0 and end == len(keys)
                else keys[start:end]
            )
            if len(rebuilt) == n and rebuilt.keys() == order.keys():
                self._order = rebuilt
                return
        move = order.move_to_end
        run = keys[start:end]
        if type(run) is not list:
            # ndarray windows: one C-level materialisation, then the
            # loop hashes plain ints instead of numpy scalars.
            run = run.tolist()
        try:
            for key in run:
                move(key)
        except KeyError as exc:
            raise BufferPoolError(
                f"access to untracked {exc.args[0]}"
            ) from None

    def remove(self, key: int) -> None:
        """Stop tracking a page."""
        self._order.pop(key, None)

    def victim(self, pinned: Pinned = _never_pinned) -> int | None:
        """The least-recently-used unpinned page.

        With no pinned pages (the common case, signalled by the
        default predicate) this is O(1): the LRU end of the order.
        """
        if pinned is _never_pinned:
            return next(iter(self._order), None)
        for key in self._order:
            if not pinned(key):
                return key
        return None

    def victim_batch(self, k: int,
                     pinned: Pinned = _never_pinned) -> list[int]:
        """Pop the k least-recently-used unpinned pages in one O(k)
        sweep.

        Order-equivalence to k repeated ``victim()`` + ``remove()``
        rounds: each round takes the first unpinned key of the order,
        and removing it leaves the relative order of every other key
        unchanged — so the k-round sequence is exactly the first k
        unpinned keys of the initial order, front to back."""
        order = self._order
        if pinned is _never_pinned:
            victims = list(islice(order, k))
        else:
            victims = []
            for key in order:
                if len(victims) >= k:
                    break
                if not pinned(key):
                    victims.append(key)
        for key in victims:
            del order[key]
        return victims

    def peek_batch(self, k: int) -> list[int]:
        """The first *k* keys of the recency order — exactly what
        :meth:`victim_batch` with no pins would pop — *without*
        removing them. Lets the bulk fault lane validate a planned
        eviction chunk (dirty flags, backing containment) before
        committing any state change."""
        return list(islice(self._order, k))

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy:
    """CLOCK (second chance): one reference bit, a sweeping hand."""

    def __init__(self) -> None:
        self._ref: OrderedDict[int, bool] = OrderedDict()

    def record_insert(self, key: int) -> None:
        """Track a new page with its reference bit set."""
        if key in self._ref:
            raise BufferPoolError(f"duplicate insert of {key}")
        self._ref[key] = True

    def record_access(self, key: int) -> None:
        """Set the page's reference bit."""
        if key not in self._ref:
            raise BufferPoolError(f"access to untracked {key}")
        self._ref[key] = True

    def record_access_batch(self, keys: Sequence[int], start: int,
                            end: int) -> None:
        """Set reference bits for a run of pages, in order."""
        ref = self._ref
        for i in range(start, end):
            key = keys[i]
            if key not in ref:
                raise BufferPoolError(f"access to untracked {key}")
            ref[key] = True

    def remove(self, key: int) -> None:
        """Stop tracking a page."""
        self._ref.pop(key, None)

    def victim(self, pinned: Pinned = _never_pinned) -> int | None:
        """Sweep: clear reference bits until an unreferenced,
        unpinned page is found (at most two passes).

        The sweep itself is inherent to CLOCK, but with the default
        (no pins) predicate the per-candidate pinned call is skipped,
        keeping the hand movement amortized O(1) per eviction.
        """
        if not self._ref:
            return None
        check_pins = pinned is not _never_pinned
        for _sweep in range(2 * len(self._ref)):
            key, referenced = next(iter(self._ref.items()))
            self._ref.move_to_end(key)
            if check_pins and pinned(key):
                continue
            if referenced:
                self._ref[key] = False
            else:
                return key
        # All unpinned pages were referenced twice in a row: fall back
        # to the current hand position.
        for key in self._ref:
            if not pinned(key):
                return key
        return None

    def victim_batch(self, k: int,
                     pinned: Pinned = _never_pinned) -> list[int]:
        """Generic batch: the sweep clears reference bits as it moves,
        so victims must be chosen one sweep at a time."""
        return _victim_batch_generic(self, k, pinned)

    def __len__(self) -> int:
        return len(self._ref)


class TwoQPolicy:
    """2Q: a FIFO probation queue (A1in) plus an LRU main queue (Am).

    Scan-resistant: a page only reaches the protected LRU queue when it
    is re-referenced after entering probation, so one-shot scans wash
    through A1in without evicting the hot set.
    """

    def __init__(self, probation_fraction: float = 0.25) -> None:
        if not 0.0 < probation_fraction < 1.0:
            raise BufferPoolError(
                f"probation fraction must be in (0,1): {probation_fraction}"
            )
        self.probation_fraction = probation_fraction
        self._a1in: OrderedDict[int, None] = OrderedDict()
        self._am: OrderedDict[int, None] = OrderedDict()

    def record_insert(self, key: int) -> None:
        """New pages enter probation."""
        if key in self._a1in or key in self._am:
            raise BufferPoolError(f"duplicate insert of {key}")
        self._a1in[key] = None

    def record_access(self, key: int) -> None:
        """A re-reference promotes probation pages to the main queue."""
        if key in self._a1in:
            del self._a1in[key]
            self._am[key] = None
        elif key in self._am:
            self._am.move_to_end(key)
        else:
            raise BufferPoolError(f"access to untracked {key}")

    def record_access_batch(self, keys: Sequence[int], start: int,
                            end: int) -> None:
        """Touch a run of pages, in order (promotions included)."""
        record = self.record_access
        for i in range(start, end):
            record(keys[i])

    def remove(self, key: int) -> None:
        """Stop tracking a page."""
        self._a1in.pop(key, None)
        self._am.pop(key, None)

    def victim(self, pinned: Pinned = _never_pinned) -> int | None:
        """Prefer evicting from probation when it is over its share."""
        total = len(self)
        a1_target = max(1, int(total * self.probation_fraction))
        queues = (
            (self._a1in, self._am)
            if len(self._a1in) >= a1_target
            else (self._am, self._a1in)
        )
        for queue in queues:
            for key in queue:
                if not pinned(key):
                    return key
        return None

    def victim_batch(self, k: int,
                     pinned: Pinned = _never_pinned) -> list[int]:
        """Generic batch: the A1in/Am share shifts per removal, so the
        queue preference must be re-evaluated every round."""
        return _victim_batch_generic(self, k, pinned)

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)


class LRUKPolicy:
    """LRU-K (K=2 by default): evict by K-th most recent reference.

    Pages with fewer than K references are treated as infinitely old on
    their K-th reference and evicted first (classic O'Neil behaviour),
    which also gives scan resistance.
    """

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise BufferPoolError(f"K must be >= 1: {k}")
        self.k = k
        self._tick = 0
        self._history: dict[int, deque[int]] = {}

    def record_insert(self, key: int) -> None:
        """Track a new page with one reference."""
        if key in self._history:
            raise BufferPoolError(f"duplicate insert of {key}")
        self._tick += 1
        self._history[key] = deque([self._tick], maxlen=self.k)

    def record_access(self, key: int) -> None:
        """Record another reference timestamp."""
        if key not in self._history:
            raise BufferPoolError(f"access to untracked {key}")
        self._tick += 1
        self._history[key].append(self._tick)

    def record_access_batch(self, keys: Sequence[int], start: int,
                            end: int) -> None:
        """Record reference timestamps for a run of pages, in order."""
        record = self.record_access
        for i in range(start, end):
            record(keys[i])

    def remove(self, key: int) -> None:
        """Stop tracking a page."""
        self._history.pop(key, None)

    def victim(self, pinned: Pinned = _never_pinned) -> int | None:
        """The page whose K-th most recent reference is oldest."""
        best_key: int | None = None
        best_rank: tuple[int, int] | None = None
        for key, history in self._history.items():
            if pinned(key):
                continue
            if len(history) < self.k:
                rank = (0, history[0])       # < K references: evict first
            else:
                rank = (1, history[0])       # history[0] == K-th recent ref
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_key = key
        return best_key

    def victim_batch(self, k: int,
                     pinned: Pinned = _never_pinned) -> list[int]:
        """Generic batch: each removal can change which page holds the
        oldest K-th reference, so ranks are re-scanned per round."""
        return _victim_batch_generic(self, k, pinned)

    def __len__(self) -> int:
        return len(self._history)


POLICIES: dict[str, Callable[[], ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "clock": ClockPolicy,
    "2q": TwoQPolicy,
    "lruk": LRUKPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a policy by its short name ('lru', 'clock', '2q',
    'lruk')."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise BufferPoolError(
            f"unknown replacement policy {name!r};"
            f" choose from {sorted(POLICIES)}"
        ) from None
