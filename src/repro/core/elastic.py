"""Memory pooling and database elasticity (Sec 3.2, Fig 2b).

Three claims of the paper become executable here:

1. **Stranded memory**: per-server DRAM must be provisioned for peak
   demand, so capacity strands; a rack-level pool is provisioned for
   the *sum* of demands (plus headroom) — :class:`StrandingModel`
   quantifies the difference.
2. **Warm spawn**: if the buffer pool lives in pooled CXL memory, a
   new engine attaches to it and is "immediately ready to run queries,
   as there is no need to warm up the database" —
   :class:`ElasticCluster` spawns warm engines whose CXL tier is
   pre-populated, versus cold engines that fault everything in.
3. **Cheap migration**: moving an engine whose state is in the pool is
   a remap, not a copy — :meth:`ElasticCluster.migration_time_ns`
   compares against copying the buffer pool over RDMA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import config
from ..errors import PoolingError
from ..sim.context import SimContext
from ..sim.interconnect import AccessPath, Link
from ..sim.memory import MemoryDevice
from ..sim.rdma import RDMAFabric
from ..storage.disk import StorageDevice
from ..storage.file import PageFile
from ..units import PAGE_SIZE, us
from .buffer import Tier, TieredBufferPool
from .engine import ScaleUpEngine
from .placement import DbCostPolicy


# ---------------------------------------------------------------------------
# Claim 1: stranded memory.
# ---------------------------------------------------------------------------

@dataclass
class StrandingModel:
    """Compares per-server provisioning against rack-level pooling.

    ``demands_bytes`` is the instantaneous memory demand of each
    server's workload. Per-server provisioning installs
    ``per_server_dram`` everywhere; pooling installs a small local
    ``base_dram`` per server plus one pool sized to aggregate demand
    with ``headroom`` slack (Pond's provisioning argument).
    """

    demands_bytes: list[int]
    per_server_dram: int
    base_dram: int
    headroom: float = 0.10

    def __post_init__(self) -> None:
        if not self.demands_bytes:
            raise PoolingError("need at least one server demand")
        if self.per_server_dram <= 0 or self.base_dram < 0:
            raise PoolingError("invalid DRAM sizes")

    @property
    def num_servers(self) -> int:
        """Number of servers in the rack."""
        return len(self.demands_bytes)

    # per-server provisioning --------------------------------------------------

    @property
    def provisioned_bytes(self) -> int:
        """Total DRAM installed under per-server provisioning."""
        return self.per_server_dram * self.num_servers

    @property
    def stranded_bytes(self) -> int:
        """Installed-but-unused DRAM under per-server provisioning
        (unmet demand does not offset stranding elsewhere)."""
        return sum(
            max(0, self.per_server_dram - demand)
            for demand in self.demands_bytes
        )

    @property
    def unmet_bytes(self) -> int:
        """Demand that exceeds its server's DRAM (spills to disk)."""
        return sum(
            max(0, demand - self.per_server_dram)
            for demand in self.demands_bytes
        )

    @property
    def stranded_fraction(self) -> float:
        """Share of installed DRAM that is stranded."""
        return self.stranded_bytes / self.provisioned_bytes

    # pooled provisioning ----------------------------------------------------------

    @property
    def pooled_pool_bytes(self) -> int:
        """Pool size: aggregate overflow demand plus headroom."""
        overflow = sum(
            max(0, demand - self.base_dram)
            for demand in self.demands_bytes
        )
        return int(overflow * (1.0 + self.headroom))

    @property
    def pooled_total_bytes(self) -> int:
        """Total memory installed under pooling."""
        return self.base_dram * self.num_servers + self.pooled_pool_bytes

    @property
    def savings_fraction(self) -> float:
        """Memory saved by pooling vs per-server provisioning."""
        if self.provisioned_bytes == 0:
            return 0.0
        return 1.0 - self.pooled_total_bytes / self.provisioned_bytes


@dataclass
class DemandSeries:
    """Per-server memory-demand time series for the pooling curve.

    Pond's provisioning argument in its sweep form: per-server DRAM
    must cover each server's *peak*, while a pool serving fraction
    ``f`` of every server's memory only needs to cover ``f`` times the
    peak of the *aggregate* — and the aggregate peaks lower than the
    sum of individual peaks whenever demands are not perfectly
    correlated.
    """

    series: list[list[int]]  # series[server][t] = demand in bytes

    def __post_init__(self) -> None:
        if not self.series or not self.series[0]:
            raise PoolingError("need at least one server and one step")
        length = len(self.series[0])
        if any(len(s) != length for s in self.series):
            raise PoolingError("all series must have equal length")

    @property
    def sum_of_peaks(self) -> int:
        """Per-server provisioning: every server sized for its peak."""
        return sum(max(s) for s in self.series)

    @property
    def peak_of_sum(self) -> int:
        """Pool-friendly aggregate: the rack's simultaneous peak."""
        steps = len(self.series[0])
        return max(
            sum(s[t] for s in self.series) for t in range(steps)
        )

    def savings_at(self, pool_fraction: float) -> float:
        """DRAM saved when fraction *f* of each server's memory may
        live in the pool: ``f x (1 - peak_of_sum / sum_of_peaks)``."""
        if not 0.0 <= pool_fraction <= 1.0:
            raise PoolingError("pool fraction must be in [0,1]")
        if self.sum_of_peaks == 0:
            return 0.0
        ratio = self.peak_of_sum / self.sum_of_peaks
        return pool_fraction * (1.0 - ratio)

    def savings_curve(self, fractions: list[float] | None = None
                      ) -> list[tuple[float, float]]:
        """(pool fraction, DRAM savings) points — the Pond curve."""
        fractions = fractions or [0.0, 0.1, 0.25, 0.5, 0.75, 1.0]
        return [(f, self.savings_at(f)) for f in fractions]

    @classmethod
    def diurnal(cls, servers: int = 16, steps: int = 96,
                base_bytes: int = 16 * 1024 ** 3,
                swing_bytes: int = 32 * 1024 ** 3,
                seed: int = 5) -> "DemandSeries":
        """Phase-shifted diurnal demands (what hyperscalers see:
        tenants peak at different hours)."""
        import math
        import random
        rng = random.Random(seed)
        series = []
        for server in range(servers):
            phase = rng.uniform(0, 2 * math.pi)
            noise = rng.uniform(0.8, 1.2)
            series.append([
                int(base_bytes + swing_bytes * noise
                    * (0.5 + 0.5 * math.sin(
                        2 * math.pi * t / steps + phase)))
                for t in range(steps)
            ])
        return cls(series=series)


# ---------------------------------------------------------------------------
# Page-granular pooling for tenant churn.
# ---------------------------------------------------------------------------

class PagePool:
    """An O(1) page-lease ledger over pooled CXL capacity.

    :class:`ElasticCluster` carves byte ranges through the pool
    device's first-fit allocator — right for a handful of engines,
    quadratic for a million churning tenants. A serving run only needs
    *accounting*: who holds how many pages, how full the pool is, and
    that double releases fail loudly. ``PagePool`` keeps exactly that,
    with constant-time lease/release and an elastic :meth:`resize` so
    an autoscaler can add or retire whole expanders mid-run.
    """

    def __init__(self, capacity_pages: int, name: str = "tenant-pool",
                 page_size: int = PAGE_SIZE,
                 ctx: SimContext | None = None) -> None:
        if capacity_pages <= 0:
            raise PoolingError("pool capacity must be positive")
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self.name = name
        self._leases: dict[object, int] = {}
        self.leased_pages = 0
        self.peak_leased_pages = 0
        self.total_leases = 0
        self.total_releases = 0
        self.ctx = ctx
        if ctx is not None:
            ctx.register(f"pool.{name}", self)

    @property
    def free_pages(self) -> int:
        """Unleased pool pages."""
        return self.capacity_pages - self.leased_pages

    @property
    def occupancy(self) -> float:
        """Leased fraction of the pool, in [0, 1]."""
        return self.leased_pages / self.capacity_pages

    def holds(self, owner: object) -> bool:
        """Whether *owner* currently holds a lease."""
        return owner in self._leases

    def lease(self, owner: object, pages: int) -> bool:
        """Lease *pages* to *owner*; False when the pool is too full.

        An owner holds at most one lease at a time — leasing twice is
        an accounting bug, not a capacity miss, and raises.
        """
        if pages <= 0:
            raise PoolingError("lease size must be positive")
        if owner in self._leases:
            raise PoolingError(f"{owner!r} already holds a lease")
        if pages > self.free_pages:
            return False
        self._leases[owner] = pages
        self.leased_pages += pages
        self.peak_leased_pages = max(self.peak_leased_pages,
                                     self.leased_pages)
        self.total_leases += 1
        return True

    def release(self, owner: object) -> int:
        """Return *owner*'s pages to the pool; raises on double release."""
        pages = self._leases.pop(owner, None)
        if pages is None:
            raise PoolingError(f"{owner!r} holds no lease")
        self.leased_pages -= pages
        self.total_releases += 1
        return pages

    def resize(self, capacity_pages: int) -> None:
        """Grow or shrink the pool (expander attach/detach); cannot
        shrink below what is currently leased."""
        if capacity_pages < self.leased_pages:
            raise PoolingError(
                f"cannot shrink pool to {capacity_pages} pages below"
                f" {self.leased_pages} leased"
            )
        self.capacity_pages = capacity_pages

    def snapshot(self) -> dict:
        """Pool accounting (metrics snapshot protocol)."""
        return {
            "capacity_pages": self.capacity_pages,
            "leased_pages": self.leased_pages,
            "peak_leased_pages": self.peak_leased_pages,
            "leases": len(self._leases),
            "total_leases": self.total_leases,
            "total_releases": self.total_releases,
            "occupancy": self.occupancy,
        }


# ---------------------------------------------------------------------------
# Claims 2 and 3: warm spawn and cheap migration.
# ---------------------------------------------------------------------------

@dataclass
class PoolSlice:
    """A carved region of the pooled device leased to one engine."""

    owner: str
    offset: int
    size_bytes: int
    resident_pages: set[int] = field(default_factory=set)


class ElasticCluster:
    """A rack whose buffer pools live in pooled CXL memory.

    The cluster owns the pooled device and the dataset's backing
    storage. Engines attach with a small local-DRAM tier for query
    processing and a CXL tier mapped onto the (already warm) pool
    slice; they detach leaving the slice — and therefore the cached
    working set — behind.
    """

    ATTACH_OVERHEAD_NS = us(200.0)   # map the region, no data copy

    def __init__(self, pool_capacity_bytes: int | None = None,
                 dataset_pages: int = 50_000,
                 page_size: int = PAGE_SIZE,
                 ctx: SimContext | None = None) -> None:
        spec = config.cxl_expander_ddr5(
            capacity_bytes=pool_capacity_bytes or 64 * 1024 ** 3
        )
        self.pool_device = MemoryDevice(spec, name="rack-pool")
        self.page_size = page_size
        self.storage = StorageDevice()
        self.backing = PageFile(self.storage, name="shared-tablespace")
        self.backing.allocate_pages(dataset_pages)
        self._slices: dict[str, PoolSlice] = {}
        self.spawns = 0
        self.warm_spawns = 0
        self.detaches = 0
        # Cluster-level accounting only; engines each get their own
        # SimContext (and clock) when spawned.
        self.ctx = ctx
        if ctx is not None:
            ctx.register("elastic", self)

    # -- slices -------------------------------------------------------------

    def carve(self, owner: str, size_bytes: int) -> PoolSlice:
        """Lease a slice of the pool to an engine."""
        if owner in self._slices:
            raise PoolingError(f"{owner!r} already holds a slice")
        offset = self.pool_device.allocate(size_bytes)
        slice_ = PoolSlice(owner=owner, offset=offset,
                           size_bytes=size_bytes)
        self._slices[owner] = slice_
        return slice_

    def release(self, owner: str) -> None:
        """Return a slice (and its cached pages) to the pool."""
        slice_ = self._slices.pop(owner, None)
        if slice_ is None:
            raise PoolingError(f"{owner!r} holds no slice")
        self.pool_device.free(slice_.offset)

    def slice_of(self, owner: str) -> PoolSlice:
        """The slice leased to an engine."""
        try:
            return self._slices[owner]
        except KeyError:
            raise PoolingError(f"{owner!r} holds no slice") from None

    # -- engines -------------------------------------------------------------------

    def spawn_engine(self, name: str, local_pages: int = 1_024,
                     slice_pages: int = 16_384,
                     warm_from: PoolSlice | None = None,
                     through_switch: bool = True) -> tuple[ScaleUpEngine, float]:
        """Attach an engine; returns (engine, spawn time in ns).

        With ``warm_from``, the engine adopts an existing slice whose
        resident pages are immediately accessible — the warm-spawn
        path. Otherwise a fresh (cold) slice is carved.
        """
        self.spawns += 1
        if warm_from is not None:
            self.warm_spawns += 1
            slice_ = warm_from
            if slice_.owner in self._slices:
                del self._slices[slice_.owner]
            slice_.owner = name
            self._slices[name] = slice_
        else:
            slice_ = self.carve(name, slice_pages * self.page_size)

        # Each engine gets its own instrumentation spine (and clock);
        # the shared pool device stays cluster-owned and unregistered.
        engine_ctx = SimContext.ambient()
        links: tuple[Link, ...] = (
            Link(config.cxl_port(), name=f"{name}-cxl-port",
                 ctx=engine_ctx),
        )
        if through_switch:
            links += (
                Link(config.cxl_switch_hop(), name=f"{name}-cxl-switch",
                     ctx=engine_ctx),
            )
        dram = MemoryDevice(config.local_ddr5(), name=f"{name}-dram",
                            ctx=engine_ctx)
        tiers = [
            Tier(name="dram", path=AccessPath(device=dram),
                 capacity_pages=local_pages),
            Tier(name="pool-slice",
                 path=AccessPath(device=self.pool_device, links=links),
                 capacity_pages=slice_.size_bytes // self.page_size),
        ]
        pool = TieredBufferPool(
            tiers=tiers, backing=self.backing,
            placement=DbCostPolicy(), page_size=self.page_size,
            ctx=engine_ctx,
        )
        spawn_ns = self.ATTACH_OVERHEAD_NS
        for page_id in sorted(slice_.resident_pages):
            if not self.backing.contains(page_id):
                continue
            # Already materialized in pooled memory: adopt, no I/O.
            pool.adopt_resident(self.backing.peek(page_id), tier_index=1)
        engine = ScaleUpEngine(pool, name=name)
        pool.clock.advance(spawn_ns)
        return engine, spawn_ns

    def detach_engine(self, engine: ScaleUpEngine) -> PoolSlice:
        """Detach an engine, persisting its CXL-resident page set into
        the slice so a successor can warm-spawn from it."""
        slice_ = self.slice_of(engine.name)
        slice_.resident_pages = {
            page_id for page_id in engine.pool.resident_in(1)
        }
        self.detaches += 1
        return slice_

    # -- migration ---------------------------------------------------------------------

    def migration_time_ns(self, state_bytes: int,
                          fabric: RDMAFabric | None = None,
                          pooled: bool = True) -> float:
        """Time to move an engine to another host.

        ``pooled=True``: the state stays in the pool; migration is a
        detach + attach (two remaps). ``pooled=False``: the buffer
        pool must be copied over RDMA to the new host's DRAM.
        """
        if pooled:
            return 2 * self.ATTACH_OVERHEAD_NS
        net = fabric or self._default_fabric()
        return net.one_sided_read_time("dst", "src", state_bytes)

    def snapshot(self) -> dict:
        """Cluster accounting (metrics snapshot protocol)."""
        return {
            "slices": len(self._slices),
            "spawns": self.spawns,
            "warm_spawns": self.warm_spawns,
            "detaches": self.detaches,
            "pool_allocated_bytes": self.pool_device.allocated_bytes,
        }

    @staticmethod
    def _default_fabric() -> RDMAFabric:
        fabric = RDMAFabric()
        fabric.add_host("src")
        fabric.add_host("dst")
        return fabric
