"""Virtual time.

The simulator measures everything in nanoseconds of *virtual* time held
by a :class:`SimClock`. Components charge costs to the clock instead of
sleeping, so simulations are deterministic and run as fast as Python
allows.
"""

from __future__ import annotations

from ..errors import SimulationError


class SimClock:
    """A monotonically non-decreasing nanosecond clock."""

    __slots__ = ("_now",)

    def __init__(self, start_ns: float = 0.0) -> None:
        if start_ns < 0:
            raise SimulationError(f"clock cannot start at {start_ns}")
        self._now = float(start_ns)

    @property
    def now(self) -> float:
        """Current virtual time in ns."""
        return self._now

    def advance(self, delta_ns: float) -> float:
        """Move time forward by *delta_ns* and return the new time."""
        if delta_ns < 0:
            raise SimulationError(f"cannot advance clock by {delta_ns} ns")
        self._now += delta_ns
        return self._now

    def advance_to(self, t_ns: float) -> float:
        """Move time forward to the absolute instant *t_ns*."""
        if t_ns < self._now:
            raise SimulationError(
                f"cannot move clock backwards: now={self._now}, target={t_ns}"
            )
        self._now = float(t_ns)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.1f}ns)"
