"""Failure injection and detection: CXL RAS vs software timeouts.

Sec 2.6 of the paper makes two fault-tolerance claims:

1. CXL builds failure detection and propagation into the protocol
   (RAS), so "reaction times in a CXL platform are likely faster than
   in a traditional distributed system" — modelled by comparing a
   hardware :class:`RASMonitor` (protocol-level detection, tens of
   microseconds) against a :class:`TimeoutMonitor` (heartbeats over
   TCP, hundreds of milliseconds).
2. A CXL memory pool involves fewer components than a remote server's
   memory, so the failure probability of the path is lower — modelled
   by :func:`path_failure_probability` over per-component annual
   failure rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..units import ms, us
from .context import SimContext
from .events import Simulator
from .memory import MemoryDevice


class _MonitorSnapshot:
    """Shared snapshot protocol for the two monitor flavours."""

    records: list["DetectionRecord"]

    def snapshot(self) -> dict:
        """Detections and their delay statistics."""
        delays = [r.detection_delay_ns for r in self.records]
        snap: dict = {"detections": len(delays)}
        if delays:
            snap["mean_detection_ns"] = sum(delays) / len(delays)
            snap["max_detection_ns"] = max(delays)
        return snap


@dataclass
class DetectionRecord:
    """Outcome of one monitored failure."""

    device_name: str
    failed_at_ns: float
    detected_at_ns: float

    @property
    def detection_delay_ns(self) -> float:
        """Time from failure to detection."""
        return self.detected_at_ns - self.failed_at_ns


class RASMonitor(_MonitorSnapshot):
    """Hardware (protocol-level) failure detection.

    CXL RAS surfaces poisoned reads / link-down conditions in-band, so
    detection happens within a protocol timeout, not a software one.
    """

    def __init__(self, detection_latency_ns: float = us(10.0),
                 ctx: SimContext | None = None) -> None:
        if detection_latency_ns <= 0:
            raise SimulationError("detection latency must be positive")
        self.detection_latency_ns = detection_latency_ns
        self.records: list[DetectionRecord] = []
        if ctx is not None:
            ctx.register("ras.hardware", self)

    def observe_failure(self, sim: Simulator, device: MemoryDevice,
                        failed_at_ns: float) -> None:
        """Arm detection of a failure that just happened."""
        def _detect() -> None:
            self.records.append(DetectionRecord(
                device_name=device.name,
                failed_at_ns=failed_at_ns,
                detected_at_ns=sim.now,
            ))
        sim.after(self.detection_latency_ns, _detect)


class TimeoutMonitor(_MonitorSnapshot):
    """Software failure detection by missed heartbeats over TCP.

    A peer is declared dead after ``miss_threshold`` consecutive missed
    heartbeats. Detection therefore takes between ``(threshold-1)`` and
    ``threshold`` heartbeat intervals past the failure.
    """

    def __init__(self, heartbeat_interval_ns: float = ms(100.0),
                 miss_threshold: int = 3,
                 ctx: SimContext | None = None) -> None:
        if heartbeat_interval_ns <= 0 or miss_threshold <= 0:
            raise SimulationError("invalid timeout-monitor configuration")
        self.heartbeat_interval_ns = heartbeat_interval_ns
        self.miss_threshold = miss_threshold
        self.records: list[DetectionRecord] = []
        if ctx is not None:
            ctx.register("ras.timeout", self)

    def detection_time_ns(self, failed_at_ns: float) -> float:
        """When a failure at *failed_at_ns* is declared (absolute ns)."""
        interval = self.heartbeat_interval_ns
        first_missed = math.ceil(failed_at_ns / interval) * interval
        if first_missed == failed_at_ns:
            first_missed += interval
        return first_missed + (self.miss_threshold - 1) * interval

    def observe_failure(self, sim: Simulator, device: MemoryDevice,
                        failed_at_ns: float) -> None:
        """Arm detection of a failure that just happened."""
        detect_at = self.detection_time_ns(failed_at_ns)

        def _detect() -> None:
            self.records.append(DetectionRecord(
                device_name=device.name,
                failed_at_ns=failed_at_ns,
                detected_at_ns=sim.now,
            ))
        sim.at(detect_at, _detect)


@dataclass
class FailureInjector:
    """Schedules device failures and notifies monitors."""

    sim: Simulator
    monitors: list[object] = field(default_factory=list)
    injected: list[tuple[str, float]] = field(default_factory=list)
    ctx: SimContext | None = None

    def attach(self, monitor: RASMonitor | TimeoutMonitor) -> None:
        """Subscribe a monitor to future failures."""
        self.monitors.append(monitor)

    def fail_at(self, device: MemoryDevice, time_ns: float) -> None:
        """Schedule *device* to fail at the absolute time *time_ns*."""
        def _fail() -> None:
            device.fail()
            self.injected.append((device.name, self.sim.now))
            if self.ctx is not None:
                self.ctx.event("device-failed", cat="ras",
                               args={"device": device.name})
                self.ctx.metrics.incr("ras.failures_injected")
            for monitor in self.monitors:
                monitor.observe_failure(self.sim, device, self.sim.now)
        self.sim.at(time_ns, _fail)


# -- component-count failure model (Sec 2.6, second advantage) -----------------

#: Representative annual failure rates per component class.
ANNUAL_FAILURE_RATE: dict[str, float] = {
    "dram_module": 0.006,
    "cxl_controller": 0.005,
    "cxl_switch": 0.008,
    "cpu": 0.010,
    "motherboard": 0.020,
    "psu": 0.025,
    "nic": 0.010,
    "tor_switch": 0.015,
    "os_software": 0.050,
}

#: Components on the path to a CXL pooled-memory slice.
CXL_POOL_PATH = ("dram_module", "cxl_controller", "cxl_switch")

#: Components on the path to another server's memory over RDMA:
#: the whole remote server must stay up, plus both NICs and the ToR.
REMOTE_SERVER_PATH = (
    "dram_module", "cpu", "motherboard", "psu", "os_software",
    "nic", "nic", "tor_switch",
)


def path_failure_probability(components: tuple[str, ...],
                             horizon_years: float = 1.0) -> float:
    """Probability that at least one component on the path fails
    within the horizon, assuming independent exponential lifetimes."""
    if horizon_years <= 0:
        raise SimulationError("horizon must be positive")
    survive = 1.0
    for component in components:
        rate = ANNUAL_FAILURE_RATE[component]
        survive *= math.exp(-rate * horizon_years)
    return 1.0 - survive
