"""Rack-level topology: hosts, CXL switches, pooled memory devices.

This is the substrate for the three architectures of Fig 2:

* (a) local expansion — an expander connected directly to a host port;
* (b) memory pooling — expanders behind a CXL switch, carved into
  slices that several hosts map simultaneously;
* (c) full-rack disaggregation — cascaded switches and GFAM devices
  shared by every host, making "the rack a single shared-memory
  machine" (Sec 3.3).

The topology is a graph whose edges carry :class:`~repro.sim.interconnect.Link`
objects; access paths are shortest latency paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import networkx as nx

from .. import config
from ..errors import TopologyError
from .interconnect import AccessPath, Link
from .memory import MemoryDevice


@dataclass
class Host:
    """A compute host with cores and local DRAM."""

    name: str
    cores: int
    dram: MemoryDevice

    def __repr__(self) -> str:
        return f"Host({self.name!r}, cores={self.cores})"


@dataclass
class CXLSwitch:
    """A CXL 2.0/3.x switch with a bounded port count."""

    name: str
    ports: int = 32
    used_ports: int = field(default=0, init=False)

    def claim_port(self) -> None:
        """Reserve one port; raises when the switch is full."""
        if self.used_ports >= self.ports:
            raise TopologyError(f"switch {self.name} has no free ports")
        self.used_ports += 1

    def __repr__(self) -> str:
        return f"CXLSwitch({self.name!r}, {self.used_ports}/{self.ports})"


@dataclass
class MemoryPoolDevice:
    """A large pooled expander (or GFAM device) living in the rack."""

    name: str
    memory: MemoryDevice
    gfam: bool = False  # True: Global Fabric-Attached Memory (CXL 3.x)

    def __repr__(self) -> str:
        flavor = "GFAM" if self.gfam else "pool"
        return f"MemoryPoolDevice({self.name!r}, {flavor})"


class RackTopology:
    """A rack of hosts, switches, and memory devices joined by links."""

    def __init__(self, name: str = "rack") -> None:
        self.name = name
        self._graph = nx.Graph()
        self._hosts: dict[str, Host] = {}
        self._switches: dict[str, CXLSwitch] = {}
        self._pools: dict[str, MemoryPoolDevice] = {}
        self._expanders: dict[str, MemoryDevice] = {}
        self._switch_hops: dict[str, Link] = {}
        self._counter = itertools.count()

    # -- construction ---------------------------------------------------------

    def add_host(self, name: str, cores: int = 32,
                 dram: MemoryDevice | None = None) -> Host:
        """Add a compute host (its DRAM is reachable with zero hops)."""
        self._check_fresh(name)
        if dram is None:
            dram = MemoryDevice(config.local_ddr5(), name=f"{name}-dram")
        host = Host(name=name, cores=cores, dram=dram)
        self._hosts[name] = host
        self._graph.add_node(name, kind="host")
        return host

    def add_switch(self, name: str, ports: int = 32) -> CXLSwitch:
        """Add a CXL switch."""
        self._check_fresh(name)
        switch = CXLSwitch(name=name, ports=ports)
        self._switches[name] = switch
        self._graph.add_node(name, kind="switch")
        return switch

    def add_expander(self, name: str, device: MemoryDevice) -> MemoryDevice:
        """Add a plain (host-attachable) memory expander."""
        self._check_fresh(name)
        self._expanders[name] = device
        self._graph.add_node(name, kind="expander")
        return device

    def add_pool(self, name: str, device: MemoryDevice,
                 gfam: bool = False) -> MemoryPoolDevice:
        """Add a pooled expander / GFAM device."""
        self._check_fresh(name)
        pool = MemoryPoolDevice(name=name, memory=device, gfam=gfam)
        self._pools[name] = pool
        self._graph.add_node(name, kind="pool")
        return pool

    def add_gim_segment(self, host_name: str, size_bytes: int,
                        name: str | None = None) -> MemoryDevice:
        """Expose a slice of a host's own DRAM to the fabric.

        CXL 3.x *Global Integrated Memory* (GIM, Sec 3.3 ref [8]):
        instead of dedicated pool hardware, hosts contribute segments
        of their local DRAM to the rack-wide shared map. The segment
        appears as an addressable component connected to its owner
        (the owner reaches it at local speed; peers pay the fabric).
        """
        host = self.host(host_name)
        if size_bytes <= 0 or size_bytes > host.dram.capacity_bytes:
            raise TopologyError(
                f"GIM segment must fit {host_name}'s DRAM"
            )
        seg_name = name or f"{host_name}-gim"
        self._check_fresh(seg_name)
        spec = host.dram.spec.with_capacity(size_bytes)
        segment = MemoryDevice(spec, name=seg_name)
        self._expanders[seg_name] = segment
        self._graph.add_node(seg_name, kind="gim")
        # Zero-latency edge to the owner: it IS the owner's DRAM.
        self.connect(host_name, seg_name, Link(config.LinkSpec(
            name=f"{seg_name}-local", latency_ns=0.0,
            raw_bandwidth=host.dram.spec.peak_bandwidth,
        )))
        return segment

    def connect(self, a: str, b: str,
                link: Link | None = None) -> Link:
        """Join two components with a link (default: a CXL Gen5 port)."""
        for endpoint in (a, b):
            if endpoint not in self._graph:
                raise TopologyError(f"unknown component {endpoint!r}")
            if endpoint in self._switches:
                self._switches[endpoint].claim_port()
        if link is None:
            link = Link(config.cxl_port(), name=f"link-{next(self._counter)}")
        self._graph.add_edge(a, b, link=link)
        return link

    def _check_fresh(self, name: str) -> None:
        if name in self._graph:
            raise TopologyError(f"duplicate component name {name!r}")

    # -- lookup ----------------------------------------------------------------

    @property
    def hosts(self) -> list[Host]:
        """All hosts, in insertion order."""
        return list(self._hosts.values())

    @property
    def pools(self) -> list[MemoryPoolDevice]:
        """All pooled devices, in insertion order."""
        return list(self._pools.values())

    @property
    def switches(self) -> list[CXLSwitch]:
        """All switches, in insertion order."""
        return list(self._switches.values())

    def host(self, name: str) -> Host:
        """Look a host up by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise TopologyError(f"no host {name!r}") from None

    def device_of(self, name: str) -> MemoryDevice:
        """The memory device backing a named component."""
        if name in self._hosts:
            return self._hosts[name].dram
        if name in self._pools:
            return self._pools[name].memory
        if name in self._expanders:
            return self._expanders[name]
        raise TopologyError(f"component {name!r} has no memory device")

    # -- routing ---------------------------------------------------------------

    def path(self, host_name: str, target_name: str) -> AccessPath:
        """Access path from a host's cores to a component's memory.

        A host reaching its own DRAM takes zero hops; anything else
        follows the minimum-latency route through the link graph.
        """
        if host_name not in self._hosts:
            raise TopologyError(f"no host {host_name!r}")
        return self.peer_path(host_name, target_name)

    def _switch_hop(self, switch_name: str) -> Link:
        """The (cached) latency hop charged per traversal of a switch."""
        if switch_name not in self._switch_hops:
            self._switch_hops[switch_name] = Link(
                config.cxl_switch_hop(), name=f"{switch_name}-xbar"
            )
        return self._switch_hops[switch_name]

    def peer_path(self, source_name: str, target_name: str) -> AccessPath:
        """Component-to-component path, no host required in the loop.

        CXL 3.x allows peer-to-peer exchanges among devices (Sec 2.3)
        — e.g. an accelerator draining a pooled expander, or "a path
        between different server components" (Sec 2.5) — something
        RDMA cannot express. Edge links contribute bandwidth; each
        *switch traversal* adds its store-and-forward latency as an
        extra hop.
        """
        if source_name not in self._graph:
            raise TopologyError(f"unknown component {source_name!r}")
        device = self.device_of(target_name)
        if source_name == target_name:
            return AccessPath(device=device)
        try:
            node_path = nx.shortest_path(
                self._graph, source_name, target_name,
                weight=self._edge_latency,
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise TopologyError(
                f"no route from {source_name!r} to {target_name!r}"
            ) from None
        links: list[Link] = []
        for u, v in zip(node_path, node_path[1:]):
            links.append(self._graph.edges[u, v]["link"])
            if v in self._switches:
                links.append(self._switch_hop(v))
        return AccessPath(device=device, links=tuple(links))

    def hop_count(self, host_name: str, target_name: str) -> int:
        """Number of links between a host and a component."""
        return self.path(host_name, target_name).hop_count

    @staticmethod
    def _edge_latency(_u: str, _v: str, data: dict) -> float:
        link: Link = data["link"]
        return link.latency_ns + 1e-6  # tiny bias keeps hop counts minimal

    # -- convenience builders -----------------------------------------------------

    @classmethod
    def local_expansion(cls, expander_spec=None) -> "RackTopology":
        """Fig 2(a): one host with a direct-attached expander."""
        rack = cls(name="local-expansion")
        rack.add_host("host0")
        spec = expander_spec or config.cxl_expander_ddr5()
        rack.add_expander("cxl0", MemoryDevice(spec))
        rack.connect("host0", "cxl0", Link(config.cxl_port()))
        return rack

    @classmethod
    def pooled(cls, num_hosts: int = 4, pool_capacity: int | None = None,
               switch_ports: int = 32) -> "RackTopology":
        """Fig 2(b): hosts sharing a pooled expander through one switch."""
        if num_hosts <= 0:
            raise TopologyError("need at least one host")
        rack = cls(name="far-memory-pooling")
        rack.add_switch("switch0", ports=switch_ports)
        spec = config.cxl_expander_ddr5(
            capacity_bytes=pool_capacity or config.cxl_expander_ddr5().capacity_bytes
        )
        rack.add_pool("pool0", MemoryDevice(spec))
        rack.connect("switch0", "pool0", Link(config.cxl_port()))
        for i in range(num_hosts):
            rack.add_host(f"host{i}")
            rack.connect(f"host{i}", "switch0", Link(config.cxl_port()))
        return rack

    @classmethod
    def multi_rack(cls, racks: int = 2, hosts_per_rack: int = 4,
                   inter_rack_latency_ns: float = 150.0
                   ) -> "RackTopology":
        """A small number of racks joined by CXL fabric links.

        Sec 3.3: "Figure 2(c) depicts this scenario within one rack,
        but we believe the same features could also support spanning
        a small number of racks." Each rack has a spine switch and a
        GFAM device; spines connect pairwise with longer optical links
        (e.g. PhotoWave-style, ref [45]). Cross-rack accesses pay the
        extra hop but stay far below RDMA latency.
        """
        if racks < 1:
            raise TopologyError("need at least one rack")
        topo = cls(name=f"{racks}-rack-fabric")
        gen16 = config.cxl_port(lanes=16)
        for r in range(racks):
            topo.add_switch(f"r{r}-spine")
            device = MemoryDevice(
                config.cxl_expander_ddr5(capacity_bytes=1024 * 1024 ** 3),
                name=f"r{r}-gfam",
            )
            topo.add_pool(f"r{r}-gfam", device, gfam=True)
            topo.connect(f"r{r}-gfam", f"r{r}-spine", Link(gen16))
            for h in range(hosts_per_rack):
                topo.add_host(f"r{r}-host{h}")
                topo.connect(f"r{r}-host{h}", f"r{r}-spine",
                             Link(gen16))
        for a in range(racks):
            for b in range(a + 1, racks):
                optical = config.LinkSpec(
                    name=f"optical-r{a}-r{b}",
                    latency_ns=inter_rack_latency_ns,
                    raw_bandwidth=gen16.raw_bandwidth,
                )
                topo.connect(f"r{a}-spine", f"r{b}-spine",
                             Link(optical))
        return topo

    @classmethod
    def disaggregated(cls, num_hosts: int = 8, num_pools: int = 2,
                      cascade: bool = True) -> "RackTopology":
        """Fig 2(c): full-rack disaggregation with cascaded switches and
        GFAM devices every host can map."""
        rack = cls(name="full-rack-disaggregation")
        rack.add_switch("leaf0")
        rack.add_switch("leaf1")
        gen16 = config.cxl_port(lanes=16)
        if cascade:
            rack.add_switch("spine0")
            rack.connect("leaf0", "spine0", Link(gen16))
            rack.connect("leaf1", "spine0", Link(gen16))
        else:
            rack.connect("leaf0", "leaf1", Link(gen16))
        for i in range(num_hosts):
            leaf = f"leaf{i % 2}"
            rack.add_host(f"host{i}")
            rack.connect(f"host{i}", leaf, Link(config.cxl_port()))
        attach = "spine0" if cascade else "leaf0"
        for j in range(num_pools):
            device = MemoryDevice(
                config.cxl_expander_ddr5(capacity_bytes=1024 * 1024 ** 3),
                name=f"gfam{j}",
            )
            rack.add_pool(f"gfam{j}", device, gfam=True)
            rack.connect(f"gfam{j}", attach, Link(config.cxl_port()))
        return rack
