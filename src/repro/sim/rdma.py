"""RDMA fabric — the networking baseline CXL is compared against.

Sec 2.5 of the paper: the fastest RDMA exchanges take a few
microseconds, at least 2.5x slower than CXL's low hundreds of
nanoseconds; and a 400 Gb/s NIC exposes only ~50 GB/s of its 64 GB/s
PCIe Gen5 x16 slot. Both facts are modelled directly: the verbs
latency floor comes from :data:`repro.config.RDMA_BASE_LATENCY_NS` and
the payload efficiency from :func:`repro.config.rdma_nic_400g`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .. import config
from ..errors import TopologyError
from ..units import transfer_time_ns
from .bandwidth import SharedChannel

if TYPE_CHECKING:  # pragma: no cover
    from .context import SimContext


@dataclass
class RDMAStats:
    """Per-fabric operation counters."""

    reads: int = 0
    writes: int = 0
    sends: int = 0
    bytes: int = 0

    def snapshot(self) -> dict:
        """Counters as a dict (metrics snapshot protocol)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "sends": self.sends,
            "bytes": self.bytes,
        }


class RDMANic:
    """One host's RDMA NIC with its payload-bandwidth channel."""

    def __init__(self, host: str,
                 spec: config.LinkSpec | None = None) -> None:
        self.host = host
        self.spec = spec or config.rdma_nic_400g()
        self.channel = SharedChannel(
            f"nic-{host}", self.spec.effective_bandwidth
        )

    @property
    def effective_bandwidth(self) -> float:
        """Payload bandwidth after protocol overhead (bytes/ns)."""
        return self.spec.effective_bandwidth

    @property
    def wasted_pcie_fraction(self) -> float:
        """Share of the PCIe slot that never becomes network payload."""
        return 1.0 - self.spec.protocol_efficiency


class RDMAFabric:
    """A lossless RDMA network joining a set of hosts.

    Timing model for a one-sided operation of *size* bytes::

        verbs latency + size / min(src NIC, dst NIC payload bandwidth)

    with both NIC channels charged for contention.
    """

    def __init__(self, switch_latency_ns: float = 300.0,
                 ctx: "SimContext | None" = None) -> None:
        self.switch_latency_ns = switch_latency_ns
        self.stats = RDMAStats()
        self._nics: dict[str, RDMANic] = {}
        if ctx is not None:
            ctx.register("rdma", self)

    def snapshot(self) -> dict:
        """Fabric state for a metrics snapshot: op counters plus
        per-NIC channel traffic."""
        snap = self.stats.snapshot()
        for host, nic in self._nics.items():
            snap[f"nic.{host}.bytes"] = nic.channel.bytes_transferred
            snap[f"nic.{host}.busy_ns"] = nic.channel.busy_time_ns
        return snap

    def add_host(self, host: str,
                 spec: config.LinkSpec | None = None) -> RDMANic:
        """Attach a host to the fabric."""
        if host in self._nics:
            raise TopologyError(f"host {host!r} already on fabric")
        nic = RDMANic(host, spec)
        self._nics[host] = nic
        return nic

    def nic(self, host: str) -> RDMANic:
        """The NIC of a host."""
        try:
            return self._nics[host]
        except KeyError:
            raise TopologyError(f"host {host!r} not on fabric") from None

    def _pair(self, src: str, dst: str) -> tuple[RDMANic, RDMANic]:
        if src == dst:
            raise TopologyError("RDMA to self is not a network operation")
        return self.nic(src), self.nic(dst)

    def one_sided_read_time(self, src: str, dst: str,
                            size_bytes: int) -> float:
        """Unloaded RDMA READ latency for *size_bytes* (ns)."""
        src_nic, dst_nic = self._pair(src, dst)
        self.stats.reads += 1
        self.stats.bytes += size_bytes
        bandwidth = min(src_nic.effective_bandwidth,
                        dst_nic.effective_bandwidth)
        return (src_nic.spec.latency_ns + self.switch_latency_ns
                + transfer_time_ns(size_bytes, bandwidth))

    def one_sided_write_time(self, src: str, dst: str,
                             size_bytes: int) -> float:
        """Unloaded RDMA WRITE latency for *size_bytes* (ns)."""
        # Writes share the READ cost model at this fidelity.
        time_ns = self.one_sided_read_time(src, dst, size_bytes)
        self.stats.reads -= 1
        self.stats.writes += 1
        return time_ns

    def send_completion(self, src: str, dst: str, size_bytes: int,
                        now_ns: float) -> float:
        """Contended two-sided SEND; returns completion time."""
        src_nic, dst_nic = self._pair(src, dst)
        self.stats.sends += 1
        self.stats.bytes += size_bytes
        t = src_nic.channel.request(size_bytes, now_ns)
        t = dst_nic.channel.request(size_bytes, t)
        return t + src_nic.spec.latency_ns + self.switch_latency_ns

    def rpc_time(self, src: str, dst: str, request_bytes: int,
                 response_bytes: int) -> float:
        """Unloaded request/response round trip (ns)."""
        return (self.one_sided_write_time(src, dst, request_bytes)
                + self.one_sided_read_time(dst, src, response_bytes))
