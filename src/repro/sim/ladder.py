"""Exact repeated-addition ladders for the vectorised buffer-pool lane.

The simulator's scalar hot loop advances its clock and demand
accumulators one IEEE-754 addition at a time::

    for _ in range(count):
        now += delta          # think / latency / post chains

The block-native lane must reproduce those floats **bit-identically**
while touching Python once per *segment* instead of once per access.
The trick: between binade crossings, repeated addition of a constant is
an integer recurrence.  Write ``x = m * u`` with ``u = ulp(x)`` (a power
of two) and ``d = (q + frac) * u``; round-to-nearest-even then advances
``m`` by a constant integer increment (after at most one irregular
tie-parity step), so ``n`` additions collapse to one integer
multiply-add plus one exact ``ldexp``.  All classification happens in
exact integer arithmetic via ``float.as_integer_ratio`` — no float
reasoning is trusted beyond IEEE addition itself.

Three entry points:

- :func:`repeat_add` — final value of ``n`` scalar additions.
- :func:`chain_repeat` — ``n`` cycles of a small delta tuple
  (think/latency), also materialising the per-cycle "mid" values the
  scalar lane stores into ``Frame.last_access_ns``.
- :func:`repeat_add_vec` — elementwise ladder over numpy arrays, used by
  the temperature tracker for duplicated page ids.

Mixed-sign operands (the sum walks toward zero) fall back to the scalar
loop; the simulator only ever adds positive durations to non-negative
clocks, so that path is cold by construction.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

TWO53 = 1 << 53
_TOP = TWO53 - 1          # largest integer multiple of ulp we model directly
_SCALAR_N = 32            # below this a plain Python loop is cheaper

__all__ = ["repeat_add", "chain_repeat", "chain_values",
           "repeat_add_vec"]


def repeat_add(x: float, d: float, n: int) -> float:
    """Return the result of ``n`` sequential ``x = x + d`` additions.

    Bit-identical to the scalar loop for every finite input; runs in
    O(binade crossings) when ``x`` and ``d`` share a sign.
    """
    if n <= 0:
        return x
    if d == 0.0:
        return x + d       # fixed point after one add (canonicalises -0.0)
    if not (math.isfinite(x) and math.isfinite(d)):
        for _ in range(min(n, 2)):   # inf/nan saturate within two adds
            x = x + d
        return x
    if d > 0.0:
        if x < 0.0:
            return _repeat_add_mixed(x, d, n)
        return _repeat_add_pos(x, d, n)
    if x > 0.0:
        return _repeat_add_mixed(x, d, n)
    return -_repeat_add_pos(-x, -d, n)   # IEEE rounding is sign-symmetric


def _repeat_add_mixed(x: float, d: float, n: int) -> float:
    # Opposite signs: |x| shrinks until the sum crosses zero, then the
    # same-sign ladder applies.  O(steps to cross); unused by the sim.
    while n and ((x > 0.0) is not (d > 0.0)) and x != 0.0:
        x = x + d
        n -= 1
    return repeat_add(x, d, n)


def _classify(m: int, ad: int, bd_bits: int, s: int) -> Tuple[int, int]:
    """(first_inc, steady_inc) for adding d = ad/2**bd_bits at scale 2**s.

    ``m`` is the current value in units of ``u = 2**s``.  Exact integer
    round-to-nearest-even: d/u = q + r/2**db; ties resolve on the parity
    of ``m + q``, which after one step is always even, giving a constant
    steady increment.
    """
    shift = -s - bd_bits
    if shift >= 0:
        q = ad << shift
        return q, q                       # d is an exact multiple of u
    db = -shift
    q = ad >> db
    r2 = (ad & ((1 << db) - 1)) << 1
    half = 1 << db
    if r2 < half:
        return q, q
    if r2 > half:
        return q + 1, q + 1
    return q + ((m + q) & 1), q + (q & 1)


def _repeat_add_pos(x: float, d: float, n: int) -> float:
    # Precondition: x >= 0 (or -0.0), d > 0, both finite.
    ad, bd = d.as_integer_ratio()
    bd_bits = bd.bit_length() - 1
    while n:
        if n < _SCALAR_N:
            for _ in range(n):
                x = x + d
            return x
        u = math.ulp(x)
        s = math.frexp(u)[1] - 1          # u == 2**s exactly
        ax, bx = x.as_integer_ratio()
        sx = -s - (bx.bit_length() - 1)
        m = ax << sx if sx >= 0 else ax >> -sx    # exact: x is a multiple of u
        first, steady = _classify(m, ad, bd_bits, s)
        if first == 0 and steady == 0:
            return x                       # absorbed: x + d rounds to x
        if first != steady:                # irregular tie-parity step
            if m + first > _TOP:
                x = x + d                  # binade edge: let hardware round
                n -= 1
                continue
            m += first
            n -= 1
            x = math.ldexp(float(m), s)    # exact: m < 2**53, u power of two
            if n == 0 or steady == 0:
                return x
        elif steady == 0:
            return x                       # tie absorbed at even m
        k = (_TOP - m) // steady
        if k <= 0:
            x = x + d
            n -= 1
            continue
        if k > n:
            k = n
        m += k * steady
        n -= k
        x = math.ldexp(float(m), s)
    return x


def _chain_scalar(x: float, deltas: Sequence[float], n: int,
                  mid_index: int, mids: List[float]) -> float:
    for _ in range(n):
        for j, d in enumerate(deltas):
            if j == mid_index:
                mids.append(x)
            x = x + d
        if mid_index == len(deltas):
            mids.append(x)
    return x


def _cycle_profile(parity: int, specs, s: int, mid_index: int):
    """Walk one delta cycle in integer units from a value of given parity.

    Returns (total_inc, mid_offset, max_prefix_inc).  Each step's
    increment depends only on the running parity, so the profile is
    shared by every value congruent mod 2.
    """
    off = 0
    mid_off = 0
    hi = 0
    for j, (ad, bd_bits) in enumerate(specs):
        if j == mid_index:
            mid_off = off
        first, _steady = _classify(parity + off, ad, bd_bits, s)
        off += first
        if off > hi:
            hi = off
    if mid_index == len(specs):
        mid_off = off
    return off, mid_off, hi


def chain_repeat(x: float, deltas: Sequence[float], n: int,
                 mid_index: int) -> Tuple[float, List[float]]:
    """Run ``n`` cycles of ``for d in deltas: x = x + d`` from ``x``.

    Returns the final value and the list of per-cycle *mid* snapshots —
    the value of ``x`` just before the ``mid_index``-th delta of each
    cycle (``mid_index == len(deltas)`` snapshots the cycle end).  Both
    are bit-identical to the scalar loop.  All deltas must be finite and
    positive and ``x`` non-negative; anything else falls back to the
    scalar loop.
    """
    mids: List[float] = []
    if n <= 0:
        return x, mids
    deltas = tuple(deltas)
    if (not deltas or x < 0.0 or not math.isfinite(x)
            or any(not math.isfinite(d) or d <= 0.0 for d in deltas)):
        return _chain_scalar(x, deltas, n, mid_index, mids), mids
    specs = []
    for d in deltas:
        ad, bd = d.as_integer_ratio()
        specs.append((ad, bd.bit_length() - 1))
    while n:
        if n < 8:
            return _chain_scalar(x, deltas, n, mid_index, mids), mids
        u = math.ulp(x)
        s = math.frexp(u)[1] - 1
        ax, bx = x.as_integer_ratio()
        sx = -s - (bx.bit_length() - 1)
        m = ax << sx if sx >= 0 else ax >> -sx
        p = m & 1
        c_p, mid_p, hi_p = _cycle_profile(p, specs, s, mid_index)
        if c_p & 1 == 0:
            # Parity-invariant: every cycle advances by the same integer.
            if c_p == 0 and hi_p == 0:
                mids.extend([x] * n)       # fully absorbed
                return x, mids
            span = max(c_p, hi_p, 1)
            k = (_TOP - m - (hi_p if hi_p > c_p else 0)) // span
            if k <= 0:
                x = _chain_scalar(x, deltas, 1, mid_index, mids)
                n -= 1
                continue
            if k > n:
                k = n
            grid = np.arange(k, dtype=np.float64)
            mids.extend(((float(m + mid_p) + float(c_p) * grid) *
                         math.ldexp(1.0, s)).tolist())
            m += k * c_p
            n -= k
            x = math.ldexp(float(m), s)
            continue
        c_q, mid_q, hi_q = _cycle_profile(1 - p, specs, s, mid_index)
        if c_q & 1 == 0:
            # Parity flips once then settles: burn one cycle, re-enter the
            # invariant branch next iteration.
            x = _chain_scalar(x, deltas, 1, mid_index, mids)
            n -= 1
            continue
        # Both parities advance oddly: true alternation, super-cycle of two.
        pair = c_p + c_q
        hi = max(hi_p, c_p + hi_q, pair)
        k2 = (_TOP - m - hi) // max(pair, 1)
        if k2 <= 0 or n < 2:
            x = _chain_scalar(x, deltas, 1, mid_index, mids)
            n -= 1
            continue
        if k2 > n // 2:
            k2 = n // 2
        grid = np.arange(k2, dtype=np.float64)
        scale = math.ldexp(1.0, s)
        out = np.empty(2 * k2, dtype=np.float64)
        out[0::2] = (float(m + mid_p) + float(pair) * grid) * scale
        out[1::2] = (float(m + c_p + mid_q) + float(pair) * grid) * scale
        mids.extend(out.tolist())
        m += k2 * pair
        n -= 2 * k2
        x = math.ldexp(float(m), s)
    return x, mids


def chain_repeat_arr(x: float, deltas: Sequence[float], n: int,
                     mid_index: int) -> Tuple[float, np.ndarray]:
    """Like :func:`chain_repeat` but returns the mids as a float64
    ndarray, for callers (the buffer pool's vectorised session lane)
    that scatter the per-cycle timestamps straight into pid-indexed
    arrays instead of walking a Python list.

    Mirrors :func:`chain_repeat` step for step — the ladder chunks are
    produced as arrays internally, so collecting them avoids both the
    ``tolist()`` inside the ladder and the list-to-array conversion a
    caller would otherwise pay.  Bit-identical to the scalar loop (and
    therefore to :func:`chain_repeat`) in both the final value and
    every mid.
    """
    if n <= 0:
        return x, np.empty(0, dtype=np.float64)
    deltas = tuple(deltas)
    if (not deltas or x < 0.0 or not math.isfinite(x)
            or any(not math.isfinite(d) or d <= 0.0 for d in deltas)):
        mids: List[float] = []
        return (_chain_scalar(x, deltas, n, mid_index, mids),
                np.asarray(mids, dtype=np.float64))
    specs = []
    for d in deltas:
        ad, bd = d.as_integer_ratio()
        specs.append((ad, bd.bit_length() - 1))
    chunks: List[np.ndarray] = []
    scal: List[float] = []

    def flush_scal() -> None:
        if scal:
            chunks.append(np.asarray(scal, dtype=np.float64))
            scal.clear()

    while n:
        if n < 8:
            x = _chain_scalar(x, deltas, n, mid_index, scal)
            n = 0
            break
        u = math.ulp(x)
        s = math.frexp(u)[1] - 1
        ax, bx = x.as_integer_ratio()
        sx = -s - (bx.bit_length() - 1)
        m = ax << sx if sx >= 0 else ax >> -sx
        p = m & 1
        c_p, mid_p, hi_p = _cycle_profile(p, specs, s, mid_index)
        if c_p & 1 == 0:
            if c_p == 0 and hi_p == 0:
                flush_scal()
                chunks.append(np.full(n, x, dtype=np.float64))
                n = 0
                break
            span = max(c_p, hi_p, 1)
            k = (_TOP - m - (hi_p if hi_p > c_p else 0)) // span
            if k <= 0:
                x = _chain_scalar(x, deltas, 1, mid_index, scal)
                n -= 1
                continue
            if k > n:
                k = n
            grid = np.arange(k, dtype=np.float64)
            flush_scal()
            chunks.append(((float(m + mid_p) + float(c_p) * grid)
                           * math.ldexp(1.0, s)))
            m += k * c_p
            n -= k
            x = math.ldexp(float(m), s)
            continue
        c_q, mid_q, hi_q = _cycle_profile(1 - p, specs, s, mid_index)
        if c_q & 1 == 0:
            x = _chain_scalar(x, deltas, 1, mid_index, scal)
            n -= 1
            continue
        pair = c_p + c_q
        hi = max(hi_p, c_p + hi_q, pair)
        k2 = (_TOP - m - hi) // max(pair, 1)
        if k2 <= 0 or n < 2:
            x = _chain_scalar(x, deltas, 1, mid_index, scal)
            n -= 1
            continue
        if k2 > n // 2:
            k2 = n // 2
        grid = np.arange(k2, dtype=np.float64)
        scale = math.ldexp(1.0, s)
        out = np.empty(2 * k2, dtype=np.float64)
        out[0::2] = (float(m + mid_p) + float(pair) * grid) * scale
        out[1::2] = (float(m + c_p + mid_q) + float(pair) * grid) * scale
        flush_scal()
        chunks.append(out)
        m += k2 * pair
        n -= 2 * k2
        x = math.ldexp(float(m), s)
    flush_scal()
    if not chunks:
        return x, np.empty(0, dtype=np.float64)
    if len(chunks) == 1:
        return x, chunks[0]
    return x, np.concatenate(chunks)


TWO52 = 1 << 52


def chain_values(x: float, vals: np.ndarray, cls: np.ndarray,
                 out: np.ndarray) -> float:
    """Every intermediate of the addition chain ``x += vals[cls[i]]``.

    Writes the value *after* the i-th addition into ``out[i]`` and
    returns the final value — all bit-identical to the scalar loop.
    ``vals`` holds the distinct (non-negative, finite) deltas, ``cls``
    the per-addition class index; NaN entries in ``vals`` mark unused
    classes.

    Why this vectorises: while ``x`` stays inside one binade, it is an
    integer multiple ``M`` of a fixed ulp ``u``, and round-to-nearest
    of ``x + d`` adds a *constant* integer increment per delta class —
    ``floor(d/u)`` plus one when the fractional part exceeds a half —
    so the whole stretch is one integer cumsum.  Everything else —
    binade crossings, exact-half fractions (which round by mantissa
    parity, a value-dependent bit), giant steps, and zero, negative,
    NaN, or subnormal ``x`` — falls back to one plain python add for
    that step, which is the scalar semantics by definition.  The
    result is therefore always exact; only the stretch length varies.
    """
    n = cls.shape[0]
    ncls = vals.shape[0]
    vlist = vals.tolist()
    i = 0
    while i < n:
        scalar_step = x <= 0.0 or not math.isfinite(x)
        if not scalar_step:
            _, e = math.frexp(x)
            u = math.ldexp(1.0, e - 53)
            scalar_step = u == 0.0             # subnormal x
        if scalar_step:
            x = x + vlist[cls[i]]
            out[i] = x
            i += 1
            continue
        M = int(x / u)
        inc = np.empty(ncls, dtype=np.int64)
        for c in range(ncls):
            d = vlist[c]
            if d != d:
                inc[c] = -1                    # unused (NaN) class
                continue
            r = d / u
            if r >= TWO52:
                inc[c] = -1                    # giant step: go scalar
                continue
            q = math.floor(r)
            f = r - q
            if f == 0.5:
                inc[c] = -1                    # parity tie: go scalar
                continue
            inc[c] = int(q) + (1 if f > 0.5 else 0)
        incs = inc[cls[i:]]
        neg = incs < 0
        if neg.any():
            fb = int(np.argmax(neg))
        else:
            fb = incs.shape[0]
        if fb:
            # Bound the stretch so M + cumsum cannot overflow int64:
            # each increment is < 2**52, so a long stretch (tens of
            # thousands of steps at a small ulp) can wrap negative and
            # corrupt the binary search below.  Shorter stretches stay
            # exact — the loop just takes another pass.
            mx = int(incs[:fb].max())
            if mx > 0:
                safe = ((1 << 62) - M) // mx
                if safe < fb:
                    fb = max(1, int(safe))
        cs = M + np.cumsum(incs[:fb])
        stop = int(np.searchsorted(cs, TWO53, side="left"))
        if stop == 0:
            x = x + vlist[cls[i]]
            out[i] = x
            i += 1
            continue
        seg = cs[:stop].astype(np.float64) * u
        out[i:i + stop] = seg
        x = float(seg[-1])
        i += stop
    return x


def repeat_add_vec(heat: np.ndarray, weight, count: np.ndarray) -> None:
    """In place, apply ``count[i]`` sequential ``heat[i] += weight[i]`` adds.

    Elementwise version of :func:`repeat_add` used by the temperature
    tracker for duplicated page ids; bit-identical to the scalar loops.
    ``weight`` may be a scalar or an array broadcast against ``heat``.
    ``count`` is consumed (zeroed) in place.  Negative heats or weights
    degrade to one hardware add per outer iteration (unused by the sim).
    """
    w = np.asarray(weight, dtype=np.float64)
    if heat.shape[0] <= 8:
        # Tiny duplicate sets: each vector iteration below costs ~25
        # numpy calls, so scalar ladders win.  repeat_add is the exact
        # elementwise contract, so the results are identical.
        wl = np.broadcast_to(w, heat.shape)
        for i in range(heat.shape[0]):
            heat[i] = repeat_add(float(heat[i]), float(wl[i]),
                                 int(count[i]))
        count[:] = 0
        return
    top = np.int64(_TOP)
    while True:
        act = count > 0
        if not act.any():
            return
        zero = act & (w == 0.0)
        if zero.any():
            heat[zero] += 0.0
            count[zero] = 0
            act &= ~zero
            if not act.any():
                continue
        u = np.spacing(np.abs(heat))
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            ratio = w / u
        hw = act & (~np.isfinite(heat) | ~np.isfinite(w)
                    | (heat < 0.0) | (w < 0.0) | (ratio >= float(1 << 62)))
        if hw.any():
            heat[hw] += np.broadcast_to(w, heat.shape)[hw] if w.ndim else w
            count[hw] -= 1
            act &= ~hw
            if not act.any():
                continue
        with np.errstate(invalid="ignore", over="ignore"):
            m = np.where(act, heat / u, 0.0).astype(np.int64)   # exact ints
            qf = np.floor(ratio)
            q = np.where(act, qf, 0.0).astype(np.int64)
            frac = np.where(act, ratio - qf, 0.0)  # exact below the guard
        tie = frac == 0.5
        bump = (frac > 0.5).astype(np.int64)
        first = q + np.where(tie, (m + q) & 1, bump)
        steady = q + np.where(tie, q & 1, bump)
        dead = act & (first == 0) & (steady == 0)
        if dead.any():
            count[dead] = 0
            act &= ~dead
        irr = act & (first != steady)
        big = irr & (m + first > top)
        if big.any():
            heat[big] += np.broadcast_to(w, heat.shape)[big] if w.ndim else w
            count[big] -= 1
            act &= ~big
            irr &= ~big
        if irr.any():
            m = np.where(irr, m + first, m)
            count[irr] -= 1
        done = act & (steady == 0)               # tie absorbed after parity fix
        if done.any():
            count[done] = 0
        jump = act & (steady > 0) & (count > 0)
        k = np.where(jump,
                     np.minimum(count, (top - m) // np.where(steady > 0,
                                                             steady, 1)),
                     0)
        k = np.maximum(k, 0)
        stuck = jump & (k == 0)
        m = m + k * steady
        count -= k
        write = irr | (k > 0)
        if write.any():
            vals = m.astype(np.float64) * u
            heat[write] = vals[write]
        if stuck.any():
            heat[stuck] += np.broadcast_to(w, heat.shape)[stuck] if w.ndim else w
            count[stuck] -= 1
