"""Interleaved memory: striping one address range across devices.

Real CXL deployments (including Pond) interleave pages across several
expanders — and across DRAM + CXL — to aggregate bandwidth and to
dilute the latency penalty. An :class:`InterleaveSet` makes N devices
(or N access paths) behave as one: capacity adds up, streaming
bandwidth approaches the sum, and the *average* access latency is the
stripe-weighted mean of the member latencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import CACHE_LINE, transfer_time_ns
from .interconnect import AccessPath


@dataclass
class InterleaveSet:
    """N access paths striped at a fixed granularity.

    ``weights`` optionally skews the stripe (e.g. 1:1 DRAM:CXL or
    3:1); by default every member receives an equal share.
    """

    paths: list[AccessPath]
    granularity_bytes: int = 256
    weights: list[int] | None = None

    def __post_init__(self) -> None:
        if not self.paths:
            raise ConfigError("an interleave set needs members")
        if self.granularity_bytes <= 0:
            raise ConfigError("granularity must be positive")
        if self.weights is None:
            self.weights = [1] * len(self.paths)
        if len(self.weights) != len(self.paths):
            raise ConfigError("one weight per path required")
        if any(w <= 0 for w in self.weights):
            raise ConfigError("weights must be positive")
        total = sum(self.weights)
        self._shares = [w / total for w in self.weights]

    # -- aggregate properties --------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Sum of member capacities."""
        return sum(path.device.capacity_bytes for path in self.paths)

    @property
    def read_bandwidth(self) -> float:
        """Aggregate streaming read bandwidth (bytes/ns).

        Striping engages every member in parallel; the stripe is
        balanced by weight, so the aggregate is limited by the member
        that exhausts its share first.
        """
        return min(
            path.read_bandwidth / share
            for path, share in zip(self.paths, self._shares)
        )

    @property
    def mean_read_latency_ns(self) -> float:
        """Stripe-weighted mean single-access latency."""
        return sum(
            share * path.read_latency_ns()
            for path, share in zip(self.paths, self._shares)
        )

    # -- member selection ---------------------------------------------------

    def path_for(self, addr: int) -> AccessPath:
        """The member serving *addr*, by weighted round-robin stripe."""
        stripe = addr // self.granularity_bytes
        total = sum(self.weights)
        slot = stripe % total
        for path, weight in zip(self.paths, self.weights):
            if slot < weight:
                return path
            slot -= weight
        raise AssertionError("unreachable")

    # -- timing ----------------------------------------------------------------

    def read_time(self, addr: int, size_bytes: int = CACHE_LINE) -> float:
        """Unloaded read of *size_bytes* at *addr* (single member for
        accesses within one stripe unit; parallel across members for
        larger transfers)."""
        if size_bytes <= self.granularity_bytes:
            return self.path_for(addr).read_time(size_bytes)
        latency = self.mean_read_latency_ns
        return latency + transfer_time_ns(size_bytes, self.read_bandwidth)

    def write_time(self, addr: int, size_bytes: int = CACHE_LINE) -> float:
        """Unloaded write of *size_bytes* at *addr*."""
        if size_bytes <= self.granularity_bytes:
            return self.path_for(addr).write_time(size_bytes)
        latency = sum(
            share * path.write_latency_ns()
            for path, share in zip(self.paths, self._shares)
        )
        bandwidth = min(
            path.write_bandwidth / share
            for path, share in zip(self.paths, self._shares)
        )
        return latency + transfer_time_ns(size_bytes, bandwidth)

    def expected_read_latency_ns(self) -> float:
        """What a random single-line load costs on average."""
        return self.mean_read_latency_ns
