"""Discrete-event simulation core.

:class:`Simulator` owns a :class:`~repro.sim.clock.SimClock` and a
priority queue of scheduled entries. Components schedule callbacks
at absolute or relative virtual times; :meth:`Simulator.run` dispatches
them in time order (FIFO among equal timestamps).

The engine layers use the simulator for asynchronous behaviour —
engine spawn/migration (Sec 3.2), failure detection (Sec 2.6) — while
fast-path memory accesses are charged analytically to per-thread clocks.

Two kinds of heap entry share one queue, both stored as plain
``(time_ns, seq, item)`` tuples so heap pushes and pops never invoke a
dataclass ``__lt__`` (the sequence number is unique, so the third
element is never compared):

* **engine events** — ``item`` is a cancellable :class:`Event` carrying
  a callback, created by :meth:`Simulator.at`/:meth:`Simulator.after`
  and dispatched by :meth:`Simulator.step`/:meth:`Simulator.run`;
* **lean wakeups** — ``item`` is an arbitrary payload (the concurrent
  session scheduler passes the session object itself), pushed by
  :meth:`Simulator.schedule` with no Event allocation and drained in
  same-instant batches by :meth:`Simulator.pop_due`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..errors import SimulationError
from .clock import SimClock

if TYPE_CHECKING:  # pragma: no cover
    from .context import SimContext


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback. Ordering is (time, sequence number).

    Only cancellable engine events allocate one of these; session
    wakeups travel through the queue as bare payload tuples
    (:meth:`Simulator.schedule`).
    """

    time_ns: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing; it stays in the queue inert."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event loop over virtual nanoseconds."""

    def __init__(self, start_ns: float = 0.0,
                 ctx: "SimContext | None" = None) -> None:
        # With a context, the simulator drives the *shared* clock
        # instead of constructing a private one (one clock per run).
        if ctx is not None:
            self.clock = ctx.bind_clock(ctx.clock, owner="simulator")
            if start_ns > self.clock.now:
                self.clock.advance_to(start_ns)
        else:
            self.clock = SimClock(start_ns)
        self._queue: list[tuple] = []
        self._seq = itertools.count()
        self._dispatched = 0

    @property
    def now(self) -> float:
        """Current virtual time in ns."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) entries still queued."""
        return sum(
            1 for entry in self._queue
            if type(entry[2]) is not Event or not entry[2].cancelled
        )

    @property
    def dispatched(self) -> int:
        """Total number of entries executed so far."""
        return self._dispatched

    def at(self, time_ns: float, callback: Callable[..., None],
           *args: Any) -> Event:
        """Schedule *callback* at the absolute virtual time *time_ns*."""
        if time_ns < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now},"
                f" requested={time_ns}"
            )
        time_ns = float(time_ns)
        event = Event(time_ns, next(self._seq), callback, args)
        heapq.heappush(self._queue, (time_ns, event.seq, event))
        return event

    def after(self, delay_ns: float, callback: Callable[..., None],
              *args: Any) -> Event:
        """Schedule *callback* after a relative delay."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.at(self.clock.now + delay_ns, callback, *args)

    def schedule(self, time_ns: float, item: Any) -> None:
        """Queue a bare payload at *time_ns* — the lean wakeup path.

        No :class:`Event` is allocated and nothing is returned, so the
        entry cannot be cancelled; consume it with :meth:`pop_due`.
        Used by the concurrent session scheduler, which re-arms one
        wakeup per session quantum and never cancels them.
        """
        if time_ns < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now},"
                f" requested={time_ns}"
            )
        heapq.heappush(self._queue, (time_ns, next(self._seq), item))

    def pop_due(self) -> list:
        """Advance to the next instant and pop *every* entry there.

        Returns the (possibly empty) list of items queued at the
        earliest pending timestamp, in push order — the bulk ready-set
        drain: equal-instant arrivals come back as one batch without a
        heap peek per pop, so the caller can order them by policy
        instead of by heap accidents. Cancelled :class:`Event` entries
        are skipped; live ones are returned *undispatched* (their
        callbacks are the caller's responsibility).
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time_ns, _, item = pop(queue)
            if type(item) is Event and item.cancelled:
                continue
            batch = [item]
            while queue and queue[0][0] == time_ns:
                nxt = pop(queue)[2]
                if type(nxt) is Event and nxt.cancelled:
                    continue
                batch.append(nxt)
            self.clock.advance_to(time_ns)
            self._dispatched += len(batch)
            return batch
        return []

    def step(self) -> bool:
        """Dispatch the next live event. Returns False if none remain."""
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if type(event) is Event:
                if event.cancelled:
                    continue
                self.clock.advance_to(event.time_ns)
                event.callback(*event.args)
            else:
                raise SimulationError(
                    "step() popped a lean entry (scheduled with"
                    " schedule()); drain those with pop_due()"
                )
            self._dispatched += 1
            return True
        return False

    def run(self, until_ns: float | None = None,
            max_events: int = 10_000_000) -> int:
        """Run events until the queue drains or *until_ns* is reached.

        Returns the number of events dispatched by this call. The
        *max_events* guard turns accidental infinite self-rescheduling
        into a loud error instead of a hang.
        """
        dispatched = 0
        while self._queue:
            head = self._peek()
            if head is None:
                break
            if until_ns is not None and head[0] > until_ns:
                break
            if not self.step():
                break
            dispatched += 1
            if dispatched > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
        if until_ns is not None and self.clock.now < until_ns:
            self.clock.advance_to(until_ns)
        return dispatched

    def peek_time_ns(self) -> float | None:
        """Timestamp of the next live entry, or None when drained.

        The concurrent session scheduler uses this to decide whether
        the session it just ran is still the sole runnable one (its
        cursor strictly precedes every queued wakeup), which lets it
        re-run the session without a heap round-trip.
        """
        head = self._peek()
        return head[0] if head is not None else None

    def _peek(self) -> tuple | None:
        """Return the next live entry without dispatching it."""
        queue = self._queue
        while queue:
            item = queue[0][2]
            if type(item) is Event and item.cancelled:
                heapq.heappop(queue)
                continue
            return queue[0]
        return None
