"""Discrete-event simulation core.

:class:`Simulator` owns a :class:`~repro.sim.clock.SimClock` and a
priority queue of :class:`Event` objects. Components schedule callbacks
at absolute or relative virtual times; :meth:`Simulator.run` dispatches
them in time order (FIFO among equal timestamps).

The engine layers use the simulator for asynchronous behaviour —
engine spawn/migration (Sec 3.2), failure detection (Sec 2.6) — while
fast-path memory accesses are charged analytically to per-thread clocks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..errors import SimulationError
from .clock import SimClock

if TYPE_CHECKING:  # pragma: no cover
    from .context import SimContext


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordering is (time, sequence number)."""

    time_ns: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing; it stays in the queue inert."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event loop over virtual nanoseconds."""

    def __init__(self, start_ns: float = 0.0,
                 ctx: "SimContext | None" = None) -> None:
        # With a context, the simulator drives the *shared* clock
        # instead of constructing a private one (one clock per run).
        if ctx is not None:
            self.clock = ctx.bind_clock(ctx.clock, owner="simulator")
            if start_ns > self.clock.now:
                self.clock.advance_to(start_ns)
        else:
            self.clock = SimClock(start_ns)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._dispatched = 0

    @property
    def now(self) -> float:
        """Current virtual time in ns."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def dispatched(self) -> int:
        """Total number of events executed so far."""
        return self._dispatched

    def at(self, time_ns: float, callback: Callable[..., None],
           *args: Any) -> Event:
        """Schedule *callback* at the absolute virtual time *time_ns*."""
        if time_ns < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now},"
                f" requested={time_ns}"
            )
        event = Event(float(time_ns), next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay_ns: float, callback: Callable[..., None],
              *args: Any) -> Event:
        """Schedule *callback* after a relative delay."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.at(self.clock.now + delay_ns, callback, *args)

    def step(self) -> bool:
        """Dispatch the next live event. Returns False if none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time_ns)
            event.callback(*event.args)
            self._dispatched += 1
            return True
        return False

    def run(self, until_ns: float | None = None,
            max_events: int = 10_000_000) -> int:
        """Run events until the queue drains or *until_ns* is reached.

        Returns the number of events dispatched by this call. The
        *max_events* guard turns accidental infinite self-rescheduling
        into a loud error instead of a hang.
        """
        dispatched = 0
        while self._queue:
            head = self._peek()
            if head is None:
                break
            if until_ns is not None and head.time_ns > until_ns:
                break
            if not self.step():
                break
            dispatched += 1
            if dispatched > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
        if until_ns is not None and self.clock.now < until_ns:
            self.clock.advance_to(until_ns)
        return dispatched

    def peek_time_ns(self) -> float | None:
        """Timestamp of the next live event, or None when drained.

        The concurrent session scheduler uses this to collect every
        wakeup sharing the current instant before applying its
        fairness policy — equal-timestamp ordering then becomes a
        deterministic policy decision (tie-broken by session name)
        rather than an artifact of heap insertion order.
        """
        head = self._peek()
        return head.time_ns if head is not None else None

    def _peek(self) -> Event | None:
        """Return the next live event without dispatching it."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None
