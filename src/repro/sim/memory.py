"""Byte-addressable memory devices.

A :class:`MemoryDevice` wraps a :class:`~repro.config.MemorySpec` with
three responsibilities:

* **timing** — unloaded access latency plus streaming bandwidth, with
  protocol efficiency applied (an inefficient protocol occupies more of
  the raw channel per payload byte, which is how the Intel 70%-vs-46%
  observation is modelled);
* **contention** — all accesses share one
  :class:`~repro.sim.bandwidth.SharedChannel`;
* **allocation** — a first-fit byte allocator so pooling experiments can
  measure used vs stranded capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..config import MemoryKind, MemorySpec
from ..errors import AddressError, ConfigError, DeviceFailure
from ..units import CACHE_LINE
from .bandwidth import SharedChannel, TransferTable

if TYPE_CHECKING:  # pragma: no cover
    from .context import SimContext


@dataclass(slots=True)
class MemoryStats:
    """Access counters for one device."""

    loads: int = 0
    stores: int = 0
    load_bytes: int = 0
    store_bytes: int = 0

    @property
    def accesses(self) -> int:
        """Total number of load + store operations."""
        return self.loads + self.stores

    @property
    def bytes_total(self) -> int:
        """Total payload bytes moved."""
        return self.load_bytes + self.store_bytes

    def snapshot(self) -> dict:
        """Counters as a dict (metrics snapshot protocol)."""
        return {
            "loads": self.loads,
            "stores": self.stores,
            "load_bytes": self.load_bytes,
            "store_bytes": self.store_bytes,
        }


class MemoryDevice:
    """One memory device (DIMM group, CXL expander, NVM module)."""

    def __init__(self, spec: MemorySpec, name: str | None = None,
                 ctx: "SimContext | None" = None) -> None:
        self.spec = spec
        self.name = name or spec.name
        self.stats = MemoryStats()
        self.channel = SharedChannel(self.name, spec.peak_bandwidth)
        # Device timing table, built once: unloaded access latencies
        # plus per-size-class transfer times at effective bandwidth.
        # The hot path reads these instead of re-deriving efficiency-
        # scaled bandwidths per access; values are bit-identical to the
        # spec arithmetic they replace.
        self.load_latency_ns = spec.load_latency_ns
        self.store_latency_ns = spec.store_latency_ns
        self.load_transfer = TransferTable(spec.effective_load_bandwidth)
        self.store_transfer = TransferTable(spec.effective_store_bandwidth)
        self._failed = False
        # First-fit free list: sorted list of (offset, size) holes.
        self._holes: list[tuple[int, int]] = [(0, spec.capacity_bytes)]
        self._allocations: dict[int, int] = {}
        if ctx is not None:
            ctx.register(f"device.{self.name}", self)

    # -- identity ------------------------------------------------------

    @property
    def kind(self) -> MemoryKind:
        """Device class (local DRAM, CXL DRAM, ...)."""
        return self.spec.kind

    @property
    def is_cxl(self) -> bool:
        """Whether the device sits behind a CXL port."""
        return self.spec.kind in (
            MemoryKind.CXL_DRAM, MemoryKind.CXL_HBM, MemoryKind.CXL_NVM
        )

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity."""
        return self.spec.capacity_bytes

    # -- failure injection ----------------------------------------------

    @property
    def healthy(self) -> bool:
        """False after :meth:`fail` was called."""
        return not self._failed

    def fail(self) -> None:
        """Mark the device failed; further accesses raise DeviceFailure."""
        self._failed = True

    def repair(self) -> None:
        """Clear the failure flag."""
        self._failed = False

    def _check_health(self) -> None:
        if self._failed:
            raise DeviceFailure(f"device {self.name} has failed")

    # -- timing ----------------------------------------------------------

    def load_time(self, size_bytes: int = CACHE_LINE) -> float:
        """Unloaded time to read *size_bytes*, in ns."""
        self._check_health()
        stats = self.stats
        stats.loads += 1
        stats.load_bytes += size_bytes
        return self.load_latency_ns + self.load_transfer.time_ns(size_bytes)

    def store_time(self, size_bytes: int = CACHE_LINE) -> float:
        """Unloaded time to write *size_bytes*, in ns."""
        self._check_health()
        stats = self.stats
        stats.stores += 1
        stats.store_bytes += size_bytes
        return self.store_latency_ns + self.store_transfer.time_ns(size_bytes)

    def load_completion(self, size_bytes: int, now_ns: float) -> float:
        """Contended read: completion time given the shared channel.

        The channel is charged ``size / efficiency`` raw bytes, so a
        less efficient protocol both slows this access and congests the
        device more for everyone else.
        """
        self._check_health()
        self.stats.loads += 1
        self.stats.load_bytes += size_bytes
        raw = int(size_bytes / self.spec.load_efficiency)
        done = self.channel.request(raw, now_ns)
        return done + self.spec.load_latency_ns

    def store_completion(self, size_bytes: int, now_ns: float) -> float:
        """Contended write: completion time given the shared channel."""
        self._check_health()
        self.stats.stores += 1
        self.stats.store_bytes += size_bytes
        raw = int(size_bytes / self.spec.store_efficiency)
        done = self.channel.request(raw, now_ns)
        return done + self.spec.store_latency_ns

    # -- allocation -------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently handed out by :meth:`allocate`."""
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        """Bytes not currently allocated (the *stranded* capacity when
        no consumer can reach them)."""
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, size_bytes: int) -> int:
        """First-fit allocation; returns the device-relative offset."""
        self._check_health()
        if size_bytes <= 0:
            raise ConfigError(f"allocation size must be positive: {size_bytes}")
        for idx, (offset, hole) in enumerate(self._holes):
            if hole >= size_bytes:
                if hole == size_bytes:
                    del self._holes[idx]
                else:
                    self._holes[idx] = (offset + size_bytes, hole - size_bytes)
                self._allocations[offset] = size_bytes
                return offset
        raise AddressError(
            f"{self.name}: cannot allocate {size_bytes} B"
            f" ({self.free_bytes} B free, fragmented into"
            f" {len(self._holes)} holes)"
        )

    def free(self, offset: int) -> None:
        """Release an allocation, coalescing adjacent holes."""
        size = self._allocations.pop(offset, None)
        if size is None:
            raise AddressError(f"{self.name}: no allocation at {offset:#x}")
        self._holes.append((offset, size))
        self._holes.sort()
        merged: list[tuple[int, int]] = []
        for start, length in self._holes:
            if merged and merged[-1][0] + merged[-1][1] == start:
                prev_start, prev_len = merged[-1]
                merged[-1] = (prev_start, prev_len + length)
            else:
                merged.append((start, length))
        self._holes = merged

    def reset_stats(self) -> None:
        """Zero the access counters and channel accounting."""
        self.stats = MemoryStats()
        self.channel.reset()

    def snapshot(self) -> dict:
        """Device state for a metrics snapshot (access counters,
        channel traffic, allocation occupancy)."""
        snap = self.stats.snapshot()
        snap["kind"] = self.kind.value
        snap["healthy"] = self.healthy
        snap["allocated_bytes"] = self.allocated_bytes
        snap["channel_bytes"] = self.channel.bytes_transferred
        snap["channel_busy_ns"] = self.channel.busy_time_ns
        return snap

    def __repr__(self) -> str:
        return (
            f"MemoryDevice({self.name!r}, kind={self.kind.value},"
            f" cap={self.capacity_bytes})"
        )
