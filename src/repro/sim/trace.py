"""Virtual-time tracing sinks.

The tracing half of the instrumentation spine records *spans* (an
interval of virtual time attributed to a named activity) and *instant
events*. Timestamps are the simulator's virtual nanoseconds, never
wall-clock, so a trace of a run is deterministic.

Sinks:

* :data:`NULL_SINK` — the default; a no-op singleton whose ``enabled``
  flag lets hot paths skip span bookkeeping entirely, so disabled
  tracing costs one attribute load and a branch;
* :class:`MemoryTraceSink` — collects records in lists (tests,
  programmatic inspection);
* :class:`JsonLinesTraceSink` — one JSON object per record, streamed;
* :class:`ChromeTraceSink` — a ``chrome://tracing`` / Perfetto JSON
  file; open it with the browser's trace viewer to see where the
  virtual nanoseconds of a run went.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from ..errors import SimulationError


class SpanRecord:
    """One completed span of virtual time."""

    __slots__ = ("name", "cat", "start_ns", "end_ns", "args")

    def __init__(self, name: str, cat: str, start_ns: float,
                 end_ns: float, args: dict | None = None) -> None:
        self.name = name
        self.cat = cat
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.args = args

    @property
    def duration_ns(self) -> float:
        """Span length in virtual ns."""
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, cat={self.cat!r},"
            f" [{self.start_ns:.0f}..{self.end_ns:.0f}]ns)"
        )


class TraceSink:
    """Base sink: validates records, dispatches to ``_write_*`` hooks."""

    __slots__ = ()

    #: Hot paths check this before building span objects.
    enabled: bool = True

    def emit_span(self, name: str, cat: str, start_ns: float,
                  end_ns: float, args: dict | None = None) -> None:
        """Record a completed [start, end] span of virtual time."""
        if end_ns < start_ns:
            raise SimulationError(
                f"span {name!r} ends before it starts:"
                f" [{start_ns}, {end_ns}]"
            )
        self._write_span(SpanRecord(name, cat, start_ns, end_ns, args))

    def emit_instant(self, name: str, cat: str, ts_ns: float,
                     args: dict | None = None) -> None:
        """Record a zero-duration event at *ts_ns*."""
        self._write_instant(name, cat, ts_ns, args)

    def _write_span(self, span: SpanRecord) -> None:
        raise NotImplementedError

    def _write_instant(self, name: str, cat: str, ts_ns: float,
                       args: dict | None) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resource."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullTraceSink(TraceSink):
    """The disabled sink: a no-op singleton, zero per-record cost."""

    __slots__ = ()

    enabled = False
    _instance: "NullTraceSink | None" = None

    def __new__(cls) -> "NullTraceSink":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def emit_span(self, name: str, cat: str, start_ns: float,
                  end_ns: float, args: dict | None = None) -> None:
        """Discard (kept cheap: no validation, no allocation)."""

    def emit_instant(self, name: str, cat: str, ts_ns: float,
                     args: dict | None = None) -> None:
        """Discard."""


#: The shared no-op sink every component defaults to.
NULL_SINK = NullTraceSink()


class MemoryTraceSink(TraceSink):
    """Collects records in memory — the test/inspection sink."""

    __slots__ = ("spans", "instants")

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.instants: list[tuple[str, str, float, dict | None]] = []

    def _write_span(self, span: SpanRecord) -> None:
        self.spans.append(span)

    def _write_instant(self, name: str, cat: str, ts_ns: float,
                       args: dict | None) -> None:
        self.instants.append((name, cat, ts_ns, args))


class JsonLinesTraceSink(TraceSink):
    """Streams records as JSON lines (one object per line).

    Accepts a path (opened and owned by the sink) or any open
    file-like object (left open on :meth:`close`).
    """

    __slots__ = ("_fh", "_owns")

    def __init__(self, out: str | TextIO) -> None:
        if isinstance(out, str):
            self._fh: TextIO = open(out, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = out
            self._owns = False

    def _write(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, default=str))
        self._fh.write("\n")

    def _write_span(self, span: SpanRecord) -> None:
        record: dict[str, Any] = {
            "type": "span", "name": span.name, "cat": span.cat,
            "ts_ns": span.start_ns, "dur_ns": span.duration_ns,
        }
        if span.args:
            record["args"] = span.args
        self._write(record)

    def _write_instant(self, name: str, cat: str, ts_ns: float,
                       args: dict | None) -> None:
        record: dict[str, Any] = {
            "type": "instant", "name": name, "cat": cat, "ts_ns": ts_ns,
        }
        if args:
            record["args"] = args
        self._write(record)

    def close(self) -> None:
        """Flush; close the file if the sink opened it."""
        self._fh.flush()
        if self._owns:
            self._fh.close()


class ChromeTraceSink(TraceSink):
    """Writes the Chrome trace-event JSON format.

    Virtual nanoseconds are emitted as the format's microsecond
    timestamps (``ts = ns / 1000``), so 1 us in the viewer is 1 us of
    *virtual* time. Each span category becomes a named track (thread
    row) in the viewer.
    """

    __slots__ = ("_out", "_events", "_tracks")

    def __init__(self, out: str | TextIO) -> None:
        self._out = out
        self._events: list[dict[str, Any]] = []
        self._tracks: dict[str, int] = {}

    def _tid(self, cat: str) -> int:
        tid = self._tracks.get(cat)
        if tid is None:
            tid = len(self._tracks)
            self._tracks[cat] = tid
        return tid

    def _write_span(self, span: SpanRecord) -> None:
        event: dict[str, Any] = {
            "name": span.name, "cat": span.cat or "sim", "ph": "X",
            "ts": span.start_ns / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": 0, "tid": self._tid(span.cat or "sim"),
        }
        if span.args:
            event["args"] = span.args
        self._events.append(event)

    def _write_instant(self, name: str, cat: str, ts_ns: float,
                       args: dict | None) -> None:
        event: dict[str, Any] = {
            "name": name, "cat": cat or "sim", "ph": "i",
            "ts": ts_ns / 1000.0, "pid": 0,
            "tid": self._tid(cat or "sim"), "s": "t",
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def trace_object(self) -> dict[str, Any]:
        """The complete trace as the Chrome JSON object."""
        metadata = [
            {
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": track},
            }
            for track, tid in self._tracks.items()
        ]
        return {
            "traceEvents": metadata + self._events,
            "displayTimeUnit": "ns",
            "otherData": {"clock": "virtual-ns"},
        }

    def close(self) -> None:
        """Serialize the collected events."""
        obj = self.trace_object()
        if isinstance(self._out, str):
            with open(self._out, "w", encoding="utf-8") as fh:
                json.dump(obj, fh)
        else:
            json.dump(obj, self._out)


def sink_for_path(path: str) -> TraceSink:
    """Choose an exporter by file extension (``.jsonl`` streams JSON
    lines; anything else gets a Chrome trace)."""
    if path.endswith(".jsonl"):
        return JsonLinesTraceSink(path)
    return ChromeTraceSink(path)
