"""NUMA systems, with CXL expanders as core-less NUMA nodes.

Sec 2.4 of the paper: "When a CXL memory expander is used, it
effectively attaches more DRAM DIMMs to the system by creating an
additional NUMA node, albeit one without any cores." This module builds
exactly that: sockets with cores and local DRAM, joined by UPI-style
links, plus optional CXL nodes hanging off a socket through a CXL port
(and optionally a switch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import config
from ..errors import TopologyError
from .interconnect import AccessPath, Link
from .memory import MemoryDevice


@dataclass
class NUMANode:
    """One NUMA node: memory plus (possibly zero) cores."""

    node_id: int
    device: MemoryDevice
    cores: int = 0
    attach_links: tuple[Link, ...] = field(default_factory=tuple)

    @property
    def is_cxl(self) -> bool:
        """True for expander-backed (core-less) nodes."""
        return self.device.is_cxl

    def __repr__(self) -> str:
        return (
            f"NUMANode({self.node_id}, cores={self.cores},"
            f" device={self.device.name})"
        )


class NUMASystem:
    """A multi-socket server, optionally extended with CXL nodes.

    Latency convention: socket DRAM uses the *local* spec (e.g.
    :func:`repro.config.local_ddr5`); remoteness is charged by the UPI
    link on the access path. CXL expander specs are end-to-end from the
    attached socket, so a direct attach adds no further link latency
    and a switched attach adds one switch hop.
    """

    def __init__(self) -> None:
        self._nodes: dict[int, NUMANode] = {}
        self._attachment: dict[int, int] = {}
        self._socket_link = Link(config.numa_link())

    # -- construction -----------------------------------------------------

    def add_socket(self, device: MemoryDevice, cores: int = 32) -> NUMANode:
        """Add a CPU socket with its locally attached DRAM."""
        if cores <= 0:
            raise TopologyError("a socket must have cores")
        node = NUMANode(node_id=len(self._nodes), device=device, cores=cores)
        self._nodes[node.node_id] = node
        return node

    def add_cxl_expander(
        self,
        device: MemoryDevice,
        attached_to: NUMANode,
        through_switch: bool = False,
        port: Link | None = None,
    ) -> NUMANode:
        """Attach an expander below *attached_to*, as a core-less node.

        With ``through_switch=True`` the path gains a CXL 2.0 switch
        hop, modelling a pooled expander in a remote chassis.
        """
        if attached_to.node_id not in self._nodes:
            raise TopologyError(f"unknown socket {attached_to}")
        links: list[Link] = [port or Link(config.cxl_port())]
        if through_switch:
            links.append(Link(config.cxl_switch_hop()))
        node = NUMANode(
            node_id=len(self._nodes),
            device=device,
            cores=0,
            attach_links=tuple(links),
        )
        self._nodes[node.node_id] = node
        self._attachment[node.node_id] = attached_to.node_id
        return node

    # -- inspection --------------------------------------------------------

    @property
    def nodes(self) -> list[NUMANode]:
        """All nodes in id order."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    @property
    def sockets(self) -> list[NUMANode]:
        """Nodes that have cores."""
        return [n for n in self.nodes if n.cores > 0]

    @property
    def cxl_nodes(self) -> list[NUMANode]:
        """Core-less expander nodes."""
        return [n for n in self.nodes if n.is_cxl]

    @property
    def total_capacity_bytes(self) -> int:
        """Capacity across every node, local and CXL."""
        return sum(n.device.capacity_bytes for n in self.nodes)

    def node(self, node_id: int) -> NUMANode:
        """Look a node up by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"no NUMA node {node_id}") from None

    # -- access paths -------------------------------------------------------

    def path(self, from_node: NUMANode, to_node: NUMANode) -> AccessPath:
        """Access path from a core on *from_node* to *to_node*'s memory.

        * same node: direct device access;
        * socket to socket: one UPI hop;
        * socket to CXL node: the expander's attach links, plus a UPI
          hop first if the expander hangs off a different socket.
        """
        if from_node.cores == 0:
            raise TopologyError(
                f"{from_node} has no cores; cannot originate accesses"
            )
        if from_node.node_id == to_node.node_id:
            return AccessPath(device=to_node.device)
        if not to_node.is_cxl:
            return AccessPath(
                device=to_node.device, links=(self._socket_link,)
            )
        home_socket = self._attachment.get(to_node.node_id)
        links: list[Link] = []
        if home_socket is not None and home_socket != from_node.node_id:
            links.append(self._socket_link)
        links.extend(to_node.attach_links)
        return AccessPath(device=to_node.device, links=tuple(links))

    def local_path(self, socket: NUMANode) -> AccessPath:
        """Convenience: path from a socket to its own DRAM."""
        return self.path(socket, socket)
