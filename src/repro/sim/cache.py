"""Per-agent hardware cache model.

A :class:`AgentCache` is a set-associative, LRU cache of line addresses
that sits in front of a :class:`~repro.sim.coherence.CoherenceDirectory`.
It produces realistic miss/eviction streams so coherence-traffic
experiments (E7/F1) see capacity effects, not just sharing effects.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ConfigError
from ..units import CACHE_LINE
from .coherence import CoherenceDirectory


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit, in [0, 1]."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class AgentCache:
    """Set-associative LRU cache attached to one coherence agent."""

    def __init__(
        self,
        directory: CoherenceDirectory,
        capacity_bytes: int,
        ways: int = 8,
        line_bytes: int = CACHE_LINE,
        agent_id: int | None = None,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0:
            raise ConfigError("cache capacity and line size must be positive")
        lines = capacity_bytes // line_bytes
        if lines < ways or lines % ways != 0:
            raise ConfigError(
                f"capacity {capacity_bytes} not divisible into {ways}-way sets"
            )
        self.directory = directory
        self.agent_id = directory.register_agent(agent_id)
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = lines // ways
        self.stats = CacheStats()
        # One OrderedDict per set: line address -> dirty flag, LRU order.
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def _set_for(self, line: int) -> OrderedDict[int, bool]:
        return self._sets[line % self.num_sets]

    def line_of(self, addr: int) -> int:
        """Cache-line index of a byte address."""
        return addr // self.line_bytes

    def contains(self, line: int) -> bool:
        """Whether the line is currently resident."""
        return line in self._set_for(line)

    # -- accesses ----------------------------------------------------------

    def load(self, addr: int) -> int:
        """Load the byte at *addr*. Returns coherence messages caused."""
        return self._access(addr, is_write=False)

    def store(self, addr: int) -> int:
        """Store to the byte at *addr*. Returns coherence messages."""
        return self._access(addr, is_write=True)

    def _access(self, addr: int, is_write: bool) -> int:
        line = self.line_of(addr)
        cache_set = self._set_for(line)
        messages = 0
        if line in cache_set:
            self.stats.hits += 1
            cache_set.move_to_end(line)
            if is_write:
                # An upgrade may still invalidate remote sharers.
                messages = self.directory.write(self.agent_id, line)
                cache_set[line] = True
            else:
                # A hit can still be a stale S copy if someone else wrote;
                # the directory read is a no-op when we genuinely hold it.
                messages = self.directory.read(self.agent_id, line)
            return messages

        self.stats.misses += 1
        if len(cache_set) >= self.ways:
            victim, _dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            messages += self.directory.evict(self.agent_id, victim)
        if is_write:
            messages += self.directory.write(self.agent_id, line)
        else:
            messages += self.directory.read(self.agent_id, line)
        cache_set[line] = is_write
        return messages

    def invalidate_all(self) -> int:
        """Flush the cache (e.g. on agent failure). Returns messages."""
        messages = 0
        for cache_set in self._sets:
            for line in list(cache_set):
                messages += self.directory.evict(self.agent_id, line)
            cache_set.clear()
        return messages
