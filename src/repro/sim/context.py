"""The instrumentation spine: one clock, one metrics tree, one trace.

A :class:`SimContext` bundles the three cross-cutting concerns every
simulated component needs:

* the **virtual clock** (:class:`~repro.sim.clock.SimClock`) — shared,
  never constructed ad-hoc by components that received a context;
* a hierarchical :class:`~repro.metrics.registry.MetricsRegistry` —
  components register themselves as snapshot providers under dotted
  namespaces (``device.*``, ``link.*``, ``pool``, ``operator.*``, ...)
  so a single :meth:`snapshot` answers "where did the nanoseconds go";
* a pluggable :class:`~repro.sim.trace.TraceSink` recording spans and
  events in *virtual* time (the no-op :data:`~repro.sim.trace.NULL_SINK`
  by default, so disabled tracing is free on hot paths).

Every layer accepts an optional ``ctx``; when omitted, a private
context is created so existing call sites keep working unchanged. The
clock-uniqueness invariant is enforced by :meth:`SimContext.bind_clock`:
a component that *uses* a clock while holding a context must bind it,
and binding any clock other than the context's own raises.

Ambient instrumentation (:func:`set_ambient`) lets the CLI hand a
trace sink and metrics registry to engines it never constructs
directly: ``SimContext.ambient()`` picks them up while still giving
each engine its own clock (so simulated results are unaffected).
"""

from __future__ import annotations

from ..errors import SimulationError
from ..metrics.registry import MetricsRegistry
from .clock import SimClock
from .trace import NULL_SINK, TraceSink


class _NoopSpan:
    """Context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """An open span: reads the virtual clock on enter and exit."""

    __slots__ = ("_ctx", "_name", "_cat", "_args", "_start")

    def __init__(self, ctx: "SimContext", name: str, cat: str,
                 args: dict | None) -> None:
        self._ctx = ctx
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._ctx.clock.now
        return self

    def __exit__(self, *exc: object) -> bool:
        ctx = self._ctx
        ctx.trace.emit_span(self._name, self._cat, self._start,
                            ctx.clock.now, self._args)
        return False


class SimContext:
    """Clock + metrics + trace, threaded through every layer."""

    __slots__ = ("clock", "metrics", "trace", "_clock_owners")

    def __init__(self, clock: SimClock | None = None,
                 metrics: MetricsRegistry | None = None,
                 trace: TraceSink | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else NULL_SINK
        self._clock_owners: list[str] = []

    @classmethod
    def ambient(cls, clock: SimClock | None = None) -> "SimContext":
        """A context wired to the ambient sink/metrics (see
        :func:`set_ambient`) but with its own fresh clock unless one
        is passed — engines stay independently timed."""
        return cls(clock=clock, metrics=_ambient_metrics,
                   trace=_ambient_trace)

    # -- the clock invariant -------------------------------------------

    def bind_clock(self, clock: SimClock, owner: str = "") -> SimClock:
        """Assert that *clock* IS this context's clock and record the
        binding. Components that time themselves against a context
        must bind, so a run provably uses exactly one clock."""
        if clock is not self.clock:
            owners = ", ".join(self._clock_owners) or "none yet"
            raise SimulationError(
                f"{owner or 'component'} would introduce a second clock"
                f" into this SimContext (bound so far: {owners});"
                " a run must use exactly one clock"
            )
        self._clock_owners.append(owner or "component")
        return clock

    @property
    def clock_owners(self) -> tuple[str, ...]:
        """Components that bound (asserted) the shared clock."""
        return tuple(self._clock_owners)

    @property
    def now(self) -> float:
        """Current virtual time in ns."""
        return self.clock.now

    # -- tracing -------------------------------------------------------

    def span(self, name: str, cat: str = "sim",
             args: dict | None = None) -> object:
        """A ``with``-able span over virtual time.

        When tracing is disabled this returns a shared no-op context
        manager — no allocation, no clock reads.
        """
        if not self.trace.enabled:
            return _NOOP_SPAN
        return _Span(self, name, cat, args)

    def event(self, name: str, cat: str = "sim",
              args: dict | None = None) -> None:
        """Emit an instant event at the current virtual time."""
        trace = self.trace
        if trace.enabled:
            trace.emit_instant(name, cat, self.clock.now, args)

    # -- metrics -------------------------------------------------------

    def register(self, namespace: str, provider: object) -> str:
        """Register a snapshot provider; returns the namespace used."""
        return self.metrics.register(namespace, provider)

    def snapshot(self) -> dict:
        """The hierarchical metrics snapshot for this context."""
        return self.metrics.snapshot()

    def __repr__(self) -> str:
        return (
            f"SimContext(now={self.clock.now:.1f}ns,"
            f" trace={'on' if self.trace.enabled else 'off'},"
            f" owners={len(self._clock_owners)})"
        )


# -- ambient instrumentation (sink/metrics only, never a clock) ----------

_ambient_trace: TraceSink | None = None
_ambient_metrics: MetricsRegistry | None = None


def set_ambient(trace: TraceSink | None = None,
                metrics: MetricsRegistry | None = None
                ) -> tuple[TraceSink | None, MetricsRegistry | None]:
    """Install process-wide default instrumentation.

    Contexts created via :meth:`SimContext.ambient` (which is what
    :meth:`repro.core.engine.ScaleUpEngine.build` uses when no context
    is passed) adopt these. Returns the previous pair so callers can
    restore it. Pass ``(None, None)`` to clear.
    """
    global _ambient_trace, _ambient_metrics
    previous = (_ambient_trace, _ambient_metrics)
    _ambient_trace = trace
    _ambient_metrics = metrics
    return previous


def ambient_instrumentation() -> tuple[TraceSink | None,
                                       MetricsRegistry | None]:
    """The currently installed ambient (trace, metrics) pair."""
    return (_ambient_trace, _ambient_metrics)
