"""Shared-bandwidth contention model.

A :class:`SharedChannel` is a work-conserving FIFO server draining
requests at a fixed rate. Concurrent requests therefore queue behind
one another, which is how contention on a memory channel, CXL port, or
NIC surfaces as extra latency. The model is analytic: callers pass the
current virtual time and receive the completion time back, so no event
scheduling is needed on the fast path.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import CACHE_LINE, PAGE_SIZE, transfer_time_ns

#: Size classes every workload touches; their transfer times are
#: precomputed at table construction so the hot path never divides.
DEFAULT_SIZE_CLASSES = (CACHE_LINE, PAGE_SIZE)

#: Cap on memoized ad-hoc size classes, so irregular transfer sizes
#: (e.g. per-partition spill runs) cannot grow a table without bound.
_MAX_MEMOIZED_CLASSES = 64


class TransferTable:
    """Precomputed transfer times at a fixed bandwidth, by size class.

    ``time_ns(size)`` returns exactly the float that
    :func:`~repro.units.transfer_time_ns` would return for the same
    arguments — the table changes *when* the division happens (once,
    at construction), never its result, so cached and uncached paths
    stay bit-identical.
    """

    __slots__ = ("bandwidth", "_times")

    def __init__(self, bandwidth_bytes_per_ns: float,
                 size_classes: tuple[int, ...] = DEFAULT_SIZE_CLASSES
                 ) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ConfigError(
                f"transfer table bandwidth must be positive:"
                f" {bandwidth_bytes_per_ns}"
            )
        self.bandwidth = bandwidth_bytes_per_ns
        self._times: dict[int, float] = {
            size: transfer_time_ns(size, bandwidth_bytes_per_ns)
            for size in size_classes
        }

    def time_ns(self, size_bytes: int) -> float:
        """Transfer time for *size_bytes*; precomputed when tabled."""
        cached = self._times.get(size_bytes)
        if cached is not None:
            return cached
        time = transfer_time_ns(size_bytes, self.bandwidth)
        if len(self._times) < _MAX_MEMOIZED_CLASSES:
            self._times[size_bytes] = time
        return time


class SharedChannel:
    """A FIFO bandwidth server shared by any number of streams."""

    __slots__ = ("name", "bandwidth", "_free_at", "_bytes", "_busy_ns")

    def __init__(self, name: str, bandwidth_bytes_per_ns: float) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ConfigError(f"{name}: bandwidth must be positive")
        self.name = name
        self.bandwidth = bandwidth_bytes_per_ns
        self._free_at = 0.0
        self._bytes = 0
        self._busy_ns = 0.0

    def request(self, size_bytes: int, now_ns: float) -> float:
        """Enqueue a transfer of *size_bytes* at *now_ns*.

        Returns the virtual time at which the transfer completes. The
        channel serves requests in arrival order at full bandwidth.
        """
        service = transfer_time_ns(size_bytes, self.bandwidth)
        start = max(now_ns, self._free_at)
        done = start + service
        self._free_at = done
        self._bytes += size_bytes
        self._busy_ns += service
        return done

    def queueing_delay(self, now_ns: float) -> float:
        """How long a request arriving at *now_ns* would wait (ns)."""
        return max(0.0, self._free_at - now_ns)

    @property
    def bytes_transferred(self) -> int:
        """Total payload bytes pushed through the channel."""
        return self._bytes

    @property
    def busy_time_ns(self) -> float:
        """Total time the channel spent actively transferring."""
        return self._busy_ns

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of *elapsed_ns* the channel was busy, in [0, 1]."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self._busy_ns / elapsed_ns)

    def reset(self) -> None:
        """Clear accounting and release the channel immediately."""
        self._free_at = 0.0
        self._bytes = 0
        self._busy_ns = 0.0

    def snapshot(self) -> dict:
        """Accounting as a dict (metrics snapshot protocol)."""
        return {
            "bytes": self._bytes,
            "busy_ns": self._busy_ns,
            "bandwidth_bytes_per_ns": self.bandwidth,
        }

    def __repr__(self) -> str:
        return f"SharedChannel({self.name!r}, bw={self.bandwidth:.2f}B/ns)"
