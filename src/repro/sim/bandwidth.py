"""Shared-bandwidth contention model.

A :class:`SharedChannel` is a work-conserving FIFO server draining
requests at a fixed rate. Concurrent requests therefore queue behind
one another, which is how contention on a memory channel, CXL port, or
NIC surfaces as extra latency. The model is analytic: callers pass the
current virtual time and receive the completion time back, so no event
scheduling is needed on the fast path.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import CACHE_LINE, PAGE_SIZE, transfer_time_ns

#: Size classes every workload touches; their transfer times are
#: precomputed at table construction so the hot path never divides.
DEFAULT_SIZE_CLASSES = (CACHE_LINE, PAGE_SIZE)

#: Cap on memoized ad-hoc size classes, so irregular transfer sizes
#: (e.g. per-partition spill runs) cannot grow a table without bound.
_MAX_MEMOIZED_CLASSES = 64


class TransferTable:
    """Precomputed transfer times at a fixed bandwidth, by size class.

    ``time_ns(size)`` returns exactly the float that
    :func:`~repro.units.transfer_time_ns` would return for the same
    arguments — the table changes *when* the division happens (once,
    at construction), never its result, so cached and uncached paths
    stay bit-identical.
    """

    __slots__ = ("bandwidth", "_times")

    def __init__(self, bandwidth_bytes_per_ns: float,
                 size_classes: tuple[int, ...] = DEFAULT_SIZE_CLASSES
                 ) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ConfigError(
                f"transfer table bandwidth must be positive:"
                f" {bandwidth_bytes_per_ns}"
            )
        self.bandwidth = bandwidth_bytes_per_ns
        self._times: dict[int, float] = {
            size: transfer_time_ns(size, bandwidth_bytes_per_ns)
            for size in size_classes
        }

    def time_ns(self, size_bytes: int) -> float:
        """Transfer time for *size_bytes*; precomputed when tabled."""
        cached = self._times.get(size_bytes)
        if cached is not None:
            return cached
        time = transfer_time_ns(size_bytes, self.bandwidth)
        if len(self._times) < _MAX_MEMOIZED_CLASSES:
            self._times[size_bytes] = time
        return time


class SharedChannel:
    """A FIFO bandwidth server shared by any number of streams."""

    __slots__ = ("name", "bandwidth", "_free_at", "_bytes", "_busy_ns")

    def __init__(self, name: str, bandwidth_bytes_per_ns: float) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ConfigError(f"{name}: bandwidth must be positive")
        self.name = name
        self.bandwidth = bandwidth_bytes_per_ns
        self._free_at = 0.0
        self._bytes = 0
        self._busy_ns = 0.0

    def request(self, size_bytes: int, now_ns: float) -> float:
        """Enqueue a transfer of *size_bytes* at *now_ns*.

        Returns the virtual time at which the transfer completes. The
        channel serves requests in arrival order at full bandwidth.
        """
        service = transfer_time_ns(size_bytes, self.bandwidth)
        start = max(now_ns, self._free_at)
        done = start + service
        self._free_at = done
        self._bytes += size_bytes
        self._busy_ns += service
        return done

    def queueing_delay(self, now_ns: float) -> float:
        """How long a request arriving at *now_ns* would wait (ns)."""
        return max(0.0, self._free_at - now_ns)

    @property
    def bytes_transferred(self) -> int:
        """Total payload bytes pushed through the channel."""
        return self._bytes

    @property
    def busy_time_ns(self) -> float:
        """Total time the channel spent actively transferring."""
        return self._busy_ns

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of *elapsed_ns* the channel was busy, in [0, 1]."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self._busy_ns / elapsed_ns)

    def reset(self) -> None:
        """Clear accounting and release the channel immediately."""
        self._free_at = 0.0
        self._bytes = 0
        self._busy_ns = 0.0

    def snapshot(self) -> dict:
        """Accounting as a dict (metrics snapshot protocol)."""
        return {
            "bytes": self._bytes,
            "busy_ns": self._busy_ns,
            "bandwidth_bytes_per_ns": self.bandwidth,
        }

    def __repr__(self) -> str:
        return f"SharedChannel({self.name!r}, bw={self.bandwidth:.2f}B/ns)"


class WaitQueue:
    """Arrival-order wait queue over one shared physical resource.

    Where :class:`SharedChannel` answers "when does *this* transfer
    finish" (folding the queueing delay into a returned completion
    time), a WaitQueue separates the two questions the session
    scheduler asks: :meth:`delay_ns` — how long would a request
    arriving now wait before the resource frees up — and
    :meth:`occupy_run` — reserve the resource for a run of transfers
    whose timing has already been charged analytically.

    Requests are served strictly in arrival order. The concurrent
    session scheduler delivers arrivals in a deterministic order
    (simultaneous wakeups are collected and ordered by the fairness
    policy, with session *names* as the tie-breaker), so
    equal-timestamp FIFO here is exact and independent of session
    list order — the property the permutation-invariance tests pin.

    Transfer service times come from :class:`TransferTable`\\ s at the
    resource's *effective* read/write bandwidths, so an uncontended
    requester is never delayed: the analytic access latency already
    covers at least the transfer service time, which means
    ``free_at`` can never pass a single stream's own clock. That is
    the mechanism behind the N=1 byte-identity guarantee.
    """

    __slots__ = ("name", "read_table", "write_table", "_free_at",
                 "_bytes", "_busy_ns", "_grants", "_waits", "_wait_ns")

    def __init__(self, name: str, read_bandwidth: float,
                 write_bandwidth: float | None = None) -> None:
        self.name = name
        self.read_table = TransferTable(read_bandwidth)
        self.write_table = TransferTable(
            read_bandwidth if write_bandwidth is None else write_bandwidth
        )
        self._free_at = 0.0
        self._bytes = 0
        self._busy_ns = 0.0
        self._grants = 0
        self._waits = 0
        self._wait_ns = 0.0

    @property
    def free_at_ns(self) -> float:
        """Virtual time at which the resource next goes idle."""
        return self._free_at

    def delay_ns(self, now_ns: float) -> float:
        """How long a request arriving at *now_ns* would wait (ns)."""
        delay = self._free_at - now_ns
        return delay if delay > 0.0 else 0.0

    def note_wait(self, wait_ns: float) -> None:
        """Record that a request waited *wait_ns* on this resource
        (attributed by the caller to the bottleneck queue only)."""
        self._waits += 1
        self._wait_ns += wait_ns

    def occupy_run(self, last_start_ns: float, nbytes: int,
                   count: int = 1, write: bool = False) -> None:
        """Reserve the resource for *count* back-to-back transfers of
        *nbytes*, the last one starting at *last_start_ns*.

        Only the tail matters for future arrivals — the resource is
        free once the last transfer's service completes — so a whole
        same-shape run is charged with one call. Byte and busy-time
        accounting still cover every transfer in the run.
        """
        table = self.write_table if write else self.read_table
        service = table.time_ns(nbytes)
        end = last_start_ns + service
        if end > self._free_at:
            self._free_at = end
        self._bytes += count * nbytes
        self._busy_ns += count * service
        self._grants += count

    def reserve_run(self, last_starts, nbytes: int, counts,
                    write: bool = False) -> None:
        """Reserve a whole multi-segment run of same-shape transfers.

        *last_starts* and *counts* are parallel sequences (ndarray or
        list), one entry per tier segment of the run: the virtual time
        at which the segment's final transfer starts, and how many
        transfers the segment carries. Byte-identical to calling
        :meth:`occupy_run` once per segment in order.

        The cummax argument: sequential occupies evolve ``free_at`` as
        ``f_k = max(f_{k-1}, L_k + s)`` with one shared service time
        ``s``, so the final value is ``max(f_0, cummax(L + s))`` — and
        because the caller charges segments in arrival order the
        ``L_k`` are non-decreasing, the cummax collapses to the tail:
        ``max(f_0, L_last + s)``, one comparison for the entire run.
        Busy time replays the per-segment addition chain (each step is
        ``count_k * s``, a single rounding) so the float accounting
        matches the sequential loop bit for bit; byte and grant
        counters are integers and sum exactly.
        """
        k = len(counts)
        if k == 0:
            return
        table = self.write_table if write else self.read_table
        service = table.time_ns(nbytes)
        # max() rather than the tail entry keeps the collapse exact
        # even for a caller that violates arrival order.
        tail = float(last_starts[k - 1] if k == 1 else max(last_starts))
        end = tail + service
        if end > self._free_at:
            self._free_at = end
        busy = self._busy_ns
        total = 0
        for c in counts:
            busy += c * service
            total += c
        self._busy_ns = busy
        self._bytes += total * nbytes
        self._grants += total

    def snapshot(self) -> dict:
        """Accounting as a dict (metrics snapshot protocol)."""
        return {
            "bytes": self._bytes,
            "busy_ns": self._busy_ns,
            "grants": self._grants,
            "waits": self._waits,
            "wait_ns": self._wait_ns,
        }

    def __repr__(self) -> str:
        return (
            f"WaitQueue({self.name!r}, free_at={self._free_at:.0f}ns,"
            f" grants={self._grants}, waits={self._waits})"
        )
