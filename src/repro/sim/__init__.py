"""Hardware substrate simulator.

This subpackage models the rack the paper assumes: memory devices
(:mod:`repro.sim.memory`), links and PCIe/CXL ports
(:mod:`repro.sim.interconnect`), rack topology with CXL switches
(:mod:`repro.sim.topology`), directory-based coherence
(:mod:`repro.sim.coherence`), NUMA systems (:mod:`repro.sim.numa`), the
RDMA baseline fabric (:mod:`repro.sim.rdma`), failure/RAS behaviour
(:mod:`repro.sim.ras`), a discrete-event core
(:mod:`repro.sim.clock`, :mod:`repro.sim.events`), and the
instrumentation spine (:mod:`repro.sim.context`,
:mod:`repro.sim.trace`) that unifies timing and accounting.
"""

from .address import AddressSpace, Region
from .bandwidth import SharedChannel
from .clock import SimClock
from .context import SimContext, ambient_instrumentation, set_ambient
from .events import Event, Simulator
from .interconnect import AccessPath, Link
from .interleave import InterleaveSet
from .memory import MemoryDevice
from .numa import NUMANode, NUMASystem
from .topology import CXLSwitch, Host, MemoryPoolDevice, RackTopology
from .trace import (
    NULL_SINK,
    ChromeTraceSink,
    JsonLinesTraceSink,
    MemoryTraceSink,
    NullTraceSink,
    SpanRecord,
    TraceSink,
    sink_for_path,
)

__all__ = [
    "AccessPath",
    "AddressSpace",
    "CXLSwitch",
    "ChromeTraceSink",
    "Event",
    "Host",
    "InterleaveSet",
    "JsonLinesTraceSink",
    "Link",
    "MemoryDevice",
    "MemoryPoolDevice",
    "MemoryTraceSink",
    "NULL_SINK",
    "NUMANode",
    "NUMASystem",
    "NullTraceSink",
    "RackTopology",
    "Region",
    "SharedChannel",
    "SimClock",
    "SimContext",
    "Simulator",
    "SpanRecord",
    "TraceSink",
    "ambient_instrumentation",
    "set_ambient",
    "sink_for_path",
]
