"""Hardware substrate simulator.

This subpackage models the rack the paper assumes: memory devices
(:mod:`repro.sim.memory`), links and PCIe/CXL ports
(:mod:`repro.sim.interconnect`), rack topology with CXL switches
(:mod:`repro.sim.topology`), directory-based coherence
(:mod:`repro.sim.coherence`), NUMA systems (:mod:`repro.sim.numa`), the
RDMA baseline fabric (:mod:`repro.sim.rdma`), failure/RAS behaviour
(:mod:`repro.sim.ras`), and a discrete-event core
(:mod:`repro.sim.clock`, :mod:`repro.sim.events`).
"""

from .address import AddressSpace, Region
from .bandwidth import SharedChannel
from .clock import SimClock
from .events import Event, Simulator
from .interconnect import AccessPath, Link
from .interleave import InterleaveSet
from .memory import MemoryDevice
from .numa import NUMANode, NUMASystem
from .topology import CXLSwitch, Host, MemoryPoolDevice, RackTopology

__all__ = [
    "AccessPath",
    "AddressSpace",
    "CXLSwitch",
    "Event",
    "Host",
    "InterleaveSet",
    "Link",
    "MemoryDevice",
    "MemoryPoolDevice",
    "NUMANode",
    "NUMASystem",
    "RackTopology",
    "Region",
    "SharedChannel",
    "SimClock",
    "Simulator",
]
