"""Physical address space and region carving.

CXL memory pooling (Sec 3.2) works by *carving* a large pool into
regions and handing each region to a host; GFAM (Sec 3.3) maps regions
into every host simultaneously. :class:`AddressSpace` models a flat
physical address space into which devices are mapped as
:class:`Region` objects, and resolves addresses back to the owning
device.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..errors import AddressError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .memory import MemoryDevice


@dataclass(frozen=True)
class Region:
    """A contiguous address range backed by one memory device."""

    base: int
    size: int
    device: "MemoryDevice"
    label: str = ""
    shared: bool = False  # True for GFAM/GIM regions mapped by many hosts

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise AddressError(
                f"invalid region base={self.base} size={self.size}"
            )

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """Whether *addr* falls inside this region."""
        return self.base <= addr < self.end

    def offset_of(self, addr: int) -> int:
        """Device-relative offset of *addr*."""
        if not self.contains(addr):
            raise AddressError(f"address {addr:#x} outside region {self}")
        return addr - self.base

    def __repr__(self) -> str:
        return (
            f"Region({self.label or self.device.name},"
            f" base={self.base:#x}, size={self.size})"
        )


@dataclass
class AddressSpace:
    """A flat physical address space composed of non-overlapping regions."""

    name: str = "phys"
    _regions: list[Region] = field(default_factory=list)
    _bases: list[int] = field(default_factory=list)

    def map_device(self, device: "MemoryDevice", label: str = "",
                   shared: bool = False) -> Region:
        """Append a device's full capacity at the top of the space."""
        base = self.top
        region = Region(
            base=base,
            size=device.capacity_bytes,
            device=device,
            label=label or device.name,
            shared=shared,
        )
        self._insert(region)
        return region

    def map_region(self, region: Region) -> Region:
        """Insert an externally built region (must not overlap)."""
        self._insert(region)
        return region

    def _insert(self, region: Region) -> None:
        idx = bisect.bisect_left(self._bases, region.base)
        before = self._regions[idx - 1] if idx > 0 else None
        after = self._regions[idx] if idx < len(self._regions) else None
        if before is not None and before.end > region.base:
            raise AddressError(f"{region} overlaps {before}")
        if after is not None and region.end > after.base:
            raise AddressError(f"{region} overlaps {after}")
        self._regions.insert(idx, region)
        self._bases.insert(idx, region.base)

    @property
    def top(self) -> int:
        """First address above every mapped region."""
        return self._regions[-1].end if self._regions else 0

    @property
    def mapped_bytes(self) -> int:
        """Total bytes covered by mapped regions."""
        return sum(region.size for region in self._regions)

    def resolve(self, addr: int) -> Region:
        """Find the region containing *addr*, or raise AddressError."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.contains(addr):
                return region
        raise AddressError(f"unmapped address {addr:#x} in space {self.name}")

    def regions(self) -> Iterator[Region]:
        """Iterate regions in address order."""
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
