"""Links and access paths.

A :class:`Link` is one hop between components (a PCIe/CXL port, a UPI
socket link, a switch traversal, an RDMA NIC pair). An
:class:`AccessPath` is an ordered chain of links ending at a memory
device; it answers "how long does it take to move N bytes from here to
that device", which is the primitive every higher layer is built on.

Protocol efficiency matters twice (Sec 2.5): a 400 Gb NIC exposes only
~78% of its PCIe slot as network payload, while a CXL adapter exposes
the full slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..config import LinkSpec
from ..errors import ConfigError
from ..units import CACHE_LINE, transfer_time_ns
from .bandwidth import SharedChannel, TransferTable
from .memory import MemoryDevice

if TYPE_CHECKING:  # pragma: no cover
    from .context import SimContext


class Link:
    """A single interconnect hop with shared-bandwidth accounting."""

    def __init__(self, spec: LinkSpec, name: str | None = None,
                 ctx: "SimContext | None" = None) -> None:
        self.spec = spec
        self.name = name or spec.name
        self.channel = SharedChannel(self.name, spec.raw_bandwidth)
        if ctx is not None:
            ctx.register(f"link.{self.name}", self)

    def snapshot(self) -> dict:
        """Link state for a metrics snapshot."""
        return {
            "latency_ns": self.spec.latency_ns,
            "protocol_efficiency": self.spec.protocol_efficiency,
            "bytes": self.channel.bytes_transferred,
            "busy_ns": self.channel.busy_time_ns,
        }

    @property
    def latency_ns(self) -> float:
        """One-way traversal latency of the hop."""
        return self.spec.latency_ns

    @property
    def effective_bandwidth(self) -> float:
        """Payload bandwidth after protocol overhead (bytes/ns)."""
        return self.spec.effective_bandwidth

    def transfer_completion(self, size_bytes: int, now_ns: float) -> float:
        """Contended transfer through this hop; returns completion time."""
        raw = int(size_bytes / self.spec.protocol_efficiency)
        done = self.channel.request(raw, now_ns)
        return done + self.spec.latency_ns

    def __repr__(self) -> str:
        return (
            f"Link({self.name!r}, lat={self.latency_ns}ns,"
            f" bw={self.effective_bandwidth:.1f}GB/s)"
        )


#: How deep hardware prefetchers run ahead on sequential streams;
#: amortizes access latency on scans (they become bandwidth-bound).
PREFETCH_DEPTH = 8


class PathTiming:
    """Precomputed unloaded timing for one :class:`AccessPath`.

    Built once per path, read millions of times: the four latency
    constants (point/sequential x read/write), the narrowest
    bandwidths, and per-size-class transfer tables. Every value is the
    float the per-call arithmetic would have produced — same operands,
    same operations, evaluated once instead of per access — so cached
    and uncached timing are bit-identical by construction.
    """

    __slots__ = (
        "read_latency_ns", "write_latency_ns",
        "seq_read_latency_ns", "seq_write_latency_ns",
        "read_bandwidth", "write_bandwidth",
        "read_transfer", "write_transfer",
    )

    def __init__(self, path: "AccessPath") -> None:
        self.read_latency_ns = path.read_latency_ns()
        self.write_latency_ns = path.write_latency_ns()
        self.seq_read_latency_ns = self.read_latency_ns / PREFETCH_DEPTH
        self.seq_write_latency_ns = self.write_latency_ns / PREFETCH_DEPTH
        self.read_bandwidth = path.read_bandwidth
        self.write_bandwidth = path.write_bandwidth
        self.read_transfer = TransferTable(self.read_bandwidth)
        self.write_transfer = TransferTable(self.write_bandwidth)


@dataclass
class AccessPath:
    """A chain of links terminating at a memory device.

    The unloaded time to read *size* bytes over the path is::

        sum(hop latencies) + device access latency + size / path_bw

    where ``path_bw`` is the narrowest effective bandwidth along the
    path (links and device). Sequential variants divide the latency
    term by :data:`PREFETCH_DEPTH`: streaming accesses are
    bandwidth-bound because prefetchers hide most of the latency —
    which is why scan-heavy OLAP tolerates CXL so much better than
    pointer-chasing OLTP (Sec 3.1).
    """

    device: MemoryDevice
    links: tuple[Link, ...] = field(default_factory=tuple)
    _timing: "PathTiming | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.device is None:
            raise ConfigError("AccessPath requires a terminal device")
        self.links = tuple(self.links)

    def timing(self) -> PathTiming:
        """The path's precomputed timing table, built on first use.

        Specs and link chains are immutable after construction, so the
        table never needs invalidation; :meth:`extended` returns a new
        path with its own table.
        """
        cached = self._timing
        if cached is None:
            cached = self._timing = PathTiming(self)
        return cached

    @property
    def hop_count(self) -> int:
        """Number of interconnect hops before the device."""
        return len(self.links)

    @property
    def link_latency_ns(self) -> float:
        """Sum of one-way hop latencies."""
        return sum(link.latency_ns for link in self.links)

    @property
    def read_bandwidth(self) -> float:
        """Narrowest effective read bandwidth along the path (bytes/ns)."""
        bandwidths = [link.effective_bandwidth for link in self.links]
        bandwidths.append(self.device.spec.effective_load_bandwidth)
        return min(bandwidths)

    @property
    def write_bandwidth(self) -> float:
        """Narrowest effective write bandwidth along the path (bytes/ns)."""
        bandwidths = [link.effective_bandwidth for link in self.links]
        bandwidths.append(self.device.spec.effective_store_bandwidth)
        return min(bandwidths)

    def read_latency_ns(self) -> float:
        """Unloaded latency of a single cache-line load."""
        return self.link_latency_ns + self.device.spec.load_latency_ns

    def write_latency_ns(self) -> float:
        """Unloaded latency of a single cache-line store."""
        return self.link_latency_ns + self.device.spec.store_latency_ns

    def read_time(self, size_bytes: int = CACHE_LINE) -> float:
        """Unloaded time to read *size_bytes* end to end (ns)."""
        stats = self.device.stats
        stats.loads += 1
        stats.load_bytes += size_bytes
        timing = self._timing or self.timing()
        return timing.read_latency_ns + timing.read_transfer.time_ns(
            size_bytes
        )

    def write_time(self, size_bytes: int = CACHE_LINE) -> float:
        """Unloaded time to write *size_bytes* end to end (ns)."""
        stats = self.device.stats
        stats.stores += 1
        stats.store_bytes += size_bytes
        timing = self._timing or self.timing()
        return timing.write_latency_ns + timing.write_transfer.time_ns(
            size_bytes
        )

    def read_time_sequential(self, size_bytes: int) -> float:
        """Streaming read: latency amortized by the prefetch depth."""
        stats = self.device.stats
        stats.loads += 1
        stats.load_bytes += size_bytes
        timing = self._timing or self.timing()
        return timing.seq_read_latency_ns + timing.read_transfer.time_ns(
            size_bytes
        )

    def write_time_sequential(self, size_bytes: int) -> float:
        """Streaming write: latency amortized by write combining."""
        stats = self.device.stats
        stats.stores += 1
        stats.store_bytes += size_bytes
        timing = self._timing or self.timing()
        return timing.seq_write_latency_ns + timing.write_transfer.time_ns(
            size_bytes
        )

    # -- uncached reference timing ------------------------------------------
    #
    # The pre-table arithmetic, re-derived from specs on every call.
    # The perfbench compat lane and the equivalence tests use these to
    # prove the tables change wall-clock cost only, never a result.

    def read_time_uncached(self, size_bytes: int = CACHE_LINE) -> float:
        """Reference (per-call arithmetic) variant of :meth:`read_time`."""
        self.device.stats.loads += 1
        self.device.stats.load_bytes += size_bytes
        return self.read_latency_ns() + transfer_time_ns(
            size_bytes, self.read_bandwidth
        )

    def write_time_uncached(self, size_bytes: int = CACHE_LINE) -> float:
        """Reference variant of :meth:`write_time`."""
        self.device.stats.stores += 1
        self.device.stats.store_bytes += size_bytes
        return self.write_latency_ns() + transfer_time_ns(
            size_bytes, self.write_bandwidth
        )

    def read_time_sequential_uncached(self, size_bytes: int) -> float:
        """Reference variant of :meth:`read_time_sequential`."""
        self.device.stats.loads += 1
        self.device.stats.load_bytes += size_bytes
        return self.read_latency_ns() / PREFETCH_DEPTH + transfer_time_ns(
            size_bytes, self.read_bandwidth
        )

    def write_time_sequential_uncached(self, size_bytes: int) -> float:
        """Reference variant of :meth:`write_time_sequential`."""
        self.device.stats.stores += 1
        self.device.stats.store_bytes += size_bytes
        return self.write_latency_ns() / PREFETCH_DEPTH + transfer_time_ns(
            size_bytes, self.write_bandwidth
        )

    def read_completion(self, size_bytes: int, now_ns: float) -> float:
        """Contended read: charges every hop channel and the device."""
        t = now_ns
        for link in self.links:
            t = link.transfer_completion(size_bytes, t)
        return self.device.load_completion(size_bytes, t)

    def write_completion(self, size_bytes: int, now_ns: float) -> float:
        """Contended write: charges every hop channel and the device."""
        t = now_ns
        for link in self.links:
            t = link.transfer_completion(size_bytes, t)
        return self.device.store_completion(size_bytes, t)

    def extended(self, link: Link) -> "AccessPath":
        """A new path with *link* prepended (one hop farther away)."""
        return AccessPath(device=self.device, links=(link, *self.links))

    def __repr__(self) -> str:
        hops = " -> ".join(link.name for link in self.links)
        arrow = f"{hops} -> " if hops else ""
        return f"AccessPath({arrow}{self.device.name})"
