"""``python -m repro`` — run the paper experiments."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
