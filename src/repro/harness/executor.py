"""Parallel sweep execution with crash isolation and a result cache.

:func:`run_sweep` fans the cells of a :class:`~repro.harness.scenario.Sweep`
across worker processes — one process per cell, at most ``jobs`` in
flight. Per-process execution is what makes the guarantees cheap:

* **one clock per cell** — each worker builds a fresh
  :class:`~repro.sim.context.SimContext`, so the PR-1 invariant holds
  by construction and cells cannot observe each other's virtual time;
* **crash isolation** — a worker that dies (segfault, ``os._exit``,
  OOM-kill) marks *its* cell failed; the sweep and every other cell
  proceed;
* **per-cell timeout** — a cell exceeding ``timeout_s`` of wall time
  is terminated and marked ``timeout``.

Determinism: cell seeds are derived before scheduling
(:func:`~repro.harness.scenario.derive_seed`), workers share no state,
and results are assembled in cell order — so ``--jobs 4`` produces
byte-identical per-cell results to ``--jobs 1``.

When a :class:`~repro.harness.store.ResultStore` is supplied, cells
whose scenario hash is already stored are served from cache (status
``cached``) without spawning a worker, and fresh results are written
back for the next run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .scenario import Cell, Scenario, Sweep, canonical_json
from .store import ResultStore

#: Cell status values, in the order they are tried.
STATUS_CACHED = "cached"
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"

_POLL_INTERVAL_S = 0.005


def _cell_worker(conn, scenario_dict: dict) -> None:
    """Worker entry point: run one cell, send (status, payload)."""
    from .experiments import run_scenario  # late: keeps spawn cheap
    try:
        result = run_scenario(Scenario.from_dict(scenario_dict))
        message = (STATUS_OK, result)
    except BaseException as exc:  # a cell may raise anything
        message = (STATUS_FAILED, f"{type(exc).__name__}: {exc}")
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):  # parent gave up on us
        pass
    finally:
        conn.close()


@dataclass
class CellResult:
    """Outcome of one sweep cell."""

    index: int
    cell_id: str
    assignments: Mapping[str, Any]
    scenario: dict
    status: str
    result: dict | None = None
    error: str | None = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "cell_id": self.cell_id,
            "assignments": dict(self.assignments),
            "scenario": self.scenario,
            "status": self.status,
            "result": self.result,
            "error": self.error,
            "elapsed_s": round(self.elapsed_s, 6),
        }


@dataclass
class SweepReport:
    """Ordered cell results plus sweep-level accounting."""

    name: str
    jobs: int
    cells: list[CellResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def simulated(self) -> int:
        """Cells that actually ran (everything but cache hits)."""
        return sum(1 for c in self.cells if c.status != STATUS_CACHED)

    @property
    def cached(self) -> int:
        return sum(1 for c in self.cells if c.status == STATUS_CACHED)

    def results_canonical(self) -> str:
        """Canonical JSON of per-cell results only (no wall times).

        This is the byte string two runs of the same sweep must agree
        on regardless of ``jobs`` or cache state.
        """
        return canonical_json([
            {"cell_id": c.cell_id, "result": c.result}
            for c in self.cells
        ])

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "jobs": self.jobs,
            "counts": self.counts,
            "elapsed_s": round(self.elapsed_s, 6),
            "cells": [cell.to_dict() for cell in self.cells],
        }


@dataclass
class _Running:
    cell: Cell
    process: multiprocessing.process.BaseProcess
    conn: Any
    started: float
    deadline: float


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_sweep(
    sweep: Sweep,
    jobs: int | None = None,
    timeout_s: float = 600.0,
    store: ResultStore | None = None,
    use_cache: bool = True,
    progress: Callable[[str], None] | None = None,
) -> SweepReport:
    """Execute every cell of *sweep*; never raises for cell failures.

    ``jobs`` defaults to :func:`os.cpu_count`. Results come back in
    cell order whatever the completion order was.
    """
    jobs = max(1, int(jobs or os.cpu_count() or 1))
    started = time.monotonic()
    cells = sweep.cells()
    report = SweepReport(name=sweep.name, jobs=jobs)
    say = progress or (lambda message: None)

    slots: list[CellResult | None] = [None] * len(cells)
    pending: deque[Cell] = deque()
    for cell in cells:
        cached = store.get(cell.scenario) if (store and use_cache) else None
        if cached is not None:
            slots[cell.index] = CellResult(
                index=cell.index, cell_id=cell.cell_id,
                assignments=cell.assignments,
                scenario=cell.scenario.to_dict(),
                status=STATUS_CACHED, result=cached,
            )
            say(f"[{sweep.name}] {cell.cell_id or '(single cell)'}:"
                " cache hit")
        else:
            pending.append(cell)

    ctx = _mp_context()
    running: dict[int, _Running] = {}

    def finish(run: _Running, status: str, result: dict | None,
               error: str | None) -> None:
        elapsed = time.monotonic() - run.started
        slots[run.cell.index] = CellResult(
            index=run.cell.index, cell_id=run.cell.cell_id,
            assignments=run.cell.assignments,
            scenario=run.cell.scenario.to_dict(),
            status=status, result=result, error=error,
            elapsed_s=elapsed,
        )
        if status == STATUS_OK and store is not None:
            store.put(run.cell.scenario, result or {})
        label = run.cell.cell_id or "(single cell)"
        note = status if status == STATUS_OK else f"{status}: {error}"
        say(f"[{sweep.name}] {label}: {note} ({elapsed:.2f}s)")

    try:
        while pending or running:
            while pending and len(running) < jobs:
                cell = pending.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_cell_worker,
                    args=(child_conn, cell.scenario.to_dict()),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                now = time.monotonic()
                running[cell.index] = _Running(
                    cell=cell, process=process, conn=parent_conn,
                    started=now, deadline=now + timeout_s,
                )

            made_progress = False
            for index in list(running):
                run = running[index]
                if run.conn.poll():
                    try:
                        status, payload = run.conn.recv()
                    except (EOFError, OSError):
                        status, payload = (
                            STATUS_FAILED,
                            "worker closed the pipe without a result",
                        )
                    run.process.join()
                    if status == STATUS_OK:
                        finish(run, STATUS_OK, payload, None)
                    else:
                        finish(run, STATUS_FAILED, None, str(payload))
                elif not run.process.is_alive():
                    # Died without sending; give any buffered message
                    # that raced the death check one last chance.
                    run.process.join()
                    if run.conn.poll():
                        continue  # picked up next iteration
                    finish(
                        run, STATUS_FAILED, None,
                        "worker process died"
                        f" (exit code {run.process.exitcode})",
                    )
                elif time.monotonic() >= run.deadline:
                    run.process.terminate()
                    run.process.join()
                    finish(
                        run, STATUS_TIMEOUT, None,
                        f"cell exceeded {timeout_s:g}s wall-time limit",
                    )
                else:
                    continue
                if slots[index] is not None:
                    run.conn.close()
                    del running[index]
                    made_progress = True
            if not made_progress and running:
                time.sleep(_POLL_INTERVAL_S)
    finally:
        for run in running.values():  # interrupted: leave no orphans
            run.process.terminate()
            run.process.join()
            run.conn.close()

    report.cells = [slot for slot in slots if slot is not None]
    report.elapsed_s = time.monotonic() - started
    return report
