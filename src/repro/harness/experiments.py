"""Experiment kernels runnable from a :class:`Scenario`.

Each kernel is a function ``(scenario, ctx) -> dict`` registered under
a dotted name; :func:`run_scenario` looks the kernel up, builds a fresh
:class:`~repro.sim.context.SimContext` for the cell (the PR-1 one-clock
invariant: one context, one clock, per simulated configuration) and
validates that the result is a flat JSON-serializable mapping.

These are the sweep-native ports of the ``benchmarks/bench_*.py``
experiments: where a benchmark script loops over a hand-rolled grid
and *compares* configurations inline, a kernel simulates exactly one
grid cell and returns raw metrics — comparisons ("who wins", ratio
bounds, crossover positions) move into baseline gate files
(:mod:`repro.harness.gate`).

``debug.*`` kernels exercise the executor itself (crash isolation,
timeouts, determinism) and are intentionally cheap.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Mapping

from .. import config
from ..errors import ConfigError, SimulationError
from ..sim.context import SimContext
from ..units import CACHE_LINE, MIB
from .scenario import Scenario, canonical_json

#: Registered kernels: dotted name -> (scenario, ctx) -> result dict.
RUNNERS: dict[str, Callable[[Scenario, SimContext], dict]] = {}


def runner(name: str) -> Callable:
    """Register an experiment kernel under *name*."""

    def register(fn: Callable[[Scenario, SimContext], dict]) -> Callable:
        if name in RUNNERS:
            raise ConfigError(f"duplicate experiment kernel {name!r}")
        RUNNERS[name] = fn
        return fn

    return register


def run_scenario(scenario: Scenario) -> dict:
    """Execute one scenario cell in a fresh SimContext."""
    try:
        kernel = RUNNERS[scenario.experiment]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {scenario.experiment!r}; registered:"
            f" {sorted(RUNNERS)}"
        ) from None
    result = kernel(scenario, SimContext())
    if not isinstance(result, Mapping):
        raise SimulationError(
            f"{scenario.experiment} returned {type(result).__name__},"
            " expected a mapping of metrics"
        )
    result = dict(result)
    try:
        canonical_json(result)
    except (TypeError, ValueError) as exc:
        raise SimulationError(
            f"{scenario.experiment} result is not JSON-serializable:"
            f" {exc}"
        ) from exc
    return result


def _param(group: Mapping[str, Any], key: str, default: Any) -> Any:
    value = group.get(key, default)
    if value is None:
        raise ConfigError(f"parameter {key!r} is required")
    return value


# ---------------------------------------------------------------------------
# E1 — CXL vs NUMA latency and bandwidth (Sec 2.4).
# ---------------------------------------------------------------------------

@runner("e1.memory_path")
def e1_memory_path(scenario: Scenario, ctx: SimContext) -> dict:
    """Latency/bandwidth of one memory path on a 2-socket + expander box.

    ``topology.target`` picks the path: ``local`` (same-socket DRAM),
    ``numa`` (one UPI hop), or ``cxl`` (the expander, optionally
    ``topology.through_switch``).
    """
    from ..sim.memory import MemoryDevice
    from ..sim.numa import NUMASystem

    topo, wl = scenario.topology, scenario.workload
    system = NUMASystem()
    s0 = system.add_socket(
        MemoryDevice(config.local_ddr5(), name="s0", ctx=ctx))
    s1 = system.add_socket(
        MemoryDevice(config.local_ddr5(), name="s1", ctx=ctx))
    cxl = system.add_cxl_expander(
        MemoryDevice(config.cxl_expander_ddr5(), ctx=ctx),
        attached_to=s0,
        through_switch=bool(topo.get("through_switch", False)),
    )
    paths = {
        "local": system.path(s0, s0),
        "numa": system.path(s0, s1),
        "cxl": system.path(s0, cxl),
    }
    target = _param(topo, "target", "cxl")
    if target not in paths:
        raise ConfigError(
            f"topology.target must be one of {sorted(paths)},"
            f" got {target!r}"
        )
    path = paths[target]

    accesses = int(_param(wl, "accesses", 10_000))
    total = 0.0
    for _ in range(accesses):
        total += path.read_time(CACHE_LINE)
    stream_bytes = int(_param(wl, "stream_bytes", 64 * MIB))
    return {
        "load_ns": total / accesses,
        "store_ns": path.write_latency_ns(),
        "stream_gbps": stream_bytes / path.read_time_sequential(
            stream_bytes),
    }


# ---------------------------------------------------------------------------
# E2 — OS-driven CXL tiering, TPP-style (Sec 2.4).
# ---------------------------------------------------------------------------

@runner("e2.tiering")
def e2_tiering(scenario: Scenario, ctx: SimContext) -> dict:
    """One tiering configuration under a seeded YCSB trace.

    ``policy.kind`` selects ``all_dram`` / ``os_paging`` / ``static``;
    the warm-up trace uses ``seed`` and the measured trace ``seed + 1``,
    so cells sharing a base seed (``per_cell_seeds = false``) replay
    the identical workload and their runtimes are directly comparable.
    """
    from ..core import OSPagingPolicy, ScaleUpEngine, StaticPolicy
    from ..workloads import YCSBConfig, ycsb_trace

    topo, wl, pol = scenario.topology, scenario.workload, scenario.policy
    pages = int(_param(wl, "num_pages", 4_000))
    dram_share = float(_param(topo, "dram_share", 0.50))
    dram_pages = int(pages * dram_share)
    kind = _param(pol, "kind", "os_paging")

    if kind == "all_dram":
        engine = ScaleUpEngine.build(
            dram_pages=pages + 8, with_storage=False, ctx=ctx)
    elif kind == "os_paging":
        engine = ScaleUpEngine.build(
            dram_pages=dram_pages, cxl_pages=pages + 8,
            placement=OSPagingPolicy(
                sample_rate=float(pol.get("sample_rate", 0.05)),
                check_interval=int(pol.get("check_interval", 1_000)),
            ),
            with_storage=False, ctx=ctx)
    elif kind == "static":
        engine = ScaleUpEngine.build(
            dram_pages=dram_pages, cxl_pages=pages + 8,
            placement=StaticPolicy(
                lambda p: 0 if p < dram_pages else 1),
            with_storage=False, ctx=ctx)
    else:
        raise ConfigError(
            "policy.kind must be all_dram, os_paging or static;"
            f" got {kind!r}"
        )

    def trace(seed: int):
        return ycsb_trace(YCSBConfig(
            mix=wl.get("mix", "B"),
            num_pages=pages,
            num_ops=int(wl.get("num_ops", 25_000)),
            theta=float(wl.get("theta", 0.99)),
            think_ns=float(wl.get("think_ns", 300.0)),
            seed=seed,
        ))

    engine.warm_with(trace(scenario.seed))
    report = engine.run(trace(scenario.seed + 1))
    result = {
        "total_ns": report.total_ns,
        "ops": report.ops,
        "hit_rate": report.hit_rate,
        "migrations": report.migrations,
    }
    if report.tier_hit_rates:
        result["fast_tier_hit_rate"] = report.tier_hit_rates[0]
    return result


# ---------------------------------------------------------------------------
# E4 — CXL fabric vs RDMA networking (Sec 2.5).
# ---------------------------------------------------------------------------

@runner("e4.cxl_vs_rdma")
def e4_cxl_vs_rdma(scenario: Scenario, ctx: SimContext) -> dict:
    """One transfer size over an RDMA fabric vs a switched CXL path."""
    from ..sim.interconnect import AccessPath, Link
    from ..sim.memory import MemoryDevice
    from ..sim.rdma import RDMAFabric

    topo, wl = scenario.topology, scenario.workload
    size = int(_param(wl, "transfer_bytes", CACHE_LINE))
    fabric = RDMAFabric()
    fabric.add_host("a")
    fabric.add_host("b")
    links = [Link(config.cxl_port(), ctx=ctx)]
    links += [Link(config.cxl_switch_hop(), ctx=ctx)
              for _ in range(int(topo.get("switch_hops", 1)))]
    cxl = AccessPath(
        device=MemoryDevice(config.cxl_expander_ddr5(), ctx=ctx),
        links=tuple(links),
    )
    rdma_ns = fabric.one_sided_read_time("a", "b", size)
    cxl_ns = cxl.read_time(size)
    nic = fabric.nic("a")
    return {
        "rdma_ns": rdma_ns,
        "cxl_ns": cxl_ns,
        "advantage": rdma_ns / cxl_ns,
        "nic_wasted_pcie_fraction": nic.wasted_pcie_fraction,
    }


# ---------------------------------------------------------------------------
# E7 — rack-scale sharing vs scale-out, Fig 2(c) (Sec 3.3).
# ---------------------------------------------------------------------------

@runner("e7.sharing_vs_scaleout")
def e7_sharing_vs_scaleout(scenario: Scenario, ctx: SimContext) -> dict:
    """Shared-memory vs sharded-2PC throughput at one distributed mix.

    Both engines replay the same seeded TPC-C-lite transaction stream;
    the crossover along ``workload.remote_fraction`` is asserted by the
    gate, not computed here.
    """
    from ..core.scaleout import ScaleOutConfig, ScaleOutEngine
    from ..core.shared import SharedEngineConfig, SharedRackEngine
    from ..workloads.tpcc import TPCCLite

    topo, wl = scenario.topology, scenario.workload
    nodes = int(_param(topo, "nodes", 4))
    txns = list(TPCCLite(
        num_warehouses=int(_param(wl, "warehouses", 16)),
        remote_probability=float(_param(wl, "remote_fraction", 0.1)),
        seed=scenario.seed,
    ).transactions(int(_param(wl, "txns", 1_500))))
    up = SharedRackEngine(
        SharedEngineConfig(num_hosts=nodes)).run(txns)
    out = ScaleOutEngine(
        ScaleOutConfig(num_nodes=nodes)).run(txns)
    return {
        "scale_up_tps": up.throughput_tps,
        "scale_out_tps": out.throughput_tps,
        "ratio": up.throughput_tps / out.throughput_tps,
    }


# ---------------------------------------------------------------------------
# A7 — OLTP/OLAP bandwidth interference on expanders (Sec 3.1).
# ---------------------------------------------------------------------------

@runner("a7.interference")
def a7_interference(scenario: Scenario, ctx: SimContext) -> dict:
    """OLTP point-lookup tail under concurrent scan sessions.

    The sweep-native port of ``bench_a7_bandwidth_interference``: each
    cell runs ``workload.point_sessions`` point-lookup clients and
    ``workload.scan_sessions`` 64 KiB-readahead scan clients as genuine
    concurrency through the session scheduler
    (:class:`~repro.core.sessions.ConcurrentEngine`), on either one
    shared expander or two (``topology.expanders``: OLTP pinned to its
    own device). The gate asserts the interference shape — scans
    inflate the point tail on a shared expander, a second expander
    restores it — across cells.
    """
    import random

    from ..core import ScaleUpEngine, StaticPolicy
    from ..core.buffer import Tier, TieredBufferPool
    from ..core.sessions import ClientSession
    from ..sim.interconnect import AccessPath, Link
    from ..sim.memory import MemoryDevice
    from ..workloads import Access

    topo, wl = scenario.topology, scenario.workload
    oltp_pages = int(_param(wl, "oltp_pages", 1_000))
    olap_pages = int(_param(wl, "olap_pages", 4_000))
    expanders = int(_param(topo, "expanders", 1))

    if expanders == 1:
        engine = ScaleUpEngine.build(
            dram_pages=1, cxl_pages=oltp_pages + olap_pages + 16,
            placement=StaticPolicy(lambda _p: 1),
            with_storage=False, ctx=ctx)
    elif expanders == 2:
        tiers = [
            Tier("dram", AccessPath(
                device=MemoryDevice(config.local_ddr5(), ctx=ctx)), 1),
            Tier("cxl-oltp", AccessPath(
                device=MemoryDevice(config.cxl_expander_ddr5(),
                                    name="oltp-exp", ctx=ctx),
                links=(Link(config.cxl_port(), ctx=ctx),)),
                oltp_pages + 8),
            Tier("cxl-olap", AccessPath(
                device=MemoryDevice(config.cxl_expander_ddr5(),
                                    name="olap-exp", ctx=ctx),
                links=(Link(config.cxl_port(), ctx=ctx),)),
                olap_pages + 8),
        ]
        pool = TieredBufferPool(
            tiers=tiers,
            placement=StaticPolicy(
                lambda p: 1 if p < oltp_pages else 2),
            ctx=ctx)
        engine = ScaleUpEngine(pool)
    else:
        raise ConfigError(
            f"topology.expanders must be 1 or 2, got {expanders}")
    for page in range(oltp_pages + olap_pages):
        engine.pool.access(page)

    def point_trace(seed: int):
        rng = random.Random(seed)
        return [Access(page_id=rng.randrange(oltp_pages),
                       think_ns=float(wl.get("think_ns", 150.0)))
                for _ in range(int(wl.get("point_ops", 2_000)))]

    def readahead_scan():
        chunk = int(wl.get("chunk_pages", 16))
        out = []
        for _ in range(int(wl.get("scan_repeats", 4))):
            for start in range(0, olap_pages, chunk):
                out.append(Access(
                    page_id=oltp_pages + start, is_scan=True,
                    nbytes=chunk * 4096, think_ns=0.0))
        return out

    point_names = [f"pt-{i}"
                   for i in range(int(_param(wl, "point_sessions", 2)))]
    sessions = [ClientSession(name, point_trace(scenario.seed + i))
                for i, name in enumerate(point_names)]
    sessions += [ClientSession(f"scan-{i}", readahead_scan())
                 for i in range(int(_param(wl, "scan_sessions", 0)))]
    report = engine.run_sessions(
        sessions, label=f"a7-x{expanders}",
        morsel_ops=int(scenario.policy.get("morsel_ops", 8)))
    return {
        "oltp_p95_ns": report.p95_for(point_names),
        "oltp_mean_ns": report.session(point_names[0]).mean_latency_ns,
        "wait_ns": report.wait_ns,
        "makespan_ns": report.makespan_ns,
        "ops": report.ops,
    }


# ---------------------------------------------------------------------------
# A8 — Pond's population at production scale (Sec 2.5, ref [31]).
# ---------------------------------------------------------------------------

@runner("a8.pondscale")
def a8_pondscale(scenario: Scenario, ctx: SimContext) -> dict:
    """E3 at serving scale: 10^4–10^6 churning tenants per cell.

    Generates a columnar tenant population
    (:class:`~repro.serving.TenantTable`), plays Poisson arrival /
    exponential-lifetime churn against an elastically scaled CXL page
    pool through the discrete-event simulator, then folds every
    tenant's slowdown versus an all-DRAM run into exact mergeable
    histograms for two alternatives: pooled CXL and a scale-out
    partition where ``workload.remote_fraction`` of accesses cross an
    RDMA NIC. The gate asserts the Pond CDF shape (compute-bound
    tenants see <1% penalty, the memory-bound tail exists), the
    scale-out/CXL crossover along ``remote_fraction``, and that
    ``policy.shards`` never changes a byte.
    """
    from ..core.autoscale import ExpanderScaler
    from ..core.elastic import PagePool
    from ..serving import (
        ChurnConfig,
        ChurnSimulator,
        ServingConfig,
        TenantTable,
        assign_churn,
        run_serving,
    )
    from ..units import SECOND, us

    topo, wl, pol = scenario.topology, scenario.workload, scenario.policy
    tenants = int(_param(wl, "tenants", 10_000))
    table = TenantTable.generate(
        tenants, num_ops=int(_param(wl, "num_ops", 2_000)),
        seed=scenario.seed)

    assign_churn(table, ChurnConfig(
        arrival_rate_per_s=float(_param(wl, "arrival_rate_per_s", 2_000.0)),
        mean_lifetime_s=float(_param(wl, "mean_lifetime_s", 0.5)),
        seed=scenario.seed + 1,
    ))
    scaler = ExpanderScaler(
        pages_per_expander=int(_param(topo, "pages_per_expander",
                                      4_194_304)),
        min_expanders=int(_param(topo, "min_expanders", 1)),
        max_expanders=int(_param(topo, "max_expanders", 4)),
        cooldown_ns=float(_param(topo, "cooldown_ms", 50.0)) * 1e6,
    )
    pool = PagePool(scaler.capacity_pages, ctx=ctx)
    churn = ChurnSimulator(
        table, pool, scaler=scaler,
        reclaim_ns=us(float(_param(pol, "reclaim_us", 200.0))),
    ).run()

    serving = run_serving(table, ServingConfig(
        shards=int(_param(pol, "shards", 1)),
        chunk_rows=int(_param(pol, "chunk_rows", 65_536)),
        rep_ops=int(_param(pol, "rep_ops", 2_000)),
        remote_fraction=float(_param(wl, "remote_fraction", 0.25)),
        through_switch=bool(topo.get("through_switch", False)),
        seed=scenario.seed,
    ))

    result = serving.metrics()
    result["churn"] = {
        "admitted": churn.admitted,
        "departed": churn.departed,
        "waited": churn.waited,
        "rejected": churn.rejected,
        "peak_queue": churn.peak_queue,
        "peak_leased_pages": churn.peak_leased_pages,
        "final_capacity_pages": churn.final_capacity_pages,
        "grows": churn.grows,
        "shrinks": churn.shrinks,
        "wait_p50_ns": churn.wait_quantile(0.50),
        "wait_p95_ns": churn.wait_quantile(0.95),
        "horizon_s": churn.horizon_ns / SECOND,
    }
    return result


# ---------------------------------------------------------------------------
# debug.* — executor-facing kernels used by the harness's own tests.
# ---------------------------------------------------------------------------

@runner("debug.echo")
def debug_echo(scenario: Scenario, ctx: SimContext) -> dict:
    """Echo the cell's parameters and seed (determinism probe)."""
    return {
        "seed": scenario.seed,
        "topology": dict(scenario.topology),
        "workload": dict(scenario.workload),
        "policy": dict(scenario.policy),
    }


@runner("debug.fail")
def debug_fail(scenario: Scenario, ctx: SimContext) -> dict:
    """Raise: exercises the failed-cell path."""
    raise SimulationError("deliberate harness test failure")


@runner("debug.crash")
def debug_crash(scenario: Scenario, ctx: SimContext) -> dict:
    """Kill the worker process without a result (crash isolation)."""
    os._exit(int(scenario.workload.get("exit_code", 13)))


@runner("debug.sleep")
def debug_sleep(scenario: Scenario, ctx: SimContext) -> dict:
    """Sleep in wall time (per-cell timeout path)."""
    seconds = float(scenario.workload.get("seconds", 60.0))
    time.sleep(seconds)
    return {"slept_s": seconds}
