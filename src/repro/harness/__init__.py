"""repro.harness — declarative scenarios, parallel sweeps, gating.

The harness turns the hand-rolled config grids of ``benchmarks/`` into
data: a :class:`~repro.harness.scenario.Scenario` names a registered
experiment kernel plus its topology / workload / policy parameters and
a seed; a :class:`~repro.harness.scenario.Sweep` expands parameter
axes into a grid of scenario cells with deterministic per-cell seeds.

Cells execute through :func:`~repro.harness.executor.run_sweep` —
fanned across worker processes, each cell in its own
:class:`~repro.sim.context.SimContext` (the PR-1 one-clock invariant),
with per-cell timeouts and crash isolation. Results are assembled in
cell order, cached content-addressed in a
:class:`~repro.harness.store.ResultStore`, and checked against
baseline *shape* invariants by :mod:`repro.harness.gate`.

See ``docs/harness.md`` for the spec schema and CLI usage
(``python -m repro sweep specs/e7_distribution.json --jobs 4 --gate``).
"""

from .executor import CellResult, SweepReport, run_sweep
from .gate import GateReport, check_gate, load_baseline
from .scenario import Scenario, Sweep, derive_seed, load_sweep
from .store import ResultStore

__all__ = [
    "CellResult",
    "GateReport",
    "ResultStore",
    "Scenario",
    "Sweep",
    "SweepReport",
    "check_gate",
    "derive_seed",
    "load_baseline",
    "load_sweep",
    "run_sweep",
]
