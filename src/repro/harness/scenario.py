"""Declarative scenario and sweep specifications.

A :class:`Scenario` is the unit of simulation the harness schedules: a
registered experiment kernel (``experiment``), three parameter groups
(``topology``, ``workload``, ``policy``) and a ``seed``. It is plain
data — serializable to/from JSON and TOML — so the full configuration
grid of an experiment lives in a spec file, not in benchmark code.

A :class:`Sweep` is a base scenario plus named *axes*: dotted parameter
paths (``workload.remote_fraction``) mapped to value lists. Expansion
takes the cartesian product of the axes, in spec order, yielding one
:class:`Cell` per combination. Each cell gets a deterministic seed
derived from the base seed and the cell's identity
(:func:`derive_seed`), so results are reproducible regardless of how
many worker processes execute the grid — unless the sweep sets
``per_cell_seeds = false``, in which case every cell shares the base
seed (required when cells are *compared* against each other and must
therefore replay the identical workload, e.g. the E2 policy sweep).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import ConfigError

#: Bump when result semantics change; part of every content hash, so a
#: version bump invalidates the whole result cache at once.
HARNESS_VERSION = 1

#: Scenario sections a sweep axis may address.
PARAM_GROUPS = ("topology", "workload", "policy")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance.

    This is the byte representation everything content-addressed hangs
    off (scenario hashes, stored results, determinism checks).
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def derive_seed(base_seed: int, cell_id: str) -> int:
    """Deterministic per-cell seed: stable across processes and runs.

    Uses SHA-256 over ``"<base_seed>|<cell_id>"`` (never Python's
    randomized ``hash``), truncated to 63 bits so it stays a friendly
    non-negative int for every RNG in the tree.
    """
    digest = hashlib.sha256(f"{base_seed}|{cell_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class Scenario:
    """One fully specified simulation configuration."""

    experiment: str
    topology: Mapping[str, Any] = field(default_factory=dict)
    workload: Mapping[str, Any] = field(default_factory=dict)
    policy: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ConfigError("scenario needs an experiment name")
        if not isinstance(self.seed, int):
            raise ConfigError(f"seed must be an int, got {self.seed!r}")

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "topology": dict(self.topology),
            "workload": dict(self.workload),
            "policy": dict(self.policy),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        extra = set(data) - {"experiment", "topology", "workload",
                             "policy", "seed"}
        if extra:
            raise ConfigError(f"unknown scenario keys: {sorted(extra)}")
        return cls(
            experiment=data.get("experiment", ""),
            topology=dict(data.get("topology", {})),
            workload=dict(data.get("workload", {})),
            policy=dict(data.get("policy", {})),
            seed=data.get("seed", 0),
        )

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def to_toml(self) -> str:
        return dumps_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "Scenario":
        return cls.from_dict(loads_toml(text))

    # -- identity ----------------------------------------------------------

    def content_hash(self) -> str:
        """SHA-256 over the canonical scenario + harness version.

        Two scenarios hash equal iff they would simulate the same
        thing; this is the result-store key.
        """
        payload = canonical_json(
            {"scenario": self.to_dict(), "harness_version": HARNESS_VERSION}
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- parameter overrides ----------------------------------------------

    def with_params(self, assignments: Mapping[str, Any]) -> "Scenario":
        """A copy with dotted-path *assignments* applied.

        Paths address the parameter groups (``workload.theta``,
        ``topology.nodes``, nested ``policy.tier.kind``) or the
        top-level ``seed`` / ``experiment``.
        """
        groups = {g: dict(getattr(self, g)) for g in PARAM_GROUPS}
        scalars: dict[str, Any] = {}
        for path, value in assignments.items():
            head, _, rest = path.partition(".")
            if head in PARAM_GROUPS:
                if not rest:
                    raise ConfigError(
                        f"axis {path!r} must name a parameter inside"
                        f" {head!r} (e.g. {head}.some_param)"
                    )
                _set_dotted(groups[head], rest, value)
            elif head in ("seed", "experiment") and not rest:
                scalars[head] = value
            else:
                raise ConfigError(
                    f"axis {path!r} is outside the scenario schema;"
                    f" use one of {PARAM_GROUPS + ('seed', 'experiment')}"
                )
        return replace(self, **groups, **scalars)


def _set_dotted(tree: dict, path: str, value: Any) -> None:
    head, _, rest = path.partition(".")
    if not rest:
        tree[head] = value
        return
    node = tree.setdefault(head, {})
    if not isinstance(node, dict):
        raise ConfigError(
            f"cannot descend into non-table parameter {head!r}"
        )
    tree[head] = dict(node)
    _set_dotted(tree[head], rest, value)


@dataclass(frozen=True)
class Cell:
    """One point of an expanded sweep grid."""

    index: int
    cell_id: str
    assignments: Mapping[str, Any]
    scenario: Scenario


@dataclass(frozen=True)
class Sweep:
    """A base scenario plus parameter axes to expand."""

    name: str
    base: Scenario
    axes: Mapping[str, tuple]
    per_cell_seeds: bool = True
    gate: Any = None  # baseline path (str) or inline invariant dict

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("sweep needs a name")
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigError(
                    f"axis {axis!r} needs a non-empty value list"
                )

    # -- expansion ---------------------------------------------------------

    def cells(self) -> list[Cell]:
        """Expand the grid: cartesian product of axes, in spec order."""
        return list(self._iter_cells())

    def _iter_cells(self) -> Iterator[Cell]:
        axes = [(axis, tuple(values)) for axis, values in self.axes.items()]
        names = [axis for axis, _ in axes]
        for index, combo in enumerate(
            itertools.product(*(values for _, values in axes))
        ):
            assignments = dict(zip(names, combo))
            cell_id = cell_id_for(assignments)
            scenario = self.base.with_params(assignments)
            if self.per_cell_seeds and "seed" not in assignments:
                scenario = replace(
                    scenario, seed=derive_seed(self.base.seed, cell_id)
                )
            yield Cell(index=index, cell_id=cell_id,
                       assignments=assignments, scenario=scenario)

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        data: dict[str, Any] = {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": {axis: list(vals) for axis, vals in self.axes.items()},
            "per_cell_seeds": self.per_cell_seeds,
        }
        if self.gate is not None:
            data["gate"] = self.gate
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Sweep":
        extra = set(data) - {"name", "base", "axes", "per_cell_seeds",
                             "gate"}
        if extra:
            raise ConfigError(f"unknown sweep keys: {sorted(extra)}")
        if "base" not in data:
            raise ConfigError("sweep spec needs a 'base' scenario table")
        axes = {
            axis: tuple(values)
            for axis, values in dict(data.get("axes", {})).items()
        }
        return cls(
            name=data.get("name", ""),
            base=Scenario.from_dict(data["base"]),
            axes=axes,
            per_cell_seeds=bool(data.get("per_cell_seeds", True)),
            gate=data.get("gate"),
        )


def cell_id_for(assignments: Mapping[str, Any]) -> str:
    """Stable cell identity: sorted ``axis=value`` pairs.

    Values are canonical JSON so ``0.1`` and ``"0.1"`` stay distinct
    and floats format identically everywhere.
    """
    return ",".join(
        f"{axis}={canonical_json(value)}"
        for axis, value in sorted(assignments.items())
    )


# ---------------------------------------------------------------------------
# Spec files: JSON natively, TOML via stdlib tomllib (3.11+) for reading
# and a minimal emitter for writing.
# ---------------------------------------------------------------------------

def load_sweep(path: str | Path) -> Sweep:
    """Load a sweep spec from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigError(f"cannot read sweep spec {path}: {exc}") from exc
    if path.suffix == ".toml":
        data = loads_toml(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"sweep spec {path} is not valid JSON: {exc}"
            ) from exc
    return Sweep.from_dict(data)


def save_sweep(sweep: Sweep, path: str | Path) -> Path:
    """Write a sweep spec as JSON (``.json``) or TOML (``.toml``)."""
    path = Path(path)
    if path.suffix == ".toml":
        text = dumps_toml(sweep.to_dict())
    else:
        text = json.dumps(sweep.to_dict(), indent=2, sort_keys=True) + "\n"
    path.write_text(text)
    return path


def loads_toml(text: str) -> dict:
    """Parse TOML via stdlib :mod:`tomllib` (Python 3.11+)."""
    try:
        import tomllib
    except ImportError as exc:  # pragma: no cover - py3.10 path
        raise ConfigError(
            "TOML specs need Python 3.11+ (stdlib tomllib);"
            " use the JSON form of the spec on this interpreter"
        ) from exc
    return tomllib.loads(text)


def dumps_toml(data: Mapping[str, Any], _prefix: str = "") -> str:
    """Emit the subset of TOML our specs use (scalars, lists, tables).

    Table keys containing dots (sweep axes) are quoted, so round-trips
    through :func:`loads_toml` preserve dotted axis names.
    """
    scalars: list[str] = []
    tables: list[str] = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            name = f"{_prefix}{_toml_key(key)}"
            body = dumps_toml(value, _prefix=f"{name}.")
            header = f"[{name}]\n" if _needs_header(value) else ""
            tables.append(header + body)
        else:
            scalars.append(f"{_toml_key(key)} = {_toml_value(value)}\n")
    return "".join(scalars) + "".join(tables)


def _needs_header(table: Mapping[str, Any]) -> bool:
    # An all-tables table needs no header of its own; an empty or
    # scalar-bearing one does, so it exists in the parsed output.
    return not table or any(
        not isinstance(v, Mapping) for v in table.values()
    )


def _toml_key(key: str) -> str:
    if key.replace("-", "").replace("_", "").isalnum() and "." not in key:
        return key
    return json.dumps(key)


def _toml_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and value != value:
            raise ConfigError("NaN is not representable in a spec")
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(v) for v in value) + "]"
    raise ConfigError(f"cannot express {type(value).__name__} in TOML")
