"""Baseline regression gating over sweep results.

The reproduced artifact of this repo is never an absolute number — it
is the *shape* of a result grid: who wins, by what factor, where a
crossover falls (EXPERIMENTS.md). A baseline file under
``results/baselines/`` declares those shapes as data, and
:func:`check_gate` re-asserts them against a fresh
:class:`~repro.harness.executor.SweepReport`, so any code change that
bends a curve out of its band turns into a nonzero exit in CI.

Baseline schema::

    {"name": "...", "invariants": [ <invariant>, ... ]}

Invariant kinds (``tolerance`` is a relative band that widens
``min``/``max`` bounds; ``where`` selects a cell by its sweep-axis
assignments):

* ``metric_bound`` — ``{kind, where, metric, min?, max?, tolerance?}``:
  a cell metric stays inside a band.
* ``ratio_bound`` — ``{kind, numerator: {where, metric},
  denominator: {where, metric}, min?, max?, tolerance?}``: a ratio of
  two metrics (possibly from different cells) stays inside a band.
* ``winner`` — ``{kind, larger: <ref>, smaller: <ref>, margin?}``:
  one value beats another by at least ``margin`` (default 1.0); a
  ``<ref>`` is ``{where, metric}``.
* ``crossover`` — ``{kind, axis, metric, crosses, between: [lo, hi],
  where?}``: walking cells in ascending ``axis`` order, the first
  axis value where ``metric >= crosses`` must fall inside
  ``[lo, hi]``.

Every malformed selector, missing metric, or unknown kind becomes a
*failed outcome* with a message — the gate never raises on bad data,
it fails closed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import ConfigError
from .executor import CellResult


@dataclass(frozen=True)
class InvariantOutcome:
    """One invariant's verdict."""

    ok: bool
    kind: str
    message: str

    def __str__(self) -> str:
        return f"[{'PASS' if self.ok else 'FAIL'}] {self.kind}: " \
               f"{self.message}"


@dataclass
class GateReport:
    """All invariant outcomes for one sweep-vs-baseline check."""

    baseline_name: str
    outcomes: list[InvariantOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> list[InvariantOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"gate {self.baseline_name}: {verdict}"
            f" ({len(self.outcomes) - len(self.failures)}/"
            f"{len(self.outcomes)} invariants hold)"
        )


def load_baseline(path: str | Path) -> dict:
    """Load a baseline file; raises ConfigError on unusable input."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or "invariants" not in data:
        raise ConfigError(
            f"baseline {path} must be an object with an"
            " 'invariants' list"
        )
    return data


def check_gate(cells: Sequence[CellResult], baseline: Mapping[str, Any]
               ) -> GateReport:
    """Assert every baseline invariant against *cells*."""
    report = GateReport(baseline_name=str(baseline.get("name", "baseline")))
    invariants = baseline.get("invariants", [])
    if not invariants:
        report.outcomes.append(InvariantOutcome(
            False, "baseline", "baseline declares no invariants"))
        return report
    usable = [c for c in cells if c.ok and c.result is not None]
    for spec in invariants:
        kind = str(spec.get("kind", "?"))
        checker = _CHECKERS.get(kind)
        if checker is None:
            outcome = InvariantOutcome(
                False, kind,
                f"unknown invariant kind; known: {sorted(_CHECKERS)}")
        else:
            try:
                outcome = checker(usable, spec)
            except _GateDataError as exc:
                outcome = InvariantOutcome(False, kind, str(exc))
        report.outcomes.append(outcome)
    return report


class _GateDataError(Exception):
    """Selector/metric lookup problems inside one invariant."""


def _select_cell(cells: Sequence[CellResult],
                 where: Mapping[str, Any] | None) -> CellResult:
    where = where or {}
    matches = [
        cell for cell in cells
        if all(cell.assignments.get(axis) == value
               for axis, value in where.items())
    ]
    if not matches:
        raise _GateDataError(
            f"no successful cell matches where={dict(where)}")
    if len(matches) > 1:
        raise _GateDataError(
            f"where={dict(where)} is ambiguous:"
            f" {len(matches)} cells match"
        )
    return matches[0]


def _metric(cell: CellResult, name: str) -> float:
    node: Any = cell.result
    for part in str(name).split("."):
        if not isinstance(node, Mapping) or part not in node:
            raise _GateDataError(
                f"cell {cell.cell_id or '(single cell)'} has no metric"
                f" {name!r}; has {sorted(cell.result or {})}"
            )
        node = node[part]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        raise _GateDataError(f"metric {name!r} is not numeric: {node!r}")
    return float(node)


def _ref_value(cells: Sequence[CellResult],
               ref: Mapping[str, Any], label: str) -> tuple[float, str]:
    if not isinstance(ref, Mapping) or "metric" not in ref:
        raise _GateDataError(
            f"{label} must be an object {{where, metric}}, got {ref!r}")
    cell = _select_cell(cells, ref.get("where"))
    value = _metric(cell, ref["metric"])
    return value, f"{ref['metric']}@{cell.cell_id or 'cell'}"


def _band(spec: Mapping[str, Any]) -> tuple[float | None, float | None]:
    lo, hi = spec.get("min"), spec.get("max")
    if lo is None and hi is None:
        raise _GateDataError("bound invariant needs min and/or max")
    tol = float(spec.get("tolerance", 0.0))
    if tol < 0:
        raise _GateDataError("tolerance must be non-negative")
    lo = None if lo is None else float(lo) * (1.0 - tol)
    hi = None if hi is None else float(hi) * (1.0 + tol)
    return lo, hi


def _in_band(value: float, lo: float | None, hi: float | None) -> bool:
    return (lo is None or value >= lo) and (hi is None or value <= hi)


def _band_label(lo: float | None, hi: float | None) -> str:
    return f"[{'-inf' if lo is None else f'{lo:g}'}," \
           f" {'+inf' if hi is None else f'{hi:g}'}]"


def _check_metric_bound(cells, spec) -> InvariantOutcome:
    if "metric" not in spec:
        raise _GateDataError("metric_bound needs a 'metric'")
    cell = _select_cell(cells, spec.get("where"))
    value = _metric(cell, spec["metric"])
    lo, hi = _band(spec)
    ok = _in_band(value, lo, hi)
    return InvariantOutcome(
        ok, "metric_bound",
        f"{spec['metric']}@{cell.cell_id or 'cell'} = {value:g},"
        f" band {_band_label(lo, hi)}",
    )


def _check_ratio_bound(cells, spec) -> InvariantOutcome:
    num, num_label = _ref_value(cells, spec.get("numerator"), "numerator")
    den, den_label = _ref_value(
        cells, spec.get("denominator"), "denominator")
    if den == 0:
        raise _GateDataError(f"denominator {den_label} is zero")
    ratio = num / den
    lo, hi = _band(spec)
    ok = _in_band(ratio, lo, hi)
    return InvariantOutcome(
        ok, "ratio_bound",
        f"{num_label} / {den_label} = {ratio:g},"
        f" band {_band_label(lo, hi)}",
    )


def _check_winner(cells, spec) -> InvariantOutcome:
    larger, larger_label = _ref_value(cells, spec.get("larger"), "larger")
    smaller, smaller_label = _ref_value(
        cells, spec.get("smaller"), "smaller")
    margin = float(spec.get("margin", 1.0))
    ok = larger >= smaller * margin
    return InvariantOutcome(
        ok, "winner",
        f"{larger_label} = {larger:g} vs {smaller_label} ="
        f" {smaller:g} (required margin {margin:g}x)",
    )


def _check_crossover(cells, spec) -> InvariantOutcome:
    for key in ("axis", "metric", "crosses", "between"):
        if key not in spec:
            raise _GateDataError(f"crossover needs {key!r}")
    axis = spec["axis"]
    where = spec.get("where") or {}
    line = [
        cell for cell in cells
        if axis in cell.assignments
        and all(cell.assignments.get(k) == v for k, v in where.items())
    ]
    if len(line) < 2:
        raise _GateDataError(
            f"crossover needs >=2 cells along axis {axis!r},"
            f" found {len(line)}"
        )
    try:
        line.sort(key=lambda cell: float(cell.assignments[axis]))
    except (TypeError, ValueError):
        raise _GateDataError(
            f"axis {axis!r} values are not numeric; cannot order them"
        ) from None
    lo, hi = (float(bound) for bound in spec["between"])
    for cell in line:
        if _metric(cell, spec["metric"]) >= _metric(cell, spec["crosses"]):
            at = float(cell.assignments[axis])
            return InvariantOutcome(
                lo <= at <= hi, "crossover",
                f"{spec['metric']} overtakes {spec['crosses']} at"
                f" {axis} = {at:g}, expected within [{lo:g}, {hi:g}]",
            )
    return InvariantOutcome(
        False, "crossover",
        f"{spec['metric']} never overtakes {spec['crosses']} along"
        f" {axis} (expected within [{lo:g}, {hi:g}])",
    )


_CHECKERS = {
    "metric_bound": _check_metric_bound,
    "ratio_bound": _check_ratio_bound,
    "winner": _check_winner,
    "crossover": _check_crossover,
}
