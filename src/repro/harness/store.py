"""Content-addressed result store: re-runs of unchanged cells are free.

Results live under ``<root>/<hh>/<hash>.json`` where ``hash`` is the
scenario's :meth:`~repro.harness.scenario.Scenario.content_hash` —
SHA-256 over the canonical scenario plus the harness version. Any
change to a cell's parameters, seed, or the harness result semantics
changes the key, so a hit is only ever served for a configuration that
would simulate byte-identically.

Writes are atomic (temp file + :func:`os.replace`), so parallel sweeps
sharing a store never observe torn entries; concurrent writers of the
same key write identical bytes by construction.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .scenario import HARNESS_VERSION, Scenario, canonical_json

#: Default store location, relative to the working directory.
DEFAULT_STORE_DIR = "results/store"


class ResultStore:
    """A directory of cached cell results keyed by scenario hash."""

    def __init__(self, root: str | Path = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Where the entry for content-hash *key* lives."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, scenario: Scenario) -> dict | None:
        """The cached result for *scenario*, or None on a miss.

        Unreadable, corrupt, or version-mismatched entries are treated
        as misses — the sweep re-simulates and overwrites them.
        """
        path = self.path_for(scenario.content_hash())
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("harness_version") != HARNESS_VERSION:
            return None
        result = data.get("result")
        return result if isinstance(result, dict) else None

    def put(self, scenario: Scenario, result: dict) -> Path:
        """Store *result* under the scenario's content hash."""
        path = self.path_for(scenario.content_hash())
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = canonical_json({
            "harness_version": HARNESS_VERSION,
            "scenario": scenario.to_dict(),
            "result": result,
        })
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(payload + "\n")
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"ResultStore({self.root}, entries={len(self)})"
