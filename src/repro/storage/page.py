"""Database pages.

A :class:`Page` is the unit moved between storage, DRAM, and CXL
memory. Payload bytes are *virtual*: the simulator charges transfer
times for ``size_bytes`` without materializing buffers, while the query
layer attaches record payloads to pages when it needs real values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..units import PAGE_SIZE

PageId = int

#: Sentinel for "no page".
INVALID_PAGE_ID: PageId = -1


@dataclass
class Page:
    """One fixed-size database page."""

    page_id: PageId
    size_bytes: int = PAGE_SIZE
    version: int = 0
    payload: Any = None
    _records: list = field(default_factory=list)

    def bump_version(self) -> int:
        """Record a logical modification; returns the new version."""
        self.version += 1
        return self.version

    @property
    def records(self) -> list:
        """Records stored on the page (query layer)."""
        return self._records

    def add_record(self, record: Any) -> None:
        """Append a record to the page (no capacity enforcement here;
        the table layer decides how many records fit a page)."""
        self._records.append(record)
        self.bump_version()

    def __repr__(self) -> str:
        return f"Page(id={self.page_id}, v={self.version})"
