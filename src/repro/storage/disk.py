"""Block storage devices (SSD/HDD) with timing and contention."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import StorageSpec, nvme_ssd
from ..errors import DeviceFailure, StorageError
from ..units import PAGE_SIZE, transfer_time_ns
from ..sim.bandwidth import SharedChannel


@dataclass
class StorageStats:
    """I/O counters for one device."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0

    @property
    def ios(self) -> int:
        """Total I/O operations."""
        return self.reads + self.writes


class StorageDevice:
    """A block device: latency + bandwidth + FIFO contention."""

    def __init__(self, spec: StorageSpec | None = None,
                 name: str | None = None) -> None:
        self.spec = spec or nvme_ssd()
        self.name = name or self.spec.name
        self.stats = StorageStats()
        self.channel = SharedChannel(self.name, self.spec.read_bandwidth)
        self._failed = False

    @property
    def healthy(self) -> bool:
        """False after :meth:`fail`."""
        return not self._failed

    def fail(self) -> None:
        """Mark the device failed; further I/O raises DeviceFailure."""
        self._failed = True

    def _check(self, size_bytes: int) -> None:
        if self._failed:
            raise DeviceFailure(f"storage device {self.name} has failed")
        if size_bytes <= 0:
            raise StorageError(f"I/O size must be positive: {size_bytes}")

    def read_time(self, size_bytes: int = PAGE_SIZE) -> float:
        """Unloaded read latency for *size_bytes* (ns)."""
        self._check(size_bytes)
        self.stats.reads += 1
        self.stats.read_bytes += size_bytes
        return self.spec.read_latency_ns + transfer_time_ns(
            size_bytes, self.spec.read_bandwidth
        )

    def write_time(self, size_bytes: int = PAGE_SIZE) -> float:
        """Unloaded write latency for *size_bytes* (ns)."""
        self._check(size_bytes)
        self.stats.writes += 1
        self.stats.write_bytes += size_bytes
        return self.spec.write_latency_ns + transfer_time_ns(
            size_bytes, self.spec.write_bandwidth
        )

    def read_completion(self, size_bytes: int, now_ns: float) -> float:
        """Contended read; returns absolute completion time."""
        self._check(size_bytes)
        self.stats.reads += 1
        self.stats.read_bytes += size_bytes
        done = self.channel.request(size_bytes, now_ns)
        return done + self.spec.read_latency_ns

    def write_completion(self, size_bytes: int, now_ns: float) -> float:
        """Contended write; returns absolute completion time."""
        self._check(size_bytes)
        self.stats.writes += 1
        self.stats.write_bytes += size_bytes
        done = self.channel.request(size_bytes, now_ns)
        return done + self.spec.write_latency_ns

    def __repr__(self) -> str:
        return f"StorageDevice({self.name!r})"
