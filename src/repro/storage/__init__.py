"""Block-storage substrate: pages, devices, and page files.

The bottom of the memory hierarchy. Disk-based engines page between
here and the buffer pool (Sec 3.1 contrasts this path with CXL memory
expansion).
"""

from .disk import StorageDevice
from .file import PageFile
from .page import INVALID_PAGE_ID, Page, PageId

__all__ = ["INVALID_PAGE_ID", "Page", "PageFile", "PageId", "StorageDevice"]
