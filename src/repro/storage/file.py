"""Page files: the persistent home of database pages.

A :class:`PageFile` owns a contiguous range of page ids on one storage
device. It is the *backing store* a buffer pool faults pages in from
and flushes dirty pages back to. Page payloads are kept in a dict so
the query layer can round-trip records through "disk".
"""

from __future__ import annotations

from ..errors import StorageError
from ..units import PAGE_SIZE
from .disk import StorageDevice
from .page import Page, PageId


class PageFile:
    """A growable array of pages on a storage device."""

    def __init__(self, device: StorageDevice, name: str = "tablespace",
                 page_size: int = PAGE_SIZE) -> None:
        if page_size <= 0:
            raise StorageError("page size must be positive")
        self.device = device
        self.name = name
        self.page_size = page_size
        self._pages: dict[PageId, Page] = {}
        self._next_id: PageId = 0

    # -- structure ----------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of allocated pages."""
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        """Total on-disk footprint."""
        return self.page_count * self.page_size

    def allocate_page(self) -> Page:
        """Append a fresh page and return it."""
        page = Page(page_id=self._next_id, size_bytes=self.page_size)
        self._pages[page.page_id] = page
        self._next_id += 1
        return page

    def allocate_pages(self, count: int) -> list[Page]:
        """Append *count* fresh pages."""
        if count < 0:
            raise StorageError(f"cannot allocate {count} pages")
        return [self.allocate_page() for _ in range(count)]

    def ensure(self, page_id: PageId) -> Page:
        """Materialize a page at a specific id if absent.

        Lets a buffer pool treat the file as the home of its whole
        page-id space without pre-allocating it densely.
        """
        if page_id < 0:
            raise StorageError(f"invalid page id {page_id}")
        page = self._pages.get(page_id)
        if page is None:
            page = Page(page_id=page_id, size_bytes=self.page_size)
            self._pages[page_id] = page
            self._next_id = max(self._next_id, page_id + 1)
        return page

    def contains(self, page_id: PageId) -> bool:
        """Whether the page id exists in this file."""
        return page_id in self._pages

    def page_ids(self) -> list[PageId]:
        """All page ids, in allocation order."""
        return sorted(self._pages)

    # -- I/O ---------------------------------------------------------------

    def _lookup(self, page_id: PageId) -> Page:
        page = self._pages.get(page_id)
        if page is None:
            raise StorageError(f"{self.name}: no page {page_id}")
        return page

    def install(self, page: Page) -> Page:
        """Place an externally built page at its id (no I/O charged).

        Used by bulk loaders (e.g. B+tree construction) that create
        page payloads directly.
        """
        if page.page_id < 0:
            raise StorageError(f"invalid page id {page.page_id}")
        self._pages[page.page_id] = page
        self._next_id = max(self._next_id, page.page_id + 1)
        return page

    def peek(self, page_id: PageId) -> Page:
        """Return the page object without performing (or charging) any
        I/O — used when the bytes are known to already be in memory,
        e.g. when a warm engine adopts pool-resident pages."""
        return self._lookup(page_id)

    def read_page(self, page_id: PageId) -> tuple[Page, float]:
        """Read a page; returns (page, I/O time in ns)."""
        page = self._lookup(page_id)
        return page, self.device.read_time(self.page_size)

    def write_page(self, page: Page) -> float:
        """Write a page back; returns the I/O time in ns."""
        self._lookup(page.page_id)
        self._pages[page.page_id] = page
        return self.device.write_time(self.page_size)

    def __repr__(self) -> str:
        return f"PageFile({self.name!r}, pages={self.page_count})"
