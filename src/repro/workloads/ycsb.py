"""YCSB-like OLTP traces.

The standard cloud-serving mixes (A-F) over a page population with
Zipfian skew. Keys map to pages at a configurable fill factor, so the
trace exercises a buffer pool exactly like point transactions do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigError
from .traces import Access
from .zipf import ZipfGenerator

#: Standard mixes: (read fraction, update fraction, insert fraction,
#: read-modify-write fraction, scan fraction).
YCSB_MIXES: dict[str, dict[str, float]] = {
    "A": {"read": 0.50, "update": 0.50},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.00},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.50, "rmw": 0.50},
}


@dataclass(frozen=True)
class YCSBConfig:
    """Parameters of a YCSB trace."""

    mix: str = "B"
    num_pages: int = 100_000
    num_ops: int = 100_000
    theta: float = 0.99
    records_per_page: int = 16
    scan_length_pages: int = 16
    think_ns: float = 200.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.mix not in YCSB_MIXES:
            raise ConfigError(
                f"unknown YCSB mix {self.mix!r}; choose from"
                f" {sorted(YCSB_MIXES)}"
            )
        if self.num_pages <= 0 or self.num_ops < 0:
            raise ConfigError("num_pages/num_ops must be positive")


def ycsb_trace(config: YCSBConfig) -> Iterator[Access]:
    """Generate the access trace for one YCSB run.

    Read/update/rmw touch one cache line of one page; inserts append
    at the tail pages; scans sweep consecutive pages with full-page
    touches flagged ``is_scan``.
    """
    import random

    mix = YCSB_MIXES[config.mix]
    ops = list(mix.items())
    op_names = [name for name, _w in ops]
    op_weights = [w for _n, w in ops]
    zipf = ZipfGenerator(config.num_pages, theta=config.theta,
                         scramble=True, seed=config.seed)
    rng = random.Random(config.seed ^ 0x9e3779b9)
    insert_cursor = config.num_pages
    page_ids = zipf.sample(config.num_ops)

    for i in range(config.num_ops):
        op = rng.choices(op_names, weights=op_weights, k=1)[0]
        page_id = int(page_ids[i])
        if op == "read":
            yield Access(page_id, think_ns=config.think_ns)
        elif op == "update":
            yield Access(page_id, write=True, think_ns=config.think_ns)
        elif op == "rmw":
            yield Access(page_id, think_ns=config.think_ns)
            yield Access(page_id, write=True, think_ns=0.0)
        elif op == "insert":
            yield Access(insert_cursor, write=True,
                         think_ns=config.think_ns)
            if rng.random() < 1.0 / config.records_per_page:
                insert_cursor += 1
        elif op == "scan":
            start = page_id
            for offset in range(config.scan_length_pages):
                yield Access(start + offset, is_scan=True,
                             nbytes=4096,
                             think_ns=config.think_ns / 4)
        else:  # pragma: no cover - mixes are validated above
            raise ConfigError(f"unhandled op {op}")


def working_set_pages(config: YCSBConfig, mass: float = 0.9) -> int:
    """Pages needed to absorb *mass* of the traffic (skew insight)."""
    zipf = ZipfGenerator(config.num_pages, theta=config.theta)
    lo, hi = 1, config.num_pages
    while lo < hi:
        mid = (lo + hi) // 2
        if zipf.hot_set_mass(mid / config.num_pages) >= mass:
            hi = mid
        else:
            lo = mid + 1
    return lo
