"""YCSB-like OLTP traces.

The standard cloud-serving mixes (A-F) over a page population with
Zipfian skew. Keys map to pages at a configurable fill factor, so the
trace exercises a buffer pool exactly like point transactions do.

Two emitters share one pre-drawn op plan: :func:`ycsb_trace` yields
scalar :class:`Access` records, :func:`ycsb_blocks` assembles the same
elementwise sequence as structure-of-arrays :class:`AccessBlock`
chunks with vectorised scan expansion and insert-cursor arithmetic.
"""

from __future__ import annotations

import random
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterator

import numpy as np

from ..errors import ConfigError
from ..units import CACHE_LINE
from .traces import BLOCK_OPS, Access, AccessBlock
from .zipf import ZipfGenerator

#: Standard mixes: (read fraction, update fraction, insert fraction,
#: read-modify-write fraction, scan fraction).
YCSB_MIXES: dict[str, dict[str, float]] = {
    "A": {"read": 0.50, "update": 0.50},
    "B": {"read": 0.95, "update": 0.05},
    "C": {"read": 1.00},
    "D": {"read": 0.95, "insert": 0.05},
    "E": {"scan": 0.95, "insert": 0.05},
    "F": {"read": 0.50, "rmw": 0.50},
}

#: Page size touched by scan ops (full page, vs a line for point ops).
_SCAN_NBYTES = 4096

#: Op codes for the vectorised block assembly.
_OP_READ, _OP_UPDATE, _OP_RMW, _OP_INSERT, _OP_SCAN = range(5)
_OP_CODES = {
    "read": _OP_READ,
    "update": _OP_UPDATE,
    "rmw": _OP_RMW,
    "insert": _OP_INSERT,
    "scan": _OP_SCAN,
}


@dataclass(frozen=True)
class YCSBConfig:
    """Parameters of a YCSB trace."""

    mix: str = "B"
    num_pages: int = 100_000
    num_ops: int = 100_000
    theta: float = 0.99
    records_per_page: int = 16
    scan_length_pages: int = 16
    think_ns: float = 200.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.mix not in YCSB_MIXES:
            raise ConfigError(
                f"unknown YCSB mix {self.mix!r}; choose from"
                f" {sorted(YCSB_MIXES)}"
            )
        if self.num_pages <= 0 or self.num_ops < 0:
            raise ConfigError("num_pages/num_ops must be positive")


def _op_plan(config: YCSBConfig) -> tuple[list[str], list[bool]]:
    """Pre-draw the op-choice sequence and insert page-growth flags.

    Replicates ``random.choices``'s arithmetic (cumulative weights +
    one ``random()`` draw per op) with the insert growth draw taken
    immediately after each insert choice — the exact uniform-stream
    consumption order of the historical per-op loop, so the resulting
    trace is elementwise identical while the per-op cost drops to one
    bisect.
    """
    mix = YCSB_MIXES[config.mix]
    op_names = list(mix)
    cum_weights = list(accumulate(mix.values()))
    total = cum_weights[-1] + 0.0
    hi = len(op_names) - 1
    rng = random.Random(config.seed ^ 0x9e3779b9)
    draw = rng.random
    grow = 1.0 / config.records_per_page
    ops: list[str] = []
    append = ops.append
    advances: list[bool] = []
    for _ in range(config.num_ops):
        op = op_names[bisect(cum_weights, draw() * total, 0, hi)]
        append(op)
        if op == "insert":
            advances.append(draw() < grow)
    return ops, advances


def ycsb_trace(config: YCSBConfig) -> Iterator[Access]:
    """Generate the access trace for one YCSB run.

    Read/update/rmw touch one cache line of one page; inserts append
    at the tail pages; scans sweep consecutive pages with full-page
    touches flagged ``is_scan``.
    """
    zipf = ZipfGenerator(config.num_pages, theta=config.theta,
                         scramble=True, seed=config.seed)
    page_ids = zipf.sample(config.num_ops)
    ops, advances = _op_plan(config)
    insert_cursor = config.num_pages
    inserts_seen = 0

    for i in range(config.num_ops):
        op = ops[i]
        page_id = int(page_ids[i])
        if op == "read":
            yield Access(page_id, think_ns=config.think_ns)
        elif op == "update":
            yield Access(page_id, write=True, think_ns=config.think_ns)
        elif op == "rmw":
            yield Access(page_id, think_ns=config.think_ns)
            yield Access(page_id, write=True, think_ns=0.0)
        elif op == "insert":
            yield Access(insert_cursor, write=True,
                         think_ns=config.think_ns)
            if advances[inserts_seen]:
                insert_cursor += 1
            inserts_seen += 1
        elif op == "scan":
            start = page_id
            for offset in range(config.scan_length_pages):
                yield Access(start + offset, is_scan=True,
                             nbytes=_SCAN_NBYTES,
                             think_ns=config.think_ns / 4)
        else:  # pragma: no cover - mixes are validated above
            raise ConfigError(f"unhandled op {op}")


def ycsb_blocks(config: YCSBConfig,
                block_ops: int = BLOCK_OPS) -> Iterator[AccessBlock]:
    """The :func:`ycsb_trace` sequence as structure-of-arrays blocks.

    Elementwise identical to the scalar generator (same RNG draws,
    same op plan); op expansion (rmw pairs, scan sweeps) and insert
    cursor positions are assembled with numpy scatters instead of
    per-access object construction.
    """
    num_ops = config.num_ops
    if num_ops == 0:
        return
    zipf = ZipfGenerator(config.num_pages, theta=config.theta,
                         scramble=True, seed=config.seed)
    page_ids = zipf.sample(num_ops)
    ops, advances = _op_plan(config)
    codes = np.fromiter((_OP_CODES[op] for op in ops), np.int8,
                        count=num_ops)
    scan_len = config.scan_length_pages
    lengths = np.array([1, 1, 2, 1, scan_len], dtype=np.int64)
    # Insert cursor value for the j-th insert: the tail page plus the
    # number of growth advances among earlier inserts.
    advance_flags = np.array(advances, dtype=np.int64)
    cursors = config.num_pages + np.concatenate(
        ([0], np.cumsum(advance_flags[:-1]))) if advances else \
        np.empty(0, np.int64)
    think = config.think_ns
    scan_think = config.think_ns / 4
    scan_steps = np.arange(scan_len, dtype=np.int64)
    inserts_seen = 0
    for chunk_start in range(0, num_ops, block_ops):
        chunk_end = min(chunk_start + block_ops, num_ops)
        chunk_codes = codes[chunk_start:chunk_end]
        chunk_pages = page_ids[chunk_start:chunk_end]
        counts = lengths[chunk_codes]
        offsets = np.cumsum(counts) - counts
        total = int(offsets[-1] + counts[-1])
        out_pid = np.zeros(total, np.int64)
        out_write = np.zeros(total, np.bool_)
        out_scan = np.zeros(total, np.bool_)
        out_nbytes = np.full(total, CACHE_LINE, np.int64)
        out_think = np.full(total, think, np.float64)
        mask = chunk_codes == _OP_READ
        out_pid[offsets[mask]] = chunk_pages[mask]
        mask = chunk_codes == _OP_UPDATE
        dest = offsets[mask]
        out_pid[dest] = chunk_pages[mask]
        out_write[dest] = True
        mask = chunk_codes == _OP_RMW
        dest = offsets[mask]
        out_pid[dest] = chunk_pages[mask]
        out_pid[dest + 1] = chunk_pages[mask]
        out_write[dest + 1] = True
        out_think[dest + 1] = 0.0
        mask = chunk_codes == _OP_INSERT
        dest = offsets[mask]
        if dest.size:
            out_pid[dest] = cursors[inserts_seen:inserts_seen + dest.size]
            out_write[dest] = True
            inserts_seen += dest.size
        mask = chunk_codes == _OP_SCAN
        dest = offsets[mask]
        if dest.size:
            sweep = (dest[:, None] + scan_steps).ravel()
            out_pid[sweep] = (chunk_pages[mask][:, None]
                              + scan_steps).ravel()
            out_scan[sweep] = True
            out_nbytes[sweep] = _SCAN_NBYTES
            out_think[sweep] = scan_think
        block = AccessBlock(out_pid, out_write, out_scan, out_nbytes,
                            out_think)
        for start in range(0, total, block_ops):
            yield block.slice(start, min(start + block_ops, total))


def working_set_pages(config: YCSBConfig, mass: float = 0.9) -> int:
    """Pages needed to absorb *mass* of the traffic (skew insight)."""
    zipf = ZipfGenerator(config.num_pages, theta=config.theta)
    lo, hi = 1, config.num_pages
    while lo < hi:
        mid = (lo + hi) // 2
        if zipf.hot_set_mass(mid / config.num_pages) >= mass:
            hi = mid
        else:
            lo = mid + 1
    return lo
