"""Workload generators.

Synthetic substitutes for the traces the paper's sources used:
Zipfian OLTP key traffic (:mod:`repro.workloads.ycsb`,
:mod:`repro.workloads.tpcc`), analytical scans
(:mod:`repro.workloads.scans`), and the Pond-style population of 158
cloud workloads (:mod:`repro.workloads.cloudmix`).
"""

from .cloudmix import CloudWorkload, generate_population
from .replay import TraceProfile, load_trace, profile_trace, save_trace
from .scans import mixed_htap_blocks, mixed_htap_trace, scan_blocks, scan_trace
from .traces import (
    BLOCK_OPS,
    Access,
    AccessBlock,
    ShapeSegments,
    accesses_to_blocks,
    blocks_to_accesses,
    instrumented,
    interleave,
)
from .ycsb import YCSB_MIXES, YCSBConfig, ycsb_blocks, ycsb_trace
from .zipf import ZipfGenerator

__all__ = [
    "Access",
    "AccessBlock",
    "BLOCK_OPS",
    "CloudWorkload",
    "ShapeSegments",
    "TraceProfile",
    "YCSBConfig",
    "YCSB_MIXES",
    "ZipfGenerator",
    "accesses_to_blocks",
    "blocks_to_accesses",
    "generate_population",
    "instrumented",
    "interleave",
    "load_trace",
    "mixed_htap_blocks",
    "mixed_htap_trace",
    "profile_trace",
    "save_trace",
    "scan_blocks",
    "scan_trace",
    "ycsb_blocks",
    "ycsb_trace",
]
