"""Workload generators.

Synthetic substitutes for the traces the paper's sources used:
Zipfian OLTP key traffic (:mod:`repro.workloads.ycsb`,
:mod:`repro.workloads.tpcc`), analytical scans
(:mod:`repro.workloads.scans`), and the Pond-style population of 158
cloud workloads (:mod:`repro.workloads.cloudmix`).
"""

from .cloudmix import CloudWorkload, generate_population
from .replay import TraceProfile, load_trace, profile_trace, save_trace
from .scans import mixed_htap_trace, scan_trace
from .traces import Access, instrumented, interleave
from .ycsb import YCSB_MIXES, YCSBConfig, ycsb_trace
from .zipf import ZipfGenerator

__all__ = [
    "Access",
    "CloudWorkload",
    "TraceProfile",
    "YCSBConfig",
    "YCSB_MIXES",
    "ZipfGenerator",
    "generate_population",
    "instrumented",
    "interleave",
    "load_trace",
    "mixed_htap_trace",
    "profile_trace",
    "save_trace",
    "scan_trace",
    "ycsb_trace",
]
