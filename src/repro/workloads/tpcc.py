"""TPC-C-lite: a faithful-in-shape miniature of TPC-C.

Implements the five transaction profiles with the standard mix and the
standard per-warehouse cardinalities, emitting record-level operations
that engines map onto pages and locks. Not an audited TPC-C — the
point is to reproduce its *access skew and read/write mix*, which is
what the memory-architecture experiments are sensitive to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import ConfigError
from ..units import CACHE_LINE
from .traces import BLOCK_OPS, Access, AccessBlock

#: Records per table per warehouse (item is shared across warehouses).
TABLE_CARDINALITY = {
    "warehouse": 1,
    "district": 10,
    "customer": 30_000,
    "stock": 100_000,
    "orders": 30_000,
    "order_line": 300_000,
    "history": 30_000,
    "new_order": 9_000,
}

#: Shared (non-warehouse-partitioned) tables.
SHARED_TABLES = {"item": 100_000}

#: Records that fit one 4 KiB page, per table.
RECORDS_PER_PAGE = {
    "warehouse": 4,
    "district": 16,
    "customer": 6,
    "stock": 12,
    "orders": 48,
    "order_line": 72,
    "history": 96,
    "new_order": 512,
    "item": 48,
}

#: Standard transaction mix.
TRANSACTION_MIX = [
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
]


@dataclass(frozen=True)
class RecordOp:
    """One record-level read or write inside a transaction."""

    table: str
    warehouse: int  # -1 for shared tables
    key: int
    write: bool = False


@dataclass
class Transaction:
    """One TPC-C transaction: a profile plus its record operations."""

    txn_id: int
    profile: str
    home_warehouse: int
    ops: list[RecordOp] = field(default_factory=list)
    remote: bool = False  # touches a warehouse other than home

    @property
    def writes(self) -> int:
        """Number of write operations."""
        return sum(1 for op in self.ops if op.write)


class TPCCLite:
    """Generator of TPC-C-lite transactions and page mappings."""

    def __init__(self, num_warehouses: int = 4,
                 remote_probability: float = 0.01,
                 seed: int = 42) -> None:
        if num_warehouses <= 0:
            raise ConfigError("need at least one warehouse")
        if not 0.0 <= remote_probability <= 1.0:
            raise ConfigError("remote_probability must be in [0,1]")
        self.num_warehouses = num_warehouses
        self.remote_probability = remote_probability
        self._rng = random.Random(seed)
        self._txn_counter = 0
        self._page_base: dict[tuple[str, int], int] = {}
        self._build_page_map()

    # -- page layout --------------------------------------------------------

    def _build_page_map(self) -> None:
        cursor = 0
        for warehouse in range(self.num_warehouses):
            for table, cardinality in TABLE_CARDINALITY.items():
                pages = -(-cardinality // RECORDS_PER_PAGE[table])
                self._page_base[(table, warehouse)] = cursor
                cursor += pages
        for table, cardinality in SHARED_TABLES.items():
            pages = -(-cardinality // RECORDS_PER_PAGE[table])
            self._page_base[(table, -1)] = cursor
            cursor += pages
        self._total_pages = cursor

    @property
    def total_pages(self) -> int:
        """Total pages across all tables and warehouses."""
        return self._total_pages

    def page_of(self, op: RecordOp) -> int:
        """Global page id holding a record."""
        base = self._page_base.get((op.table, op.warehouse))
        if base is None:
            raise ConfigError(
                f"no table {op.table!r} for warehouse {op.warehouse}"
            )
        return base + op.key // RECORDS_PER_PAGE[op.table]

    # -- transaction profiles ----------------------------------------------------

    def _warehouse(self) -> int:
        return self._rng.randrange(self.num_warehouses)

    def _customer_key(self) -> int:
        # NURand-ish skew: favour a hot subset of customers.
        if self._rng.random() < 0.6:
            return self._rng.randrange(TABLE_CARDINALITY["customer"] // 10)
        return self._rng.randrange(TABLE_CARDINALITY["customer"])

    def _supply_warehouse(self, home: int) -> tuple[int, bool]:
        if self.num_warehouses > 1 and \
                self._rng.random() < self.remote_probability:
            other = self._rng.randrange(self.num_warehouses - 1)
            if other >= home:
                other += 1
            return other, True
        return home, False

    def next_transaction(self) -> Transaction:
        """Draw one transaction according to the standard mix."""
        roll = self._rng.random()
        acc = 0.0
        profile = TRANSACTION_MIX[-1][0]
        for name, weight in TRANSACTION_MIX:
            acc += weight
            if roll < acc:
                profile = name
                break
        builder = getattr(self, f"_build_{profile}")
        self._txn_counter += 1
        return builder(self._txn_counter)

    def transactions(self, count: int) -> Iterator[Transaction]:
        """A stream of *count* transactions."""
        for _ in range(count):
            yield self.next_transaction()

    def _build_new_order(self, txn_id: int) -> Transaction:
        home = self._warehouse()
        txn = Transaction(txn_id, "new_order", home)
        ops = txn.ops
        district = self._rng.randrange(TABLE_CARDINALITY["district"])
        ops.append(RecordOp("warehouse", home, 0))
        ops.append(RecordOp("district", home, district, write=True))
        ops.append(RecordOp("customer", home, self._customer_key()))
        num_items = self._rng.randint(5, 15)
        for _ in range(num_items):
            item = self._rng.randrange(SHARED_TABLES["item"])
            supply, remote = self._supply_warehouse(home)
            txn.remote = txn.remote or remote
            ops.append(RecordOp("item", -1, item))
            ops.append(RecordOp(
                "stock", supply,
                item % TABLE_CARDINALITY["stock"], write=True,
            ))
            ops.append(RecordOp(
                "order_line", home,
                self._rng.randrange(TABLE_CARDINALITY["order_line"]),
                write=True,
            ))
        ops.append(RecordOp(
            "orders", home,
            self._rng.randrange(TABLE_CARDINALITY["orders"]), write=True,
        ))
        ops.append(RecordOp(
            "new_order", home,
            self._rng.randrange(TABLE_CARDINALITY["new_order"]), write=True,
        ))
        return txn

    def _build_payment(self, txn_id: int) -> Transaction:
        home = self._warehouse()
        txn = Transaction(txn_id, "payment", home)
        district = self._rng.randrange(TABLE_CARDINALITY["district"])
        customer_warehouse, remote = self._supply_warehouse(home)
        txn.remote = remote
        txn.ops.extend([
            RecordOp("warehouse", home, 0, write=True),
            RecordOp("district", home, district, write=True),
            RecordOp("customer", customer_warehouse,
                     self._customer_key(), write=True),
            RecordOp("history", home,
                     self._rng.randrange(TABLE_CARDINALITY["history"]),
                     write=True),
        ])
        return txn

    def _build_order_status(self, txn_id: int) -> Transaction:
        home = self._warehouse()
        txn = Transaction(txn_id, "order_status", home)
        order = self._rng.randrange(TABLE_CARDINALITY["orders"])
        txn.ops.append(RecordOp("customer", home, self._customer_key()))
        txn.ops.append(RecordOp("orders", home, order))
        for line in range(self._rng.randint(5, 15)):
            txn.ops.append(RecordOp(
                "order_line", home,
                (order * 10 + line) % TABLE_CARDINALITY["order_line"],
            ))
        return txn

    def _build_delivery(self, txn_id: int) -> Transaction:
        home = self._warehouse()
        txn = Transaction(txn_id, "delivery", home)
        for district in range(TABLE_CARDINALITY["district"]):
            order = self._rng.randrange(TABLE_CARDINALITY["orders"])
            txn.ops.append(RecordOp(
                "new_order", home,
                order % TABLE_CARDINALITY["new_order"], write=True,
            ))
            txn.ops.append(RecordOp("orders", home, order, write=True))
            txn.ops.append(RecordOp(
                "customer", home,
                (order * 7 + district) % TABLE_CARDINALITY["customer"],
                write=True,
            ))
        return txn

    def _build_stock_level(self, txn_id: int) -> Transaction:
        home = self._warehouse()
        txn = Transaction(txn_id, "stock_level", home)
        district = self._rng.randrange(TABLE_CARDINALITY["district"])
        txn.ops.append(RecordOp("district", home, district))
        base = self._rng.randrange(TABLE_CARDINALITY["order_line"] - 200)
        for offset in range(200):
            txn.ops.append(RecordOp("order_line", home, base + offset))
        for _ in range(20):
            txn.ops.append(RecordOp(
                "stock", home,
                self._rng.randrange(TABLE_CARDINALITY["stock"]),
            ))
        return txn

    # -- adapters ----------------------------------------------------------------

    def flat_trace(self, num_transactions: int,
                   think_ns: float = 150.0) -> Iterator[Access]:
        """Flatten transactions into a page access trace (for buffer
        pool experiments that don't need locking)."""
        for txn in self.transactions(num_transactions):
            for op in txn.ops:
                yield Access(
                    page_id=self.page_of(op),
                    write=op.write,
                    nbytes=CACHE_LINE,
                    think_ns=think_ns,
                )

    def flat_trace_blocks(self, num_transactions: int,
                          think_ns: float = 150.0,
                          block_ops: int = BLOCK_OPS
                          ) -> Iterator[AccessBlock]:
        """The :meth:`flat_trace` sequence as structure-of-arrays
        blocks (elementwise identical, same RNG draws).

        Transaction drawing stays sequential — it is RNG-order
        sensitive — but page mapping and column assembly skip the
        per-access object churn.
        """
        page_of = self.page_of
        page_ids: list[int] = []
        writes: list[bool] = []

        def emit(upto: int) -> AccessBlock:
            block = AccessBlock(
                page_id=np.array(page_ids[:upto], dtype=np.int64),
                write=np.array(writes[:upto], dtype=np.bool_),
                is_scan=np.zeros(upto, np.bool_),
                nbytes=np.full(upto, CACHE_LINE, np.int64),
                think_ns=np.full(upto, think_ns, np.float64),
            )
            del page_ids[:upto], writes[:upto]
            return block

        for txn in self.transactions(num_transactions):
            for op in txn.ops:
                page_ids.append(page_of(op))
                writes.append(op.write)
            while len(page_ids) >= block_ops:
                yield emit(block_ops)
        if page_ids:
            yield emit(len(page_ids))
