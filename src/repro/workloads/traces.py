"""Access traces: the lingua franca between workloads and engines.

A trace is any iterable of :class:`Access` records. Generators in this
package yield them lazily so multi-million-access experiments stay
memory-flat.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..units import CACHE_LINE


@dataclass(frozen=True, slots=True)
class Access:
    """One logical page access issued by a workload.

    ``think_ns`` is CPU work attributed to the access (modelling
    compute between memory touches — what makes a workload memory- or
    compute-bound). ``nbytes`` is how much of the page the access
    actually touches (a point lookup touches a line; a scan touches
    the full page). ``slots=True`` because multi-million-access traces
    allocate one of these per op.
    """

    page_id: int
    write: bool = False
    is_scan: bool = False
    nbytes: int = CACHE_LINE
    think_ns: float = 0.0


def interleave(*traces: Iterable[Access],
               weights: list[int] | None = None) -> Iterator[Access]:
    """Round-robin interleave several traces until all are exhausted.

    With *weights*, trace *i* contributes ``weights[i]`` accesses per
    round (a cheap way to mix OLTP and OLAP load at a chosen ratio).
    """
    iterators = [iter(trace) for trace in traces]
    if weights is None:
        weights = [1] * len(iterators)
    if len(weights) != len(iterators):
        raise ValueError("one weight per trace required")
    live = set(range(len(iterators)))
    while live:
        for index in list(live):
            for _ in range(weights[index]):
                try:
                    yield next(iterators[index])
                except StopIteration:
                    live.discard(index)
                    break


def take(trace: Iterable[Access], n: int) -> Iterator[Access]:
    """The first *n* accesses of a trace."""
    iterator = iter(trace)
    for _ in range(n):
        try:
            yield next(iterator)
        except StopIteration:
            return


def merge_timed(*timed_traces: Iterable[tuple[float, Access]]
                ) -> Iterator[tuple[float, Access]]:
    """Merge (timestamp, access) streams by timestamp."""
    return heapq.merge(*timed_traces, key=lambda pair: pair[0])


def instrumented(trace: Iterable[Access], ctx, name: str = "trace",
                 batch: int = 1024) -> Iterator[Access]:
    """Pass a trace through while counting it into *ctx* metrics.

    Counters land under ``workload.<name>.*`` (accesses, writes,
    scans, bytes). Counting is batched so instrumenting a generator
    costs a few local increments per access, not a registry call.
    """
    metrics = ctx.metrics.scope(f"workload.{name}")
    accesses = writes = scans = nbytes = 0
    for access in trace:
        accesses += 1
        nbytes += access.nbytes
        if access.write:
            writes += 1
        if access.is_scan:
            scans += 1
        if accesses % batch == 0:
            metrics.incr("accesses", batch)
            metrics.incr("writes", writes)
            metrics.incr("scans", scans)
            metrics.incr("bytes", nbytes)
            writes = scans = nbytes = 0
        yield access
    remainder = accesses % batch
    if remainder or writes or scans or nbytes:
        metrics.incr("accesses", remainder)
        metrics.incr("writes", writes)
        metrics.incr("scans", scans)
        metrics.incr("bytes", nbytes)
