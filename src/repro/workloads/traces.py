"""Access traces: the lingua franca between workloads and engines.

A trace is any iterable of :class:`Access` records *or*
:class:`AccessBlock` chunks (the two may be mixed). Scalar generators
yield one :class:`Access` per op; the block-emitting variants
(``ycsb_blocks``, ``scan_blocks``, ...) yield structure-of-arrays
chunks of ~:data:`BLOCK_OPS` accesses, which the engine consumes
without materialising per-access Python objects. Both forms describe
the same elementwise sequence — ``blocks_to_accesses`` /
``accesses_to_blocks`` convert losslessly — and both stay memory-flat
for multi-million-access experiments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..units import CACHE_LINE

#: Accesses per emitted block. Matches the engine coalescer's run cap
#: (``engine.RUN_CHUNK``) so one block feeds one maximal batched run.
BLOCK_OPS = 4096


@dataclass(frozen=True, slots=True)
class Access:
    """One logical page access issued by a workload.

    ``think_ns`` is CPU work attributed to the access (modelling
    compute between memory touches — what makes a workload memory- or
    compute-bound). ``nbytes`` is how much of the page the access
    actually touches (a point lookup touches a line; a scan touches
    the full page). ``slots=True`` because multi-million-access traces
    allocate one of these per op.
    """

    page_id: int
    write: bool = False
    is_scan: bool = False
    nbytes: int = CACHE_LINE
    think_ns: float = 0.0


@dataclass(frozen=True, slots=True)
class AccessBlock:
    """A structure-of-arrays chunk of consecutive trace accesses.

    Five parallel numpy columns, one row per access: ``page_id``
    (int64), ``write``/``is_scan`` (bool), ``nbytes`` (int64),
    ``think_ns`` (float64). Blocks are immutable by convention —
    consumers must never write into the columns, so generators are
    free to hand out views of larger arrays.
    """

    page_id: np.ndarray
    write: np.ndarray
    is_scan: np.ndarray
    nbytes: np.ndarray
    think_ns: np.ndarray

    def __len__(self) -> int:
        return self.page_id.shape[0]

    @classmethod
    def from_columns(cls, page_id, write, is_scan, nbytes,
                     think_ns) -> "AccessBlock":
        """Build a block, normalising column dtypes."""
        return cls(
            page_id=np.ascontiguousarray(page_id, dtype=np.int64),
            write=np.ascontiguousarray(write, dtype=np.bool_),
            is_scan=np.ascontiguousarray(is_scan, dtype=np.bool_),
            nbytes=np.ascontiguousarray(nbytes, dtype=np.int64),
            think_ns=np.ascontiguousarray(think_ns, dtype=np.float64),
        )

    @classmethod
    def from_accesses(cls, accesses: Sequence[Access]) -> "AccessBlock":
        """Pack scalar accesses into one block (lossless)."""
        n = len(accesses)
        return cls(
            page_id=np.fromiter((a.page_id for a in accesses),
                                np.int64, count=n),
            write=np.fromiter((a.write for a in accesses),
                              np.bool_, count=n),
            is_scan=np.fromiter((a.is_scan for a in accesses),
                                np.bool_, count=n),
            nbytes=np.fromiter((a.nbytes for a in accesses),
                               np.int64, count=n),
            think_ns=np.fromiter((a.think_ns for a in accesses),
                                 np.float64, count=n),
        )

    def slice(self, start: int, stop: int) -> "AccessBlock":
        """A zero-copy view of rows ``[start, stop)``."""
        return AccessBlock(
            page_id=self.page_id[start:stop],
            write=self.write[start:stop],
            is_scan=self.is_scan[start:stop],
            nbytes=self.nbytes[start:stop],
            think_ns=self.think_ns[start:stop],
        )

    def accesses(self) -> Iterator[Access]:
        """Unpack into scalar :class:`Access` records (lossless)."""
        page_id = self.page_id.tolist()
        write = self.write.tolist()
        is_scan = self.is_scan.tolist()
        nbytes = self.nbytes.tolist()
        think_ns = self.think_ns.tolist()
        for i in range(len(page_id)):
            yield Access(page_id[i], write[i], is_scan[i], nbytes[i],
                         think_ns[i])

    def segment_bounds(self) -> list[int]:
        """Boundaries of the maximal same-shape runs in this block.

        Returns ``[0, b1, ..., n]`` such that every half-open segment
        holds one access shape (nbytes, write, scan flag, think time)
        — the unit the engine hands to the pool's batched lane. One
        vectorised boundary scan over a packed shape key replaces the
        per-access Python peek loop. ``think_ns`` is compared by bit
        pattern, which can only split runs the scalar peek would have
        merged (``-0.0`` vs ``0.0``) — splitting is always exact.
        """
        n = self.page_id.shape[0]
        if n <= 1:
            return [0, n] if n else [0]
        key = self.nbytes * 4 + self.write * 2 + self.is_scan
        think_bits = self.think_ns.view(np.int64)
        change = (key[1:] != key[:-1]) \
            | (think_bits[1:] != think_bits[:-1])
        cuts = np.flatnonzero(change)
        return [0, *(cuts + 1).tolist(), n]


# -- lossless adapters -------------------------------------------------------


def blocks_to_accesses(trace) -> Iterator[Access]:
    """Expand a (possibly mixed) trace into scalar accesses."""
    for item in trace:
        if type(item) is AccessBlock:
            yield from item.accesses()
        else:
            yield item


def accesses_to_blocks(trace, block_ops: int = BLOCK_OPS
                       ) -> Iterator[AccessBlock]:
    """Pack a (possibly mixed) trace into blocks of ``block_ops``.

    Blocks already present in the trace pass through unchanged (no
    re-chunking); buffered scalar accesses are flushed ahead of them
    so elementwise order is preserved.
    """
    buffer: list[Access] = []
    for item in trace:
        if type(item) is AccessBlock:
            if buffer:
                yield AccessBlock.from_accesses(buffer)
                buffer.clear()
            if len(item):
                yield item
            continue
        buffer.append(item)
        if len(buffer) >= block_ops:
            yield AccessBlock.from_accesses(buffer)
            buffer.clear()
    if buffer:
        yield AccessBlock.from_accesses(buffer)


def whole_trace_block(trace) -> AccessBlock | None:
    """Pack an all-scalar list trace into one block, or ``None``.

    The fast-path twin of an unchunked ``accesses_to_blocks`` for the
    common case — a materialised list of :class:`Access` — it skips
    the per-item buffering loop and columnarises directly. The type
    scan (one C-level pass) keeps the semantics exact: any list that
    mixes in blocks or duck-typed accesses returns ``None`` and the
    caller falls back to the generic adapter, preserving per-block run
    boundaries.
    """
    if (type(trace) is not list or not trace
            or set(map(type, trace)) != {Access}):
        return None
    return AccessBlock.from_accesses(trace)


class _BlockCursor:
    """Pull-based cursor over one trace, normalised to block views.

    Scalar :class:`Access` items are tolerated (wrapped as one-row
    blocks) so the block-aware combinators accept mixed traces.
    """

    __slots__ = ("_iterator", "block", "pos", "done")

    def __init__(self, trace, first=None) -> None:
        self._iterator = iter(trace)
        self.block: AccessBlock | None = None
        self.pos = 0
        self.done = False
        if first is not None:
            self._install(first)

    def _install(self, item) -> None:
        if type(item) is not AccessBlock:
            item = AccessBlock.from_accesses([item])
        self.block = item
        self.pos = 0

    def buffered(self) -> int:
        """Rows left in the current block (0 means a refill is due)."""
        if self.block is None:
            return 0
        return len(self.block) - self.pos

    def refill(self) -> bool:
        """Ensure at least one buffered row; False once exhausted."""
        while self.buffered() == 0:
            if self.done:
                return False
            item = next(self._iterator, None)
            if item is None:
                self.done = True
                return False
            self._install(item)
        return True

    def take(self, count: int) -> tuple[list[AccessBlock], int]:
        """Consume up to *count* rows as block views; returns how many."""
        out: list[AccessBlock] = []
        got = 0
        while got < count and self.refill():
            step = min(count - got, self.buffered())
            out.append(self.block.slice(self.pos, self.pos + step))
            self.pos += step
            got += step
        return out, got


class ShapeSegments:
    """Pull-based cursor over one trace, emitting same-shape runs.

    The consumption unit of a concurrent :class:`ClientSession`:
    :meth:`next_run` returns up to *max_ops* consecutive accesses
    sharing one shape (size, read/write, scan flag, think time) as
    ``(page_ids, nbytes, write, is_scan, think_ns, count)`` — exactly
    the signature of the pool's batched lane — or ``None`` once the
    trace is exhausted. ``page_ids`` is a plain list for coalesced
    scalar deliveries and an int64 ndarray slice for block-native
    runs (the shape values are Python scalars either way); the pool's
    ``access_run`` consumes the ndarray form directly.

    Blocks are consumed natively: one vectorised
    :meth:`AccessBlock.segment_bounds` scan per block, shape columns
    materialised to plain lists once, the id column handed out as
    zero-copy views. Scalar accesses are coalesced with the same peek
    logic as the engine's inline coalescer, and a block arriving
    mid-run flushes the scalar run first (the block is served from
    the next call). Either delivery form yields runs that concatenate
    to the elementwise-identical access sequence.
    """

    __slots__ = ("_iterator", "_pending", "_ids", "_sizes", "_writes",
                 "_scans", "_thinks", "_bounds", "_seg", "_pos",
                 "_done")

    def __init__(self, trace) -> None:
        self._iterator = iter(trace)
        self._pending: Access | None = None
        self._ids: np.ndarray | None = None
        self._sizes: list[int] | None = None
        self._writes: list[bool] | None = None
        self._scans: list[bool] | None = None
        self._thinks: list[float] | None = None
        self._bounds: list[int] | None = None
        self._seg = 0
        self._pos = 0
        self._done = False

    def _load_block(self, block: AccessBlock) -> None:
        # The id column stays an ndarray: block runs are served as
        # zero-copy slices, which the pool's block lane consumes
        # without ever materialising a Python list. Shape columns are
        # indexed once per segment, so plain lists are cheapest.
        self._ids = block.page_id
        self._sizes = block.nbytes.tolist()
        self._writes = block.write.tolist()
        self._scans = block.is_scan.tolist()
        self._thinks = block.think_ns.tolist()
        self._bounds = block.segment_bounds()
        self._seg = 1
        self._pos = 0

    def _advance(self) -> bool:
        """Pull until a scalar is pending or a block is loaded."""
        if self._pending is not None:
            return True
        while not self._done:
            item = next(self._iterator, None)
            if item is None:
                self._done = True
                return False
            if type(item) is AccessBlock:
                if len(item):
                    self._load_block(item)
                    return True
                continue
            self._pending = item
            return True
        return False

    def remaining_in_segment(self) -> int:
        """Ops left in the current block-backed same-shape segment.

        Returns 0 for scalar (coalesced) deliveries — their run length
        is unknowable without consuming — and once the trace is
        exhausted. The concurrent scheduler's quantum escalation uses
        this to size a bulk quantum without disturbing the cursor.
        """
        if self._ids is None:
            if self._pending is not None or not self._advance():
                return 0
            if self._ids is None:
                return 0
        return self._bounds[self._seg] - self._pos

    def peek_run(self, count: int):
        """View the next *count* accesses without consuming them.

        Only valid after :meth:`remaining_in_segment` returned at
        least *count*; yields ``(page_ids, nbytes, write, is_scan,
        think_ns)`` with ``page_ids`` a zero-copy slice — the shape
        the pool's escalation probe consumes.
        """
        start = self._pos
        return (self._ids[start:start + count], self._sizes[start],
                self._writes[start], self._scans[start],
                self._thinks[start])

    def next_span(self, max_ops: int):
        """Up to *max_ops* accesses of the current block, crossing
        shape-segment boundaries, as ``(ids, segs, count)``.

        ``ids`` is the block's whole id column (never sliced — the
        pool's quantum lane indexes it by segment bounds), ``segs`` a
        list of ``(start, stop, nbytes, write, is_scan, think_ns)``
        entries in trace order, and ``count`` the ops covered. Returns
        ``None`` when the cursor sits on a scalar (coalesced) delivery
        or the trace is exhausted; block boundaries cap the span, so a
        caller with budget left simply calls again. Consuming
        ``next_span`` then ``next_run`` in any interleaving walks the
        identical access sequence.
        """
        if max_ops <= 0:
            return None
        if self._ids is None and not self._advance():
            return None
        ids = self._ids
        if ids is None:
            return None
        bounds = self._bounds
        nseg = len(bounds)
        seg = self._seg
        pos = self._pos
        budget = max_ops
        segs = []
        while budget > 0:
            seg_end = bounds[seg]
            take = seg_end - pos
            if take > budget:
                take = budget
            stop = pos + take
            segs.append((pos, stop, self._sizes[pos],
                         self._writes[pos], self._scans[pos],
                         self._thinks[pos]))
            budget -= take
            pos = stop
            if stop == seg_end:
                seg += 1
                if seg >= nseg:
                    self._ids = None
                    break
        self._seg = seg
        self._pos = pos
        return ids, segs, max_ops - budget

    def next_run(self, max_ops: int):
        """The next same-shape run, capped at *max_ops* accesses."""
        if max_ops <= 0:
            return None
        if self._ids is None and not self._advance():
            return None
        ids = self._ids
        if ids is not None:
            bounds = self._bounds
            seg_end = bounds[self._seg]
            start = self._pos
            take = seg_end - start
            if take > max_ops:
                take = max_ops
            stop = start + take
            run = (ids[start:stop], self._sizes[start],
                   self._writes[start], self._scans[start],
                   self._thinks[start], take)
            if stop == seg_end:
                self._seg += 1
                if self._seg >= len(bounds):
                    self._ids = None
            self._pos = stop
            return run
        first = self._pending
        self._pending = None
        page_ids = [first.page_id]
        while len(page_ids) < max_ops:
            item = next(self._iterator, None)
            if item is None:
                self._done = True
                break
            if type(item) is AccessBlock:
                # Flush the scalar run at the delivery boundary; the
                # block is served from the next call.
                if len(item):
                    self._load_block(item)
                    break
                continue
            if (item.nbytes != first.nbytes
                    or item.write != first.write
                    or item.is_scan != first.is_scan
                    or item.think_ns != first.think_ns):
                self._pending = item
                break
            page_ids.append(item.page_id)
        return (page_ids, first.nbytes, first.write, first.is_scan,
                first.think_ns, len(page_ids))


class _BlockBuilder:
    """Accumulates block views and re-emits ~``block_ops``-row blocks."""

    __slots__ = ("_block_ops", "_chunks", "_count")

    def __init__(self, block_ops: int) -> None:
        self._block_ops = block_ops
        self._chunks: list[AccessBlock] = []
        self._count = 0

    def add(self, chunk: AccessBlock) -> None:
        if len(chunk):
            self._chunks.append(chunk)
            self._count += len(chunk)

    def full(self) -> bool:
        return self._count >= self._block_ops

    def _concatenated(self) -> AccessBlock:
        chunks = self._chunks
        if len(chunks) == 1:
            return chunks[0]
        return AccessBlock(
            page_id=np.concatenate([c.page_id for c in chunks]),
            write=np.concatenate([c.write for c in chunks]),
            is_scan=np.concatenate([c.is_scan for c in chunks]),
            nbytes=np.concatenate([c.nbytes for c in chunks]),
            think_ns=np.concatenate([c.think_ns for c in chunks]),
        )

    def drain(self, final: bool = False) -> Iterator[AccessBlock]:
        """Emit full blocks (and the remainder too when *final*)."""
        if self._count == 0 or (not final and not self.full()):
            return
        block = self._concatenated()
        total = len(block)
        emit_to = total if final else (total // self._block_ops
                                       ) * self._block_ops
        for start in range(0, emit_to, self._block_ops):
            yield block.slice(start, min(start + self._block_ops, total))
        self._chunks = [block.slice(emit_to, total)] if emit_to < total \
            else []
        self._count = total - emit_to


# -- trace combinators -------------------------------------------------------


def interleave(*traces, weights: list[int] | None = None):
    """Round-robin interleave several traces until all are exhausted.

    With *weights*, trace *i* contributes ``weights[i]`` accesses per
    round (a cheap way to mix OLTP and OLAP load at a chosen ratio).
    Scalar traces yield scalar accesses; if any input carries
    :class:`AccessBlock` chunks the result is re-emitted as blocks,
    elementwise identical to the scalar interleave of the expanded
    inputs.
    """
    iterators = [iter(trace) for trace in traces]
    if weights is None:
        weights = [1] * len(iterators)
    if len(weights) != len(iterators):
        raise ValueError("one weight per trace required")
    firsts = [next(iterator, None) for iterator in iterators]
    if any(type(first) is AccessBlock for first in firsts):
        return _interleave_blocks(iterators, firsts, weights)
    return _interleave_scalar(iterators, firsts, weights)


def _interleave_scalar(iterators, firsts, weights) -> Iterator[Access]:
    live = set(range(len(iterators)))
    first_pending = dict(enumerate(firsts))
    while live:
        for index in list(live):
            for _ in range(weights[index]):
                first = first_pending.pop(index, None)
                if first is not None:
                    yield first
                    continue
                try:
                    yield next(iterators[index])
                except StopIteration:
                    live.discard(index)
                    break


def _interleave_blocks(iterators, firsts, weights,
                       block_ops: int = BLOCK_OPS
                       ) -> Iterator[AccessBlock]:
    cursors = [_BlockCursor(iterator, first=first)
               for iterator, first in zip(iterators, firsts)]
    for index, first in enumerate(firsts):
        if first is None:
            cursors[index].done = True
    live = [index for index in range(len(cursors))]
    builder = _BlockBuilder(block_ops)
    while live:
        # Bulk path: every live trace has whole rounds buffered, so K
        # rounds are assembled with one fancy-indexed scatter per
        # trace instead of per-access Python stepping.
        rounds = min(
            (cursors[i].buffered() // weights[i]
             for i in live if weights[i] > 0),
            default=0,
        )
        if rounds >= 1 and all(weights[i] > 0 for i in live):
            row = np.cumsum([0] + [weights[i] for i in live])
            width = int(row[-1])
            total = rounds * width
            out_pid = np.empty(total, np.int64)
            out_w = np.empty(total, np.bool_)
            out_s = np.empty(total, np.bool_)
            out_nb = np.empty(total, np.int64)
            out_t = np.empty(total, np.float64)
            strides = np.arange(rounds)[:, None] * width
            for slot, index in enumerate(live):
                cursor = cursors[index]
                w = weights[index]
                src = cursor.block.slice(cursor.pos,
                                         cursor.pos + rounds * w)
                dest = (strides
                        + np.arange(row[slot], row[slot] + w)).ravel()
                out_pid[dest] = src.page_id
                out_w[dest] = src.write
                out_s[dest] = src.is_scan
                out_nb[dest] = src.nbytes
                out_t[dest] = src.think_ns
                cursor.pos += rounds * w
            builder.add(AccessBlock(out_pid, out_w, out_s, out_nb,
                                    out_t))
            yield from builder.drain()
            continue
        # Boundary path: at least one trace is mid-refill or near
        # exhaustion — step one round with scalar-identical semantics
        # (a trace that comes up short is dropped after contributing
        # its partial round, exactly like the scalar generator).
        for index in list(live):
            chunks, got = cursors[index].take(weights[index])
            for chunk in chunks:
                builder.add(chunk)
            if got < weights[index]:
                live.remove(index)
        yield from builder.drain()
    yield from builder.drain(final=True)


def take(trace, n: int):
    """The first *n* accesses of a trace (block-aware: block traces
    are truncated at access granularity and stay blocks)."""
    iterator = iter(trace)
    first = next(iterator, None)
    if first is None:
        return iter(())
    if type(first) is AccessBlock:
        return _take_blocks(_BlockCursor(iterator, first=first), n)

    def scalar() -> Iterator[Access]:
        remaining = n
        item = first
        while remaining > 0:
            yield item
            remaining -= 1
            if remaining == 0:
                return
            try:
                item = next(iterator)
            except StopIteration:
                return
    return scalar()


def _take_blocks(cursor: _BlockCursor, n: int) -> Iterator[AccessBlock]:
    remaining = n
    while remaining > 0 and cursor.refill():
        step = min(remaining, cursor.buffered())
        yield cursor.block.slice(cursor.pos, cursor.pos + step)
        cursor.pos += step
        remaining -= step


def merge_timed(*timed_traces: Iterable[tuple[float, Access]]
                ) -> Iterator[tuple[float, Access]]:
    """Merge (timestamp, access) streams by timestamp."""
    return heapq.merge(*timed_traces, key=lambda pair: pair[0])


def instrumented(trace, ctx, name: str = "trace", batch: int = 1024):
    """Pass a trace through while counting it into *ctx* metrics.

    Counters land under ``workload.<name>.*`` (accesses, writes,
    scans, bytes). Counting is batched so instrumenting a generator
    costs a few local increments per access — and one vectorised
    reduction per chunk for :class:`AccessBlock` items, which pass
    through unchanged.
    """
    metrics = ctx.metrics.scope(f"workload.{name}")
    accesses = writes = scans = nbytes = 0
    for item in trace:
        if type(item) is AccessBlock:
            n = len(item)
            if n:
                metrics.incr("accesses", n)
                metrics.incr("writes", int(np.count_nonzero(item.write)))
                metrics.incr("scans", int(np.count_nonzero(item.is_scan)))
                metrics.incr("bytes", int(item.nbytes.sum()))
            yield item
            continue
        accesses += 1
        nbytes += item.nbytes
        if item.write:
            writes += 1
        if item.is_scan:
            scans += 1
        if accesses % batch == 0:
            metrics.incr("accesses", batch)
            metrics.incr("writes", writes)
            metrics.incr("scans", scans)
            metrics.incr("bytes", nbytes)
            writes = scans = nbytes = 0
        yield item
    remainder = accesses % batch
    if remainder or writes or scans or nbytes:
        metrics.incr("accesses", remainder)
        metrics.incr("writes", writes)
        metrics.incr("scans", scans)
        metrics.incr("bytes", nbytes)
