"""Zipfian sampling.

Database access skew is classically modelled as a Zipf distribution
(YCSB uses theta ~= 0.99). :class:`ZipfGenerator` precomputes the CDF
once with numpy and then samples in O(log n) per draw (batched), which
keeps multi-million access traces fast.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class ZipfGenerator:
    """Draws ranks in [0, n) with P(rank k) proportional to 1/(k+1)^theta.

    ``theta == 0`` degenerates to uniform; larger values are more
    skewed. Ranks can be permuted (``scramble=True``) so that hot items
    are scattered across the key space, as YCSB does.
    """

    def __init__(self, n: int, theta: float = 0.99,
                 scramble: bool = False, seed: int = 42) -> None:
        if n <= 0:
            raise ConfigError(f"population size must be positive: {n}")
        if theta < 0:
            raise ConfigError(f"theta must be non-negative: {theta}")
        self.n = n
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if scramble:
            self._permutation = self._rng.permutation(n)
        else:
            self._permutation = None

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw *count* ranks as an int64 array."""
        if count < 0:
            raise ConfigError(f"cannot draw {count} samples")
        uniform = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, uniform, side="left")
        if self._permutation is not None:
            ranks = self._permutation[ranks]
        # searchsorted/permutation indexing already yield int64 on
        # 64-bit platforms; copy=False makes the cast a no-op there.
        return ranks.astype(np.int64, copy=False)

    def one(self) -> int:
        """Draw a single rank."""
        return int(self.sample(1)[0])

    def probability_of_rank(self, rank: int) -> float:
        """Exact probability mass of a rank (pre-scramble)."""
        if not 0 <= rank < self.n:
            raise ConfigError(f"rank out of range: {rank}")
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lo)

    def hot_set_mass(self, fraction: float) -> float:
        """Probability mass of the hottest *fraction* of items.

        E.g. with theta=0.99 and fraction=0.1 this is ~0.76 — the
        classic "10% of pages take ~3/4 of the traffic" shape that
        makes tiering work.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(f"fraction must be in (0,1]: {fraction}")
        k = max(1, int(self.n * fraction))
        return float(self._cdf[k - 1])
