"""A Pond-style population of cloud workloads (paper ref [31]).

Microsoft's Pond study ran 158 production workloads under CXL-like
memory latency and reported the *distribution* of slowdowns: ~26% of
workloads saw <1% penalty and another ~17% saw <5%. What differentiates
workloads is how memory-bound they are — the fraction of execution
time spent waiting on memory.

:func:`generate_population` synthesizes 158 workloads whose
memory-boundedness spans the same classes; experiment E3 then *runs*
each one against an all-DRAM and an all-CXL buffer pool and measures
the actual slowdown CDF on our engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..config import LOCAL_DRAM_LOAD_NS
from ..errors import ConfigError
from ..units import CACHE_LINE
from .traces import BLOCK_OPS, Access, AccessBlock
from .zipf import ZipfGenerator

#: Memory-boundedness classes: (population share, m_low, m_high) where
#: m is the fraction of DRAM-run time spent in memory accesses.
BOUNDEDNESS_CLASSES = [
    ("compute_bound", 0.26, 0.000, 0.007),
    ("mostly_compute", 0.17, 0.008, 0.035),
    ("balanced", 0.40, 0.040, 0.250),
    ("memory_bound", 0.17, 0.250, 0.700),
]


@dataclass(frozen=True)
class CloudWorkload:
    """One synthetic cloud workload."""

    name: str
    klass: str
    memory_share: float      # target fraction of runtime in memory
    working_set_pages: int
    theta: float
    read_ratio: float
    num_ops: int
    think_ns: float          # CPU time attributed to each access
    seed: int

    def trace(self) -> Iterator[Access]:
        """The workload's access trace."""
        zipf = ZipfGenerator(self.working_set_pages, theta=self.theta,
                             seed=self.seed)
        rng = random.Random(self.seed ^ 0xC10D)
        pages = zipf.sample(self.num_ops)
        for i in range(self.num_ops):
            yield Access(
                page_id=int(pages[i]),
                write=rng.random() >= self.read_ratio,
                think_ns=self.think_ns,
            )

    def trace_blocks(self, block_ops: int = BLOCK_OPS
                     ) -> Iterator[AccessBlock]:
        """The :meth:`trace` sequence as structure-of-arrays blocks
        (elementwise identical: same Zipf draws, same per-op write
        coin flips in the same uniform-stream order)."""
        zipf = ZipfGenerator(self.working_set_pages, theta=self.theta,
                             seed=self.seed)
        rng = random.Random(self.seed ^ 0xC10D)
        pages = zipf.sample(self.num_ops)
        draw = rng.random
        writes = np.fromiter((draw() for _ in range(self.num_ops)),
                             np.float64, self.num_ops) >= self.read_ratio
        for start in range(0, self.num_ops, block_ops):
            stop = min(start + block_ops, self.num_ops)
            n = stop - start
            yield AccessBlock(
                page_id=pages[start:stop],
                write=writes[start:stop],
                is_scan=np.zeros(n, np.bool_),
                nbytes=np.full(n, CACHE_LINE, np.int64),
                think_ns=np.full(n, self.think_ns, np.float64),
            )


def _think_time_for(memory_share: float,
                    hit_latency_ns: float = LOCAL_DRAM_LOAD_NS) -> float:
    """CPU think time per access that yields the target memory share
    when every access hits DRAM."""
    if memory_share <= 0:
        return hit_latency_ns * 10_000.0
    return hit_latency_ns * (1.0 - memory_share) / memory_share


def generate_population(count: int = 158, num_ops: int = 2_000,
                        seed: int = 7) -> list[CloudWorkload]:
    """The synthetic 158-workload population of experiment E3."""
    if count <= 0:
        raise ConfigError("population count must be positive")
    shares = [share for _n, share, _lo, _hi in BOUNDEDNESS_CLASSES]
    if abs(sum(shares) - 1.0) > 1e-9:
        raise ConfigError("class shares must sum to 1")
    rng = random.Random(seed)
    workloads: list[CloudWorkload] = []
    # Deterministic class counts that sum to `count`.
    counts = [int(round(share * count)) for share in shares]
    while sum(counts) > count:
        counts[counts.index(max(counts))] -= 1
    while sum(counts) < count:
        counts[counts.index(min(counts))] += 1
    index = 0
    for (klass, _share, m_lo, m_hi), k in zip(BOUNDEDNESS_CLASSES, counts):
        for _ in range(k):
            memory_share = rng.uniform(m_lo, m_hi)
            workloads.append(CloudWorkload(
                name=f"wl-{index:03d}",
                klass=klass,
                memory_share=memory_share,
                working_set_pages=rng.choice([2_000, 5_000, 10_000]),
                theta=rng.choice([0.0, 0.5, 0.9, 0.99]),
                read_ratio=rng.uniform(0.5, 1.0),
                num_ops=num_ops,
                think_ns=_think_time_for(memory_share),
                seed=seed * 1_000 + index,
            ))
            index += 1
    return workloads
