"""A Pond-style population of cloud workloads (paper ref [31]).

Microsoft's Pond study ran 158 production workloads under CXL-like
memory latency and reported the *distribution* of slowdowns: ~26% of
workloads saw <1% penalty and another ~17% saw <5%. What differentiates
workloads is how memory-bound they are — the fraction of execution
time spent waiting on memory.

:func:`generate_population` synthesizes 158 workloads whose
memory-boundedness spans the same classes; experiment E3 then *runs*
each one against an all-DRAM and an all-CXL buffer pool and measures
the actual slowdown CDF on our engine.

The population is generated *columnar first*: :func:`population_columns`
draws every tenant attribute as numpy columns from a single
CPython-faithful uniform stream (:mod:`.mtrand`), and
:func:`generate_population` merely materialises one ``CloudWorkload``
per row. ``repro.serving.TenantTable`` wraps the same columns without
materialising objects at all, so a million-tenant table and the
158-object population are elementwise-identical by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..config import LOCAL_DRAM_LOAD_NS
from ..errors import ConfigError
from ..units import CACHE_LINE
from .mtrand import PyRandomStream, py_random_sample
from .traces import BLOCK_OPS, Access, AccessBlock
from .zipf import ZipfGenerator

#: Memory-boundedness classes: (population share, m_low, m_high) where
#: m is the fraction of DRAM-run time spent in memory accesses.
BOUNDEDNESS_CLASSES = [
    ("compute_bound", 0.26, 0.000, 0.007),
    ("mostly_compute", 0.17, 0.008, 0.035),
    ("balanced", 0.40, 0.040, 0.250),
    ("memory_bound", 0.17, 0.250, 0.700),
]

#: Working-set and skew menus every tenant draws from.
WORKING_SET_CHOICES = (2_000, 5_000, 10_000)
THETA_CHOICES = (0.0, 0.5, 0.9, 0.99)


@dataclass(frozen=True)
class CloudWorkload:
    """One synthetic cloud workload."""

    name: str
    klass: str
    memory_share: float      # target fraction of runtime in memory
    working_set_pages: int
    theta: float
    read_ratio: float
    num_ops: int
    think_ns: float          # CPU time attributed to each access
    seed: int

    def trace(self) -> Iterator[Access]:
        """The workload's access trace."""
        zipf = ZipfGenerator(self.working_set_pages, theta=self.theta,
                             seed=self.seed)
        rng = random.Random(self.seed ^ 0xC10D)
        pages = zipf.sample(self.num_ops)
        for i in range(self.num_ops):
            yield Access(
                page_id=int(pages[i]),
                write=rng.random() >= self.read_ratio,
                think_ns=self.think_ns,
            )

    def trace_blocks(self, block_ops: int = BLOCK_OPS
                     ) -> Iterator[AccessBlock]:
        """The :meth:`trace` sequence as structure-of-arrays blocks
        (elementwise identical: same Zipf draws, same per-op write
        coin flips in the same uniform-stream order)."""
        zipf = ZipfGenerator(self.working_set_pages, theta=self.theta,
                             seed=self.seed)
        pages = zipf.sample(self.num_ops)
        # One bulk draw of the exact random.Random(seed ^ 0xC10D)
        # uniform stream the scalar trace() consumes per op.
        writes = (py_random_sample(self.seed ^ 0xC10D, self.num_ops)
                  >= self.read_ratio)
        for start in range(0, self.num_ops, block_ops):
            stop = min(start + block_ops, self.num_ops)
            n = stop - start
            yield AccessBlock(
                page_id=pages[start:stop],
                write=writes[start:stop],
                is_scan=np.zeros(n, np.bool_),
                nbytes=np.full(n, CACHE_LINE, np.int64),
                think_ns=np.full(n, self.think_ns, np.float64),
            )


def _think_time_for(memory_share: float,
                    hit_latency_ns: float = LOCAL_DRAM_LOAD_NS) -> float:
    """CPU think time per access that yields the target memory share
    when every access hits DRAM."""
    if memory_share <= 0:
        return hit_latency_ns * 10_000.0
    return hit_latency_ns * (1.0 - memory_share) / memory_share


def class_counts(count: int) -> list[int]:
    """Deterministic per-class tenant counts summing to *count*.

    A single largest-remainder pass: every class gets the floor of its
    exact share, then the classes with the largest fractional
    remainders (ties broken by class order) absorb the leftover seats.
    """
    if count <= 0:
        raise ConfigError("population count must be positive")
    shares = [share for _n, share, _lo, _hi in BOUNDEDNESS_CLASSES]
    if abs(sum(shares) - 1.0) > 1e-9:
        raise ConfigError("class shares must sum to 1")
    exact = [share * count for share in shares]
    counts = [int(e) for e in exact]
    leftover = count - sum(counts)
    by_remainder = sorted(range(len(shares)),
                          key=lambda i: (-(exact[i] - counts[i]), i))
    for i in by_remainder[:leftover]:
        counts[i] += 1
    return counts


def population_columns(count: int = 158, num_ops: int = 2_000,
                       seed: int = 7) -> dict[str, np.ndarray]:
    """The Pond population as parallel numpy columns.

    All randomness comes from one CPython-faithful uniform stream
    (:class:`.mtrand.PyRandomStream`), drawn column-major: one bulk
    draw per attribute across the whole population. Tenant *i* of a
    1e6-row table therefore has exactly the attributes tenant *i* of a
    1e6-object :func:`generate_population` would have.

    Columns: ``klass`` (int8 index into :data:`BOUNDEDNESS_CLASSES`),
    ``memory_share``, ``working_set_pages``, ``theta``, ``read_ratio``,
    ``num_ops``, ``think_ns``, ``seed``.
    """
    if num_ops <= 0:
        raise ConfigError("num_ops must be positive")
    counts = class_counts(count)
    klass = np.repeat(np.arange(len(counts), dtype=np.int8),
                      np.asarray(counts, dtype=np.int64))

    stream = PyRandomStream(seed)
    u_share = stream.sample(count)
    u_ws = stream.sample(count)
    u_theta = stream.sample(count)
    u_rr = stream.sample(count)

    lo = np.array([lo for _n, _s, lo, _hi in BOUNDEDNESS_CLASSES])
    hi = np.array([hi for _n, _s, _lo, hi in BOUNDEDNESS_CLASSES])
    memory_share = lo[klass] + (hi[klass] - lo[klass]) * u_share

    working_set = np.array(WORKING_SET_CHOICES, dtype=np.int64)[
        (u_ws * len(WORKING_SET_CHOICES)).astype(np.int64)]
    theta = np.array(THETA_CHOICES, dtype=np.float64)[
        (u_theta * len(THETA_CHOICES)).astype(np.int64)]
    read_ratio = 0.5 + 0.5 * u_rr

    think_ns = np.full(count, LOCAL_DRAM_LOAD_NS * 10_000.0)
    np.divide(LOCAL_DRAM_LOAD_NS * (1.0 - memory_share), memory_share,
              out=think_ns, where=memory_share > 0)

    return {
        "klass": klass,
        "memory_share": memory_share,
        "working_set_pages": working_set,
        "theta": theta,
        "read_ratio": read_ratio,
        "num_ops": np.full(count, num_ops, dtype=np.int64),
        "think_ns": think_ns,
        "seed": seed * 1_000 + np.arange(count, dtype=np.int64),
    }


def generate_population(count: int = 158, num_ops: int = 2_000,
                        seed: int = 7) -> list[CloudWorkload]:
    """The synthetic 158-workload population of experiment E3.

    One ``CloudWorkload`` per row of :func:`population_columns` — the
    object-per-tenant view of the same columnar draws.
    """
    cols = population_columns(count, num_ops=num_ops, seed=seed)
    names = [name for name, _s, _lo, _hi in BOUNDEDNESS_CLASSES]
    return [
        CloudWorkload(
            name=f"wl-{index:03d}",
            klass=names[k],
            memory_share=m,
            working_set_pages=ws,
            theta=t,
            read_ratio=rr,
            num_ops=n,
            think_ns=think,
            seed=s,
        )
        for index, (k, m, ws, t, rr, n, think, s) in enumerate(zip(
            cols["klass"].tolist(),
            cols["memory_share"].tolist(),
            cols["working_set_pages"].tolist(),
            cols["theta"].tolist(),
            cols["read_ratio"].tolist(),
            cols["num_ops"].tolist(),
            cols["think_ns"].tolist(),
            cols["seed"].tolist(),
        ))
    ]
