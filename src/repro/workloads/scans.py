"""Analytical scan traces and mixed HTAP workloads.

Sequential scans are the canonical OLAP access pattern and the
canonical enemy of an LRU buffer pool. The HTAP mix interleaves a
Zipfian OLTP stream with repeated table scans to reproduce the
interference scenario Sec 3.1 argues CXL placement can eliminate.

Each generator has a block-emitting twin (``scan_blocks``,
``mixed_htap_blocks``) producing the elementwise-identical sequence
as :class:`AccessBlock` chunks.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ConfigError
from ..units import PAGE_SIZE
from .traces import BLOCK_OPS, Access, AccessBlock, interleave
from .ycsb import YCSBConfig, ycsb_blocks, ycsb_trace


def scan_trace(first_page: int, num_pages: int, repeats: int = 1,
               write: bool = False, think_ns: float = 50.0
               ) -> Iterator[Access]:
    """Sweep ``[first_page, first_page + num_pages)`` *repeats* times,
    touching full pages, flagged as scan accesses."""
    if num_pages <= 0 or repeats <= 0:
        raise ConfigError("num_pages and repeats must be positive")
    for _round in range(repeats):
        for offset in range(num_pages):
            yield Access(
                page_id=first_page + offset,
                write=write,
                is_scan=True,
                nbytes=PAGE_SIZE,
                think_ns=think_ns,
            )


def scan_blocks(first_page: int, num_pages: int, repeats: int = 1,
                write: bool = False, think_ns: float = 50.0,
                block_ops: int = BLOCK_OPS) -> Iterator[AccessBlock]:
    """The :func:`scan_trace` sequence as structure-of-arrays blocks.

    One sweep's columns are built once with ``arange``/``full`` and
    re-emitted as views every round — a scan is the best case for the
    columnar pipeline (single shape, maximal runs).
    """
    if num_pages <= 0 or repeats <= 0:
        raise ConfigError("num_pages and repeats must be positive")
    sweep = AccessBlock(
        page_id=np.arange(first_page, first_page + num_pages,
                          dtype=np.int64),
        write=np.full(num_pages, write, np.bool_),
        is_scan=np.ones(num_pages, np.bool_),
        nbytes=np.full(num_pages, PAGE_SIZE, np.int64),
        think_ns=np.full(num_pages, think_ns, np.float64),
    )
    for _round in range(repeats):
        for start in range(0, num_pages, block_ops):
            yield sweep.slice(start, min(start + block_ops, num_pages))


def mixed_htap_trace(
    oltp_pages: int = 20_000,
    olap_pages: int = 50_000,
    oltp_ops: int = 50_000,
    olap_repeats: int = 2,
    oltp_per_olap: int = 4,
    theta: float = 0.99,
    seed: int = 42,
) -> Iterator[Access]:
    """An HTAP mix: Zipfian point traffic on pages ``[0, oltp_pages)``
    interleaved with scans over ``[oltp_pages, oltp_pages+olap_pages)``.

    ``oltp_per_olap`` controls the interleave ratio (OLTP accesses per
    scan access), i.e. how aggressive the analytical side is.
    """
    oltp = ycsb_trace(YCSBConfig(
        mix="A", num_pages=oltp_pages, num_ops=oltp_ops,
        theta=theta, seed=seed,
    ))
    olap = scan_trace(
        first_page=oltp_pages, num_pages=olap_pages, repeats=olap_repeats
    )
    return interleave(oltp, olap, weights=[oltp_per_olap, 1])


def mixed_htap_blocks(
    oltp_pages: int = 20_000,
    olap_pages: int = 50_000,
    oltp_ops: int = 50_000,
    olap_repeats: int = 2,
    oltp_per_olap: int = 4,
    theta: float = 0.99,
    seed: int = 42,
    block_ops: int = BLOCK_OPS,
) -> Iterator[AccessBlock]:
    """The :func:`mixed_htap_trace` sequence as blocks.

    Both sides generate blocks and the block-aware
    :func:`~repro.workloads.traces.interleave` re-chunks the mixed
    stream, elementwise identical to the scalar interleave.
    """
    oltp = ycsb_blocks(YCSBConfig(
        mix="A", num_pages=oltp_pages, num_ops=oltp_ops,
        theta=theta, seed=seed,
    ), block_ops=block_ops)
    olap = scan_blocks(
        first_page=oltp_pages, num_pages=olap_pages,
        repeats=olap_repeats, block_ops=block_ops,
    )
    return interleave(oltp, olap, weights=[oltp_per_olap, 1])
