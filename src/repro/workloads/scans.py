"""Analytical scan traces and mixed HTAP workloads.

Sequential scans are the canonical OLAP access pattern and the
canonical enemy of an LRU buffer pool. The HTAP mix interleaves a
Zipfian OLTP stream with repeated table scans to reproduce the
interference scenario Sec 3.1 argues CXL placement can eliminate.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ConfigError
from ..units import PAGE_SIZE
from .traces import Access, interleave
from .ycsb import YCSBConfig, ycsb_trace


def scan_trace(first_page: int, num_pages: int, repeats: int = 1,
               write: bool = False, think_ns: float = 50.0
               ) -> Iterator[Access]:
    """Sweep ``[first_page, first_page + num_pages)`` *repeats* times,
    touching full pages, flagged as scan accesses."""
    if num_pages <= 0 or repeats <= 0:
        raise ConfigError("num_pages and repeats must be positive")
    for _round in range(repeats):
        for offset in range(num_pages):
            yield Access(
                page_id=first_page + offset,
                write=write,
                is_scan=True,
                nbytes=PAGE_SIZE,
                think_ns=think_ns,
            )


def mixed_htap_trace(
    oltp_pages: int = 20_000,
    olap_pages: int = 50_000,
    oltp_ops: int = 50_000,
    olap_repeats: int = 2,
    oltp_per_olap: int = 4,
    theta: float = 0.99,
    seed: int = 42,
) -> Iterator[Access]:
    """An HTAP mix: Zipfian point traffic on pages ``[0, oltp_pages)``
    interleaved with scans over ``[oltp_pages, oltp_pages+olap_pages)``.

    ``oltp_per_olap`` controls the interleave ratio (OLTP accesses per
    scan access), i.e. how aggressive the analytical side is.
    """
    oltp = ycsb_trace(YCSBConfig(
        mix="A", num_pages=oltp_pages, num_ops=oltp_ops,
        theta=theta, seed=seed,
    ))
    olap = scan_trace(
        first_page=oltp_pages, num_pages=olap_pages, repeats=olap_repeats
    )
    return interleave(oltp, olap, weights=[oltp_per_olap, 1])
