"""Trace persistence and analysis.

Real tiering studies run on captured traces. This module round-trips
:class:`~repro.workloads.traces.Access` streams through a compact
numpy container (`.npz`) and computes the summary statistics that
decide whether tiering will work on a trace: footprint, read ratio,
scan share, and the hot-set concentration curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..errors import ConfigError
from .traces import Access


def save_trace(path: str | Path, trace: Iterable[Access]) -> int:
    """Serialize a trace to *path* (.npz). Returns accesses written."""
    page_ids, writes, scans, nbytes, thinks = [], [], [], [], []
    for access in trace:
        page_ids.append(access.page_id)
        writes.append(access.write)
        scans.append(access.is_scan)
        nbytes.append(access.nbytes)
        thinks.append(access.think_ns)
    if not page_ids:
        raise ConfigError("refusing to save an empty trace")
    np.savez_compressed(
        Path(path),
        page_id=np.asarray(page_ids, dtype=np.int64),
        write=np.asarray(writes, dtype=bool),
        is_scan=np.asarray(scans, dtype=bool),
        nbytes=np.asarray(nbytes, dtype=np.int32),
        think_ns=np.asarray(thinks, dtype=np.float64),
    )
    return len(page_ids)


def load_trace(path: str | Path) -> Iterator[Access]:
    """Stream a trace back from *path*."""
    with np.load(Path(path)) as data:
        page_ids = data["page_id"]
        writes = data["write"]
        scans = data["is_scan"]
        nbytes = data["nbytes"]
        thinks = data["think_ns"]
    for i in range(len(page_ids)):
        yield Access(
            page_id=int(page_ids[i]),
            write=bool(writes[i]),
            is_scan=bool(scans[i]),
            nbytes=int(nbytes[i]),
            think_ns=float(thinks[i]),
        )


@dataclass(frozen=True)
class TraceProfile:
    """Summary statistics of one trace."""

    accesses: int
    footprint_pages: int
    read_ratio: float
    scan_share: float
    bytes_touched: int
    #: Fraction of accesses absorbed by the hottest 1% / 10% of pages.
    hot_1pct_share: float
    hot_10pct_share: float

    @property
    def tierable(self) -> bool:
        """A rough go/no-go for tiering: enough skew that a small
        fast tier can absorb most traffic."""
        return self.hot_10pct_share > 0.4


def profile_trace(trace: Iterable[Access]) -> TraceProfile:
    """Single-pass trace profiling."""
    counts: dict[int, int] = {}
    accesses = 0
    reads = 0
    scans = 0
    bytes_touched = 0
    for access in trace:
        accesses += 1
        counts[access.page_id] = counts.get(access.page_id, 0) + 1
        if not access.write:
            reads += 1
        if access.is_scan:
            scans += 1
        bytes_touched += access.nbytes
    if accesses == 0:
        raise ConfigError("cannot profile an empty trace")
    by_heat = sorted(counts.values(), reverse=True)
    footprint = len(by_heat)

    def hot_share(fraction: float) -> float:
        k = max(1, int(footprint * fraction))
        return sum(by_heat[:k]) / accesses

    return TraceProfile(
        accesses=accesses,
        footprint_pages=footprint,
        read_ratio=reads / accesses,
        scan_share=scans / accesses,
        bytes_touched=bytes_touched,
        hot_1pct_share=hot_share(0.01),
        hot_10pct_share=hot_share(0.10),
    )
