"""Bulk numpy draws bit-identical to CPython ``random.Random`` streams.

CPython's ``random.Random(seed)`` and numpy's legacy ``RandomState``
both run MT19937 and both derive doubles with the same 53-bit
``(a >> 5) * 2**26 + (b >> 6)) / 2**53`` recipe — but they *seed*
differently: CPython feeds ``init_by_array`` the little-endian 32-bit
words of ``abs(seed)``, while ``RandomState(seed)`` hashes scalar seeds
through a different path. Re-implementing ``init_by_array`` here and
installing the resulting state into a blank ``RandomState`` makes
``random_sample(n)`` reproduce ``[random.Random(seed).random() ...]``
bit for bit, which lets trace generators replace per-op Python RNG
calls with one vectorised draw without changing a single bit of
simulated output.
"""

from __future__ import annotations

import numpy as np

_N = 624  # MT19937 state words


def mt19937_state(seed: int) -> np.ndarray:
    """The MT19937 state vector ``random.Random(seed)`` starts from.

    Mirrors CPython's ``random_seed``: the key is the little-endian
    32-bit decomposition of ``abs(seed)`` fed to Matsumoto–Nishimura
    ``init_by_array``.
    """
    value = abs(int(seed))
    key = [0] if value == 0 else []
    while value:
        key.append(value & 0xFFFFFFFF)
        value >>= 32

    mt = [0] * _N
    mt[0] = 19650218
    for i in range(1, _N):
        mt[i] = (1812433253 * (mt[i - 1] ^ (mt[i - 1] >> 30)) + i) & 0xFFFFFFFF
    i, j = 1, 0
    for _ in range(max(_N, len(key))):
        mt[i] = ((mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1664525))
                 + key[j] + j) & 0xFFFFFFFF
        i += 1
        j += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
        if j >= len(key):
            j = 0
    for _ in range(_N - 1):
        mt[i] = ((mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1566083941))
                 - i) & 0xFFFFFFFF
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    mt[0] = 0x80000000
    return np.array(mt, dtype=np.uint32)


class PyRandomStream:
    """A numpy view onto the ``random.Random(seed)`` uniform stream.

    Consecutive :meth:`sample` calls continue the stream exactly where
    the previous call stopped, so ``stream.sample(3)`` followed by
    ``stream.sample(2)`` equals five scalar ``rng.random()`` calls.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._state = np.random.RandomState()
        self._state.set_state(("MT19937", mt19937_state(seed), _N, 0, 0.0))

    def sample(self, n: int) -> np.ndarray:
        """The next *n* doubles of the stream as a float64 array."""
        if n < 0:
            raise ValueError("sample size must be non-negative")
        return self._state.random_sample(int(n))


def py_random_sample(seed: int, n: int) -> np.ndarray:
    """``[random.Random(seed).random() for _ in range(n)]`` as one draw."""
    return PyRandomStream(seed).sample(n)
