"""Streaming statistics and histograms.

Simulations produce millions of latency samples; these helpers keep
constant-memory summaries (Welford mean/variance, log-bucketed
histograms with percentile queries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def percentile(samples: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of a sample list, linear interpolation."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    # a + f*(b-a) is exact when a == b (unlike a*(1-f) + b*f).
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


@dataclass
class StreamingStats:
    """Constant-memory count/mean/variance/min/max (Welford)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    total: float = 0.0

    def add(self, x: float) -> None:
        """Fold one sample in."""
        self.count += 1
        self.total += x
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def variance(self) -> float:
        """Population variance of the samples seen."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "StreamingStats") -> None:
        """Fold another summary in (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n1, n2 = self.count, other.count
        delta = other.mean - self.mean
        total_n = n1 + n2
        self._m2 += other._m2 + delta * delta * n1 * n2 / total_n
        self.mean += delta * n2 / total_n
        self.count = total_n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


@dataclass
class Histogram:
    """Log-bucketed histogram over positive values with percentiles.

    Buckets grow geometrically from ``base`` by ``growth`` per bucket,
    which keeps relative error bounded (~ ``growth - 1``) across many
    orders of magnitude — appropriate for latencies spanning 80 ns DRAM
    hits to multi-ms disk faults.
    """

    base: float = 1.0
    growth: float = 1.25
    _buckets: dict[int, int] = field(default_factory=dict)
    stats: StreamingStats = field(default_factory=StreamingStats)

    def add(self, x: float) -> None:
        """Record one positive sample."""
        if x <= 0:
            raise ValueError(f"histogram samples must be positive, got {x}")
        self.stats.add(x)
        idx = int(math.floor(math.log(x / self.base, self.growth))) \
            if x >= self.base else -1
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self.stats.count

    def quantile(self, q: float) -> float:
        """Approximate *q*-quantile (bucket upper-bound estimate)."""
        if self.count == 0:
            raise ValueError("quantile of empty histogram")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        target = q * self.count
        seen = 0
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= target:
                return self.base * self.growth ** (idx + 1)
        return self.stats.max

    def __len__(self) -> int:
        return self.count
