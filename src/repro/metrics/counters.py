"""Flat counter facade (legacy API).

:class:`CounterRegistry` predates the hierarchical
:class:`~repro.metrics.registry.MetricsRegistry` and is kept as a thin
flat-namespace facade over one, so old call sites and tests keep
working while all accounting lives in a single implementation. New
code should use :class:`~repro.metrics.registry.MetricsRegistry`
(usually via :class:`repro.sim.context.SimContext`).
"""

from __future__ import annotations

from .registry import MetricsRegistry


class CounterRegistry:
    """A flat namespace of integer counters over a MetricsRegistry."""

    __slots__ = ("_registry",)

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None \
            else MetricsRegistry()

    @property
    def registry(self) -> MetricsRegistry:
        """The backing hierarchical registry."""
        return self._registry

    def incr(self, name: str, by: int = 1) -> int:
        """Increment a counter; returns the new value."""
        return int(self._registry.incr(name, by))

    def get(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        return int(self._registry.get(name))

    def reset(self, name: str | None = None) -> None:
        """Zero one counter, or all of them."""
        self._registry.reset(name)

    def snapshot(self) -> dict[str, int]:
        """A copy of every counter (flat)."""
        return {k: int(v) for k, v in
                self._registry.counters_flat().items()}

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._registry.counters_flat()

    def __repr__(self) -> str:
        return f"CounterRegistry({self.snapshot()!r})"
