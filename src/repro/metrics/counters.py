"""Named counter registry shared by engine components."""

from __future__ import annotations

from collections import defaultdict


class CounterRegistry:
    """A flat namespace of integer counters."""

    def __init__(self) -> None:
        self._counters: defaultdict[str, int] = defaultdict(int)

    def incr(self, name: str, by: int = 1) -> int:
        """Increment a counter; returns the new value."""
        self._counters[name] += by
        return self._counters[name]

    def get(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        return self._counters.get(name, 0)

    def reset(self, name: str | None = None) -> None:
        """Zero one counter, or all of them."""
        if name is None:
            self._counters.clear()
        else:
            self._counters.pop(name, None)

    def snapshot(self) -> dict[str, int]:
        """A copy of every counter."""
        return dict(self._counters)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __repr__(self) -> str:
        return f"CounterRegistry({dict(self._counters)!r})"
