"""Measurement utilities: streaming statistics, histograms, reports.

The hierarchical :class:`MetricsRegistry` is the accounting half of
the :class:`repro.sim.context.SimContext` instrumentation spine;
:class:`CounterRegistry` is its legacy flat facade.
"""

from .counters import CounterRegistry
from .registry import (
    MetricsRegistry,
    ScopedMetrics,
    SnapshotProvider,
    flatten,
    nest,
)
from .report import Table, fmt_ratio, latency_breakdown, metrics_table
from .stats import Histogram, StreamingStats, percentile

__all__ = [
    "CounterRegistry",
    "Histogram",
    "MetricsRegistry",
    "ScopedMetrics",
    "SnapshotProvider",
    "StreamingStats",
    "Table",
    "flatten",
    "fmt_ratio",
    "latency_breakdown",
    "metrics_table",
    "nest",
    "percentile",
]
