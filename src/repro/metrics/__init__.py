"""Measurement utilities: streaming statistics, histograms, reports."""

from .counters import CounterRegistry
from .report import Table, fmt_ratio
from .stats import Histogram, StreamingStats, percentile

__all__ = [
    "CounterRegistry",
    "Histogram",
    "StreamingStats",
    "Table",
    "fmt_ratio",
    "percentile",
]
