"""Hierarchical metrics: namespaced counters, gauges, and histograms.

:class:`MetricsRegistry` is the accounting half of the instrumentation
spine (:mod:`repro.sim.context`). Instruments are addressed by dotted
names (``"device.dram0.loads"``); :meth:`MetricsRegistry.snapshot`
returns them as a nested dict, so one engine run can be inspected as::

    {"device": {"dram0": {"loads": 812, ...}}, "pool": {...}, ...}

Components that already keep their own stats dataclass do not copy
counters into the registry on the hot path — they *register* as a
snapshot provider (any object with a ``snapshot() -> dict`` method)
and are folded in lazily when a snapshot is taken. This keeps the
per-access cost of metrics at zero while still producing one unified
report.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from .stats import Histogram


@runtime_checkable
class SnapshotProvider(Protocol):
    """Anything that can report its state as a flat-ish dict."""

    def snapshot(self) -> dict:
        """Current state as a (possibly nested) dict of plain values."""
        ...  # pragma: no cover


def nest(flat: dict[str, Any]) -> dict[str, Any]:
    """Fold a dotted-name flat dict into a nested dict.

    A name that is both a leaf and a prefix keeps its leaf value under
    the reserved key ``"_"`` (e.g. ``{"a": 1, "a.b": 2}`` becomes
    ``{"a": {"_": 1, "b": 2}}``).
    """
    tree: dict[str, Any] = {}
    for name, value in flat.items():
        node = tree
        parts = name.split(".")
        for part in parts[:-1]:
            child = node.get(part)
            if not isinstance(child, dict):
                fresh: dict[str, Any] = {}
                if part in node:
                    fresh["_"] = node[part]
                node[part] = fresh
                child = fresh
            node = child
        leaf = parts[-1]
        if isinstance(node.get(leaf), dict):
            node[leaf]["_"] = value
        else:
            node[leaf] = value
    return tree


def flatten(tree: dict[str, Any], prefix: str = "") -> dict[str, Any]:
    """Inverse of :func:`nest`: nested dict -> dotted flat dict."""
    flat: dict[str, Any] = {}
    for key, value in tree.items():
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten(value, name))
        else:
            flat[name] = value
    return flat


def _histogram_summary(hist: Histogram) -> dict[str, float]:
    stats = hist.stats
    if stats.count == 0:
        return {"count": 0}
    return {
        "count": stats.count,
        "total": stats.total,
        "mean": stats.mean,
        "min": stats.min,
        "max": stats.max,
        "p50": hist.quantile(0.50),
        "p95": hist.quantile(0.95),
        "p99": hist.quantile(0.99),
    }


class MetricsRegistry:
    """Namespaced counters + gauges + histograms + snapshot providers."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_providers")

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, Any] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: dict[str, SnapshotProvider] = {}

    # -- counters ------------------------------------------------------

    def incr(self, name: str, by: float = 1) -> float:
        """Increment a counter; returns the new value."""
        value = self._counters.get(name, 0) + by
        self._counters[name] = value
        return value

    def get(self, name: str) -> float:
        """Current value of a counter (0 if never touched)."""
        return self._counters.get(name, 0)

    # -- gauges --------------------------------------------------------

    def set_gauge(self, name: str, value: Any) -> None:
        """Set a gauge to a value, or to a zero-arg callable that is
        resolved at snapshot time (a *live* gauge)."""
        self._gauges[name] = value

    def gauge(self, name: str) -> Any:
        """Resolved current value of a gauge (None if unset)."""
        value = self._gauges.get(name)
        return value() if callable(value) else value

    # -- histograms ----------------------------------------------------

    def histogram(self, name: str, base: float = 1.0,
                  growth: float = 1.25) -> Histogram:
        """Get-or-create the histogram registered under *name*."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(base=base, growth=growth)
            self._histograms[name] = hist
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram *name*."""
        self.histogram(name).add(value)

    # -- providers -----------------------------------------------------

    def register(self, namespace: str, provider: SnapshotProvider) -> str:
        """Attach a snapshot provider under *namespace*.

        If the namespace is already taken (two engines sharing one
        registry, say) a numeric suffix is appended; the namespace
        actually used is returned.
        """
        chosen = namespace
        n = 1
        while chosen in self._providers:
            if self._providers[chosen] is provider:
                return chosen
            n += 1
            chosen = f"{namespace}.{n}"
        self._providers[chosen] = provider
        return chosen

    def unregister(self, namespace: str) -> None:
        """Detach a provider (no-op if absent)."""
        self._providers.pop(namespace, None)

    # -- scoping -------------------------------------------------------

    def scope(self, prefix: str) -> "ScopedMetrics":
        """A view of this registry with every name prefixed."""
        return ScopedMetrics(self, prefix)

    # -- lifecycle -----------------------------------------------------

    def reset(self, name: str | None = None) -> None:
        """Zero one instrument, or every instrument.

        Providers stay registered — they own their state; resetting a
        registry only clears what the registry itself accumulated.
        """
        if name is None:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        else:
            self._counters.pop(name, None)
            self._gauges.pop(name, None)
            self._histograms.pop(name, None)

    # -- snapshots -----------------------------------------------------

    def counters_flat(self) -> dict[str, float]:
        """A copy of just the counters, flat."""
        return dict(self._counters)

    def flat_snapshot(self) -> dict[str, Any]:
        """Everything as one dotted-name flat dict (a copy)."""
        flat: dict[str, Any] = dict(self._counters)
        for name, value in self._gauges.items():
            flat[name] = value() if callable(value) else value
        for name, hist in self._histograms.items():
            for stat, v in _histogram_summary(hist).items():
                flat[f"{name}.{stat}"] = v
        for namespace, provider in self._providers.items():
            provided = provider.snapshot()
            for key, value in flatten(provided, namespace).items():
                flat[key] = value
        return flat

    def snapshot(self) -> dict[str, Any]:
        """Everything as a nested (hierarchical) dict — an isolated
        copy; mutating it does not touch the registry."""
        return nest(self.flat_snapshot())

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)},"
            f" gauges={len(self._gauges)},"
            f" histograms={len(self._histograms)},"
            f" providers={len(self._providers)})"
        )


class ScopedMetrics:
    """A prefixing facade over a :class:`MetricsRegistry`."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}" if self._prefix else name

    def incr(self, name: str, by: float = 1) -> float:
        """Increment a counter under this scope."""
        return self._registry.incr(self._name(name), by)

    def get(self, name: str) -> float:
        """Read a counter under this scope."""
        return self._registry.get(self._name(name))

    def set_gauge(self, name: str, value: Any) -> None:
        """Set a gauge under this scope."""
        self._registry.set_gauge(self._name(name), value)

    def observe(self, name: str, value: float) -> None:
        """Record a histogram sample under this scope."""
        self._registry.observe(self._name(name), value)

    def histogram(self, name: str, base: float = 1.0,
                  growth: float = 1.25) -> Histogram:
        """Get-or-create a histogram under this scope."""
        return self._registry.histogram(self._name(name), base, growth)

    def register(self, namespace: str, provider: SnapshotProvider) -> str:
        """Register a provider under this scope."""
        return self._registry.register(self._name(namespace), provider)

    def scope(self, prefix: str) -> "ScopedMetrics":
        """A deeper scope."""
        return ScopedMetrics(self._registry, self._name(prefix))

    def __repr__(self) -> str:
        return f"ScopedMetrics({self._prefix!r} -> {self._registry!r})"
