"""Plain-text result tables for the benchmark harness.

Every benchmark prints the rows the paper reports through a
:class:`Table`, so `pytest benchmarks/ --benchmark-only` output can be
compared to the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Sequence


def fmt_ratio(value: float) -> str:
    """Format a ratio as e.g. '1.35x'."""
    return f"{value:.2f}x"


class Table:
    """A fixed-column text table with aligned output."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self._rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        """Append one row; values are str()-formatted."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self._rows.append([_fmt(v) for v in values])

    @property
    def rows(self) -> list[list[str]]:
        """Formatted rows appended so far."""
        return [list(row) for row in self._rows]

    def render(self) -> str:
        """The table as an aligned multi-line string."""
        widths = [len(col) for col in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        header = "  ".join(
            col.ljust(widths[i]) for i, col in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table (used by benches)."""
        print()
        print(self.render())


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


# -- metrics-snapshot rendering ------------------------------------------

def latency_breakdown(snapshot: dict,
                      title: str = "virtual-time breakdown") -> Table:
    """Where the virtual nanoseconds went, per component.

    Walks a hierarchical metrics snapshot (see
    :meth:`repro.metrics.registry.MetricsRegistry.snapshot`), selects
    every time-valued leaf (``*_ns``) and renders one aligned row per
    component/metric pair, sorted by descending time so the dominant
    consumer tops the table.
    """
    from ..units import fmt_ns
    from .registry import flatten as _flatten

    rows: list[tuple[str, str, float]] = []
    for name, value in _flatten(snapshot).items():
        if not name.endswith("_ns") or not isinstance(value, (int, float)):
            continue
        if value == 0:  # zero rows are noise in a breakdown
            continue
        component, _, metric = name.rpartition(".")
        rows.append((component or "(root)", metric, float(value)))
    rows.sort(key=lambda row: -row[2])
    table = Table(title, ["component", "metric", "time"])
    for component, metric, value in rows:
        table.add_row(component, metric, fmt_ns(value))
    return table


def metrics_table(snapshot: dict, title: str = "metrics") -> Table:
    """Every leaf of a hierarchical snapshot as name/value rows."""
    from .registry import flatten as _flatten

    flat = _flatten(snapshot)
    table = Table(title, ["metric", "value"])
    for name in sorted(flat):
        table.add_row(name, flat[name])
    return table
