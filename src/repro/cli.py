"""Command-line experiment runner and sweep harness.

``python -m repro`` (or the installed ``repro`` script) runs paper
experiments and prints the paper-vs-measured tables::

    repro                 # run everything
    repro e3 e7           # run selected experiments
    repro --list          # one line per experiment, with descriptions

Declarative sweeps (the ``repro.harness`` subsystem)::

    repro sweep specs/e7_distribution.json --jobs 4 --gate
    repro sweep specs/*.json --out-dir results/sweeps

``sweep`` expands a scenario spec into a grid of cells, fans them
across worker processes (each cell in its own SimContext), serves
unchanged cells from the content-addressed result store, and — with
``--gate`` — asserts the baseline's shape invariants, exiting nonzero
on regression. See ``docs/harness.md``.

Observability (the SimContext spine)::

    repro e1 --trace-out run.trace.json   # chrome://tracing
    repro e1 --trace-out run.jsonl        # JSON lines
    repro e1 --metrics-out metrics.json   # metrics snapshot

Benchmark discovery: experiment implementations live in
``benchmarks/`` next to this repository's ``src/``. For installed
packages (no repository layout around the module) point the CLI at a
checkout's benchmarks with ``--bench-dir`` or ``REPRO_BENCH_DIR``.
"""

from __future__ import annotations

import argparse
import ast
import importlib.util
import json
import os
import sys
import time
from pathlib import Path

from .errors import ConfigError
from .metrics.registry import MetricsRegistry
from .metrics.report import latency_breakdown
from .sim.context import set_ambient
from .sim.trace import sink_for_path

#: Environment variable naming the benchmarks directory explicitly.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Experiment id -> benchmark module filename.
EXPERIMENTS: dict[str, str] = {
    "e1": "bench_e1_latency_bandwidth.py",
    "e2": "bench_e2_tpp_tiering.py",
    "e3": "bench_e3_pond_population.py",
    "e4": "bench_e4_cxl_vs_rdma.py",
    "e5": "bench_e5_memory_expansion.py",
    "e6": "bench_e6_pooling_elasticity.py",
    "e7": "bench_e7_sharing_vs_scaleout.py",
    "e8": "bench_e8_ndp_offload.py",
    "e9": "bench_e9_heterogeneous.py",
    "e10": "bench_e10_ras_failures.py",
    "f1": "bench_f1_coherency_domain.py",
    "a1": "bench_a1_ablations.py",
    "a5": "bench_a2_index_placement.py",
    "a6": "bench_a3_autoscale.py",
    "a7": "bench_a4_oltp_mechanisms.py",
    "a8": "bench_a5_morsel_scheduling.py",
    "a9": "bench_a6_memory_diversity.py",
    "a10": "bench_a7_bandwidth_interference.py",
    "a11": "bench_a8_columnar_cxl.py",
}


def find_benchmarks_dir(start: Path | None = None,
                        explicit: str | Path | None = None) -> Path | None:
    """Locate the repository's benchmarks/ directory.

    Resolution order: *explicit* (the ``--bench-dir`` flag), the
    ``REPRO_BENCH_DIR`` environment variable, then upward searches
    from this file (source checkouts) and from the current working
    directory. Explicit locations that don't contain the benchmarks
    return None rather than silently falling through — the caller
    reports what was wrong.
    """
    if explicit is None:
        explicit = os.environ.get(BENCH_DIR_ENV) or None
    if explicit is not None:
        candidate = Path(explicit).expanduser().resolve()
        return candidate if _is_bench_dir(candidate) else None
    candidates = []
    here = Path(__file__).resolve()
    candidates.extend(parent / "benchmarks" for parent in here.parents)
    cwd = (start or Path.cwd()).resolve()
    candidates.append(cwd / "benchmarks")
    candidates.extend(parent / "benchmarks" for parent in cwd.parents)
    for candidate in candidates:
        if _is_bench_dir(candidate):
            return candidate
    return None


def _is_bench_dir(path: Path) -> bool:
    return (path / EXPERIMENTS["e1"]).is_file()


def _bench_dir_error(explicit: str | None) -> str:
    """A clear, actionable discovery failure message."""
    if explicit is not None:
        return (
            f"error: --bench-dir {explicit!r} does not contain the"
            f" benchmark modules (expected {EXPERIMENTS['e1']} inside"
            " it)"
        )
    env = os.environ.get(BENCH_DIR_ENV)
    if env:
        return (
            f"error: {BENCH_DIR_ENV}={env!r} does not contain the"
            f" benchmark modules (expected {EXPERIMENTS['e1']} inside"
            " it)"
        )
    return (
        "error: could not locate the benchmarks/ directory by searching"
        f" upward from {Path(__file__).resolve().parent} and"
        f" {Path.cwd()}; run from a repository checkout, or point the"
        f" CLI at one with --bench-dir PATH or {BENCH_DIR_ENV}=PATH"
    )


def experiment_description(bench_dir: Path, exp_id: str) -> str:
    """First docstring line of a benchmark module (without importing it)."""
    path = bench_dir / EXPERIMENTS[exp_id]
    try:
        tree = ast.parse(path.read_text())
    except (OSError, SyntaxError):
        return ""
    doc = ast.get_docstring(tree) or ""
    return doc.splitlines()[0].strip() if doc else ""


def load_experiment(bench_dir: Path, exp_id: str):
    """Import a benchmark module and return its run_experiment."""
    filename = EXPERIMENTS[exp_id]
    path = bench_dir / filename
    spec = importlib.util.spec_from_file_location(
        f"repro_bench_{exp_id}", path
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.run_experiment


# ---------------------------------------------------------------------------
# repro [ids...] — the classic experiment runner.
# ---------------------------------------------------------------------------

def run_main(argv: list[str]) -> int:
    """The experiment-runner command; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the paper-reproduction experiments"
                    " (use 'repro sweep' for declarative sweeps).",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--bench-dir", metavar="PATH",
                        help="directory containing the bench_*.py"
                             f" modules (default: autodetect;"
                             f" env {BENCH_DIR_ENV})")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="record a virtual-time trace of the run"
                             " (.jsonl = JSON lines, else Chrome"
                             " trace-event JSON for chrome://tracing)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the hierarchical metrics snapshot"
                             " as JSON and print a latency breakdown")
    args = parser.parse_args(argv)

    bench_dir = find_benchmarks_dir(explicit=args.bench_dir)

    if args.list:
        for exp_id, filename in EXPERIMENTS.items():
            description = (
                experiment_description(bench_dir, exp_id)
                if bench_dir else filename
            )
            print(f"  {exp_id:<4} {description or filename}")
        return 0

    if bench_dir is None:
        print(_bench_dir_error(args.bench_dir), file=sys.stderr)
        return 2

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiments {unknown};"
              f" choose from {list(EXPERIMENTS)}", file=sys.stderr)
        return 2

    # Fail on unwritable output paths now, not after the experiments
    # have run (the Chrome sink only opens its file on close).
    for out in (args.trace_out, args.metrics_out):
        if out is None:
            continue
        parent = Path(out).resolve().parent
        if not parent.is_dir():
            print(f"error: cannot write {out}:"
                  f" no such directory {parent}", file=sys.stderr)
            return 2

    # Install the ambient instrumentation spine for the run: every
    # SimContext created without an explicit trace/metrics (i.e. every
    # engine the experiments build) picks these up.
    sink = sink_for_path(args.trace_out) if args.trace_out else None
    metrics = MetricsRegistry() if args.metrics_out else None
    previous = set_ambient(trace=sink, metrics=metrics)
    try:
        for exp_id in selected:
            run = load_experiment(bench_dir, exp_id)
            started = time.time()
            run(show=True)
            print(f"[{exp_id} done in {time.time() - started:.1f}s]")
    finally:
        set_ambient(*previous)
        if sink is not None:
            sink.close()
            print(f"[trace written to {args.trace_out}]")
        if metrics is not None:
            snapshot = metrics.snapshot()
            Path(args.metrics_out).write_text(
                json.dumps(snapshot, indent=2, sort_keys=True,
                           default=str) + "\n"
            )
            latency_breakdown(snapshot).show()
            print(f"[metrics written to {args.metrics_out}]")
    return 0


# ---------------------------------------------------------------------------
# repro sweep <spec>... — the declarative harness.
# ---------------------------------------------------------------------------

def sweep_main(argv: list[str]) -> int:
    """The sweep command; returns a process exit code.

    Exit codes: 0 all cells ok (and gate passed, if requested);
    1 failed/timed-out cells or a gate regression; 2 usage errors.
    """
    from .harness.executor import run_sweep
    from .harness.gate import check_gate, load_baseline
    from .harness.scenario import load_sweep
    from .harness.store import DEFAULT_STORE_DIR, ResultStore

    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Expand scenario sweep specs, execute the cells in"
                    " parallel, cache results, and optionally gate"
                    " them against baseline shape invariants.",
    )
    parser.add_argument("specs", nargs="+", metavar="SPEC",
                        help="sweep spec file(s), .json or .toml")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: cpu count)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="per-cell wall-time limit (default 600)")
    parser.add_argument("--gate", action="store_true",
                        help="check the sweep's baseline invariants;"
                             " exit 1 on regression")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline file overriding the spec's"
                             " 'gate' entry (implies --gate)")
    parser.add_argument("--store", metavar="DIR",
                        default=os.environ.get("REPRO_STORE_DIR",
                                               DEFAULT_STORE_DIR),
                        help="content-addressed result store"
                             " (default: %(default)s;"
                             " env REPRO_STORE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore stored results; re-simulate every"
                             " cell (fresh results are still stored)")
    parser.add_argument("--out-dir", metavar="DIR",
                        default="results/sweeps",
                        help="where sweep reports are written"
                             " (default: %(default)s)")
    parser.add_argument("--out", metavar="PATH",
                        help="explicit report path (single spec only)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    args = parser.parse_args(argv)

    if args.out and len(args.specs) > 1:
        print("error: --out works with a single spec;"
              " use --out-dir for several", file=sys.stderr)
        return 2

    store = ResultStore(args.store)
    progress = None if args.quiet else (lambda line: print(line))
    gating = args.gate or args.baseline is not None
    exit_code = 0

    for spec_arg in args.specs:
        spec_path = Path(spec_arg)
        try:
            sweep = load_sweep(spec_path)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

        print(f"== sweep {sweep.name}: {len(sweep)} cells"
              f" from {spec_path} ==")
        report = run_sweep(
            sweep,
            jobs=args.jobs,
            timeout_s=args.timeout,
            store=store,
            use_cache=not args.no_cache,
            progress=progress,
        )

        out_path = Path(args.out) if args.out else (
            Path(args.out_dir) / f"{sweep.name}.json")
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True)
            + "\n")

        counts = ", ".join(
            f"{n} {status}" for status, n in sorted(report.counts.items()))
        print(f"[{sweep.name}] {len(report.cells)} cells: {counts}"
              f" in {report.elapsed_s:.2f}s -> {out_path}")
        if report.cells and report.simulated == 0:
            print(f"[{sweep.name}] all {len(report.cells)} cells served"
                  " from cache; zero re-simulated")
        if not report.ok:
            for cell in report.cells:
                if not cell.ok:
                    print(f"[{sweep.name}] FAILED"
                          f" {cell.cell_id or '(single cell)'}:"
                          f" {cell.error}", file=sys.stderr)
            exit_code = 1

        if gating:
            try:
                baseline = _resolve_baseline(args.baseline, sweep,
                                             spec_path)
            except ConfigError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            gate_report = check_gate(report.cells, baseline)
            for outcome in gate_report.outcomes:
                print(f"[{sweep.name}] {outcome}")
            print(f"[{sweep.name}] {gate_report.summary()}")
            if not gate_report.ok:
                exit_code = 1
    return exit_code


def _resolve_baseline(override: str | None, sweep, spec_path: Path):
    """The baseline dict for a gated sweep.

    Precedence: ``--baseline PATH``, then the spec's ``gate`` entry —
    an inline invariants object, or a path resolved relative to the
    spec file's directory.
    """
    from .harness.gate import load_baseline

    if override is not None:
        return load_baseline(override)
    if sweep.gate is None:
        raise ConfigError(
            f"sweep {sweep.name!r} has no 'gate' entry in its spec;"
            " pass --baseline PATH"
        )
    if isinstance(sweep.gate, dict):
        return dict(sweep.gate)
    gate_path = Path(sweep.gate)
    if not gate_path.is_absolute():
        gate_path = spec_path.parent / gate_path
    return load_baseline(gate_path)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        if argv and argv[0] == "sweep":
            return sweep_main(argv[1:])
        if argv and argv[0] == "perfbench":
            from .perf.cli import perfbench_main
            return perfbench_main(argv[1:])
        return run_main(argv)
    except BrokenPipeError:
        # stdout went away (e.g. `repro --list | head`); exit quietly
        # without a traceback, reopening stdout so the interpreter's
        # shutdown flush cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def console_main() -> None:
    """The installed ``repro`` console script."""
    raise SystemExit(main())
