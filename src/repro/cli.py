"""Command-line experiment runner.

``python -m repro`` runs every paper experiment and prints the
paper-vs-measured tables (the same code paths the pytest-benchmark
suite exercises, without the benchmarking harness)::

    python -m repro                 # run everything
    python -m repro e3 e7           # run selected experiments
    python -m repro --list          # show what exists

Observability (the SimContext spine)::

    python -m repro e1 --trace-out run.trace.json   # chrome://tracing
    python -m repro e1 --trace-out run.jsonl        # JSON lines
    python -m repro e1 --metrics-out metrics.json   # metrics snapshot

``--trace-out`` installs an ambient trace sink for the run, so every
engine built by the selected experiments records its spans into one
file (Chrome trace-event JSON unless the path ends in ``.jsonl``).
``--metrics-out`` writes the ambient hierarchical metrics snapshot as
JSON and prints a per-component latency breakdown.

The experiment implementations live in ``benchmarks/`` next to this
repository's ``src/``; each module exposes ``run_experiment(show=...)``.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import time
from pathlib import Path

from .metrics.registry import MetricsRegistry
from .metrics.report import latency_breakdown
from .sim.context import set_ambient
from .sim.trace import sink_for_path

#: Experiment id -> benchmark module filename.
EXPERIMENTS: dict[str, str] = {
    "e1": "bench_e1_latency_bandwidth.py",
    "e2": "bench_e2_tpp_tiering.py",
    "e3": "bench_e3_pond_population.py",
    "e4": "bench_e4_cxl_vs_rdma.py",
    "e5": "bench_e5_memory_expansion.py",
    "e6": "bench_e6_pooling_elasticity.py",
    "e7": "bench_e7_sharing_vs_scaleout.py",
    "e8": "bench_e8_ndp_offload.py",
    "e9": "bench_e9_heterogeneous.py",
    "e10": "bench_e10_ras_failures.py",
    "f1": "bench_f1_coherency_domain.py",
    "a1": "bench_a1_ablations.py",
    "a5": "bench_a2_index_placement.py",
    "a6": "bench_a3_autoscale.py",
    "a7": "bench_a4_oltp_mechanisms.py",
    "a8": "bench_a5_morsel_scheduling.py",
    "a9": "bench_a6_memory_diversity.py",
    "a10": "bench_a7_bandwidth_interference.py",
    "a11": "bench_a8_columnar_cxl.py",
}


def find_benchmarks_dir(start: Path | None = None) -> Path | None:
    """Locate the repository's benchmarks/ directory.

    Searches upward from this file (source checkouts) and from the
    current working directory.
    """
    candidates = []
    here = Path(__file__).resolve()
    candidates.extend(parent / "benchmarks" for parent in here.parents)
    cwd = (start or Path.cwd()).resolve()
    candidates.append(cwd / "benchmarks")
    candidates.extend(parent / "benchmarks" for parent in cwd.parents)
    for candidate in candidates:
        if (candidate / EXPERIMENTS["e1"]).is_file():
            return candidate
    return None


def load_experiment(bench_dir: Path, exp_id: str):
    """Import a benchmark module and return its run_experiment."""
    filename = EXPERIMENTS[exp_id]
    path = bench_dir / filename
    spec = importlib.util.spec_from_file_location(
        f"repro_bench_{exp_id}", path
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.run_experiment


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper-reproduction experiments.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="record a virtual-time trace of the run"
                             " (.jsonl = JSON lines, else Chrome"
                             " trace-event JSON for chrome://tracing)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the hierarchical metrics snapshot"
                             " as JSON and print a latency breakdown")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, filename in EXPERIMENTS.items():
            print(f"  {exp_id:<4} {filename}")
        return 0

    bench_dir = find_benchmarks_dir()
    if bench_dir is None:
        print("error: could not locate the benchmarks/ directory;"
              " run from the repository root", file=sys.stderr)
        return 2

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiments {unknown};"
              f" choose from {list(EXPERIMENTS)}", file=sys.stderr)
        return 2

    # Fail on unwritable output paths now, not after the experiments
    # have run (the Chrome sink only opens its file on close).
    for out in (args.trace_out, args.metrics_out):
        if out is None:
            continue
        parent = Path(out).resolve().parent
        if not parent.is_dir():
            print(f"error: cannot write {out}:"
                  f" no such directory {parent}", file=sys.stderr)
            return 2

    # Install the ambient instrumentation spine for the run: every
    # SimContext created without an explicit trace/metrics (i.e. every
    # engine the experiments build) picks these up.
    sink = sink_for_path(args.trace_out) if args.trace_out else None
    metrics = MetricsRegistry() if args.metrics_out else None
    previous = set_ambient(trace=sink, metrics=metrics)
    try:
        for exp_id in selected:
            run = load_experiment(bench_dir, exp_id)
            started = time.time()
            run(show=True)
            print(f"[{exp_id} done in {time.time() - started:.1f}s]")
    finally:
        set_ambient(*previous)
        if sink is not None:
            sink.close()
            print(f"[trace written to {args.trace_out}]")
        if metrics is not None:
            snapshot = metrics.snapshot()
            Path(args.metrics_out).write_text(
                json.dumps(snapshot, indent=2, sort_keys=True,
                           default=str) + "\n"
            )
            latency_breakdown(snapshot).show()
            print(f"[metrics written to {args.metrics_out}]")
    return 0
