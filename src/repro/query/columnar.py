"""Columnar storage and scans.

Sec 3.1 suggests placing *specialized analytical structures* in CXL
memory — "data cubes, materialized tables, denormalized tables".
Column stores are the canonical such structure: a scan touches only
the projected columns' bytes, so the CXL bandwidth tax applies to a
fraction of the row-store traffic. :class:`ColumnTable` stores each
column in its own page range; :class:`ColumnScan` charges page
accesses per column as the scan sweeps.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..core.engine import ScaleUpEngine
from ..errors import QueryError
from ..storage.file import PageFile
from ..storage.page import PageId
from ..units import PAGE_SIZE
from .operators import CPU_EMIT_NS, CPU_FILTER_NS
from .schema import Schema


class ColumnTable:
    """A table stored column-wise over a shared page file."""

    def __init__(self, name: str, schema: Schema, pagefile: PageFile,
                 fill_factor: float = 0.9) -> None:
        if not 0.0 < fill_factor <= 1.0:
            raise QueryError(f"fill factor must be in (0,1]: {fill_factor}")
        self.name = name
        self.schema = schema
        self.pagefile = pagefile
        usable = int(PAGE_SIZE * fill_factor)
        #: Values that fit one page, per column.
        self.values_per_page = {
            col.name: max(1, usable // col.width_bytes)
            for col in schema.columns
        }
        self._columns: dict[str, list] = {c.name: [] for c in schema.columns}
        self._pages: dict[str, list[PageId]] = {
            c.name: [] for c in schema.columns
        }
        self._row_count = 0

    # -- loading -----------------------------------------------------------

    def bulk_load(self, rows) -> int:
        """Append rows, splitting values into per-column page ranges."""
        loaded = 0
        for row in rows:
            if len(row) != len(self.schema):
                raise QueryError(
                    f"{self.name}: row arity {len(row)} !="
                    f" schema arity {len(self.schema)}"
                )
            for col, value in zip(self.schema.columns, row):
                self._columns[col.name].append(value)
            loaded += 1
        self._row_count += loaded
        # (Re)materialize page ranges per column.
        for col in self.schema.columns:
            values = self._columns[col.name]
            per_page = self.values_per_page[col.name]
            pages = self._pages[col.name]
            needed = -(-len(values) // per_page) if values else 0
            while len(pages) < needed:
                pages.append(self.pagefile.allocate_page().page_id)
        return loaded

    # -- shape --------------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Rows loaded."""
        return self._row_count

    def column_pages(self, column: str) -> list[PageId]:
        """Page ids backing one column."""
        if column not in self._pages:
            raise QueryError(f"no column {column!r} in {self.name}")
        return list(self._pages[column])

    def pages_for(self, columns: list[str]) -> int:
        """Total pages a scan of *columns* must touch."""
        return sum(len(self.column_pages(c)) for c in columns)

    @property
    def total_pages(self) -> int:
        """Pages across every column."""
        return sum(len(p) for p in self._pages.values())

    def page_ids(self) -> list[PageId]:
        """All page ids of the table."""
        return [pid for pages in self._pages.values() for pid in pages]

    def values(self, column: str) -> list:
        """The raw value vector of a column (untimed)."""
        if column not in self._columns:
            raise QueryError(f"no column {column!r} in {self.name}")
        return self._columns[column]


class ColumnScan:
    """Scan of selected columns with an optional single-column filter.

    The filter column is read first (predicate pushdown); pages of the
    projected columns are charged as the scan crosses their page
    boundaries — the payoff is that unprojected columns cost nothing.
    """

    def __init__(self, table: ColumnTable, columns: list[str],
                 predicate_column: str | None = None,
                 predicate: Callable[[object], bool] | None = None
                 ) -> None:
        if (predicate is None) != (predicate_column is None):
            raise QueryError(
                "predicate and predicate_column go together"
            )
        for column in columns:
            if not table.schema.has(column):
                raise QueryError(f"no column {column!r}")
        self.table = table
        self.columns = list(columns)
        self.predicate_column = predicate_column
        self.predicate = predicate
        self._schema = table.schema.project(columns)

    @property
    def schema(self) -> Schema:
        """The projected schema."""
        return self._schema

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Sweep the selected columns, charging per-column pages."""
        table = self.table
        pool = engine.pool
        clock = pool.clock
        touched = set(self.columns)
        if self.predicate_column is not None:
            touched.add(self.predicate_column)
        # A column's page boundary passes exactly at row multiples of
        # its values-per-page, so the crossing schedule is computed up
        # front instead of re-checking every column on every row. The
        # columns crossing at one row are charged back to back with no
        # clock activity in between, which is what lets them go through
        # the pool's batched lane while staying bit-identical to the
        # old cursor-compare loop. touched_order pins one set-iteration
        # order for the whole sweep, as repeated iteration did before.
        touched_order = list(touched)
        vectors = {c: table.values(c) for c in touched}
        pages = {c: table.column_pages(c) for c in touched}
        vpp = {c: table.values_per_page[c] for c in touched_order}
        next_cross = {c: 0 for c in touched_order}
        next_any = 0
        predicate_vec = (vectors[self.predicate_column]
                         if self.predicate_column else None)
        out_vectors = [vectors[c] for c in self.columns]
        access_batch = pool.access_batch
        cpu = 0.0
        for row in range(table.row_count):
            if row == next_any:
                crossing = []
                for column in touched_order:
                    if next_cross[column] == row:
                        crossing.append(pages[column][row // vpp[column]])
                        next_cross[column] = row + vpp[column]
                access_batch(crossing, nbytes=PAGE_SIZE, is_scan=True)
                next_any = min(next_cross.values())
            if predicate_vec is not None:
                cpu += CPU_FILTER_NS
                if not self.predicate(predicate_vec[row]):
                    continue
            cpu += CPU_EMIT_NS
            if cpu >= 10_000.0:
                clock.advance(cpu)
                cpu = 0.0
            yield tuple(vec[row] for vec in out_vectors)
        clock.advance(cpu)
