"""External merge sort and sort-merge join.

The counterpart of :mod:`repro.query.hashjoin` in the paper's Sec 3.3
question — "hashing and sorting are at the core of most relational
data processing, but it is not obvious how they would work at
rack-level scale". Sorting streams sequentially (bandwidth-bound,
latency-tolerant) while hashing probes randomly (latency-bound), so
their crossover moves when work memory gets CXL latency but keeps
high bandwidth.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..core.engine import ScaleUpEngine
from ..errors import QueryError
from ..sim.interconnect import AccessPath
from .operators import CPU_EMIT_NS, Operator
from .schema import Schema

#: CPU per comparison during sorting / merging.
CPU_COMPARE_NS = 2.0
#: Merge fan-in of one external pass.
MERGE_FANIN = 64


class ExternalSort:
    """Sort by one column, spilling runs to work memory when needed."""

    def __init__(self, child: Operator, key: str,
                 work_path: AccessPath | None = None,
                 work_mem_rows: int = 1_000_000,
                 descending: bool = False) -> None:
        if work_mem_rows <= 1:
            raise QueryError("work_mem_rows must exceed one row")
        self.child = child
        self._key_idx = child.schema.index_of(key)
        self.work_path = work_path
        self.work_mem_rows = work_mem_rows
        self.descending = descending

    @property
    def schema(self) -> Schema:
        """Same schema as the child."""
        return self.child.schema

    def merge_passes(self, num_rows: int) -> int:
        """External merge passes needed for *num_rows*."""
        runs = math.ceil(max(1, num_rows) / self.work_mem_rows)
        if runs <= 1:
            return 0
        return math.ceil(math.log(runs, MERGE_FANIN))

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Sort the child's output, charging CPU and spill traffic."""
        clock = engine.pool.clock
        data = list(self.child.rows(engine))
        n = len(data)
        if n == 0:
            return
        # In-memory sort CPU: n log2(run_length) comparisons per run
        # plus merge comparisons per pass.
        run_len = min(n, self.work_mem_rows)
        cpu = n * math.log2(max(run_len, 2)) * CPU_COMPARE_NS
        passes = self.merge_passes(n)
        cpu += passes * n * math.log2(MERGE_FANIN) * CPU_COMPARE_NS
        clock.advance(cpu)
        if passes and self.work_path is not None:
            bytes_ = n * self.schema.record_width_bytes
            for _ in range(passes):
                clock.advance(self.work_path.write_time(bytes_))
                clock.advance(self.work_path.read_time(bytes_))
        data.sort(key=lambda row: row[self._key_idx],
                  reverse=self.descending)
        clock.advance(n * CPU_EMIT_NS)
        yield from data

    def estimated_cost_ns(self, num_rows: int) -> float:
        """Planner-facing cost estimate (no execution)."""
        if num_rows <= 0:
            return 0.0
        run_len = min(num_rows, self.work_mem_rows)
        cpu = num_rows * math.log2(max(run_len, 2)) * CPU_COMPARE_NS
        passes = self.merge_passes(num_rows)
        cpu += passes * num_rows * math.log2(MERGE_FANIN) * CPU_COMPARE_NS
        spill = 0.0
        if passes and self.work_path is not None:
            bytes_ = num_rows * self.schema.record_width_bytes
            spill = passes * 2 * bytes_ / self.work_path.read_bandwidth
        return cpu + spill + num_rows * CPU_EMIT_NS


class SortMergeJoin:
    """Equi-join by sorting both inputs and merging."""

    def __init__(self, left: Operator, right: Operator,
                 left_key: str, right_key: str,
                 work_path: AccessPath | None = None,
                 work_mem_rows: int = 1_000_000) -> None:
        self.left_sort = ExternalSort(left, left_key, work_path,
                                      work_mem_rows)
        self.right_sort = ExternalSort(right, right_key, work_path,
                                       work_mem_rows)
        self._left_idx = left.schema.index_of(left_key)
        self._right_idx = right.schema.index_of(right_key)
        self.work_path = work_path
        self._schema = Schema(left.schema.columns + [
            col for col in right.schema.columns
            if not left.schema.has(col.name)
        ])
        self._right_keep = [
            i for i, col in enumerate(right.schema.columns)
            if not left.schema.has(col.name)
        ]

    @property
    def schema(self) -> Schema:
        """Left columns then non-duplicate right columns."""
        return self._schema

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Sort both sides, then merge."""
        clock = engine.pool.clock
        left = list(self.left_sort.rows(engine))
        right = list(self.right_sort.rows(engine))
        clock.advance((len(left) + len(right)) * CPU_COMPARE_NS)
        i = j = 0
        emitted = 0
        while i < len(left) and j < len(right):
            lk = left[i][self._left_idx]
            rk = right[j][self._right_idx]
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                # Emit the cross product of the equal-key groups.
                j_end = j
                while j_end < len(right) and \
                        right[j_end][self._right_idx] == lk:
                    j_end += 1
                i_end = i
                while i_end < len(left) and \
                        left[i_end][self._left_idx] == lk:
                    i_end += 1
                for a in range(i, i_end):
                    left_row = left[a]
                    for b in range(j, j_end):
                        emitted += 1
                        yield left_row + tuple(
                            right[b][k] for k in self._right_keep
                        )
                i, j = i_end, j_end
        clock.advance(emitted * CPU_EMIT_NS)

    def estimated_cost_ns(self, left_rows: int, right_rows: int) -> float:
        """Planner-facing cost estimate (no execution)."""
        return (self.left_sort.estimated_cost_ns(left_rows)
                + self.right_sort.estimated_cost_ns(right_rows)
                + (left_rows + right_rows) * CPU_COMPARE_NS)
