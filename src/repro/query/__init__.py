"""A miniature relational query layer over the tiered buffer pool.

Enough machinery to reproduce the paper's analytical claims: scans,
filters, projections, aggregation, partitioned hash join, external
sort / sort-merge join, a small cost-based planner (hash-vs-sort and
NDP offload decisions), and TPC-H-shaped queries for experiment E3.
"""

from .columnar import ColumnScan, ColumnTable
from .indexjoin import IndexNestedLoopJoin
from .operators import Filter, HashAggregate, Project, TableScan
from .hashjoin import HashJoin
from .planner import JoinPlanner
from .schema import Column, Schema
from .sort import ExternalSort, SortMergeJoin
from .table import Table
from .topk import TopK

__all__ = [
    "Column",
    "ColumnScan",
    "ColumnTable",
    "ExternalSort",
    "Filter",
    "HashAggregate",
    "HashJoin",
    "IndexNestedLoopJoin",
    "JoinPlanner",
    "Project",
    "Schema",
    "SortMergeJoin",
    "Table",
    "TableScan",
    "TopK",
]
