"""Index-nested-loop join over the tier-spanning B+tree.

The OLTP-flavoured join: for each outer row, probe a
:class:`~repro.core.btree.TieredBTree` index on the inner table.
Each probe pays one buffer-pool access per tree level, so the
*index's placement* (all-DRAM, hybrid, all-CXL — Sec 3.1) directly
sets the join's cost, and the planner can trade it off against a
hash join's build cost.
"""

from __future__ import annotations

from typing import Iterator

from ..core.btree import TieredBTree
from ..core.engine import ScaleUpEngine
from ..errors import QueryError
from .operators import CPU_EMIT_NS, Operator
from .schema import Schema

#: CPU per probe (hash of key + result splice).
CPU_PROBE_NS = 4.0


class IndexNestedLoopJoin:
    """``outer JOIN inner ON outer.key == index(key)``.

    The index maps join keys to inner-row tuples whose shape is
    described by ``inner_schema``. Missing keys drop the outer row
    (inner join).
    """

    def __init__(self, outer: Operator, index: TieredBTree,
                 outer_key: str, inner_schema: Schema) -> None:
        self.outer = outer
        self.index = index
        self._outer_idx = outer.schema.index_of(outer_key)
        self.inner_schema = inner_schema
        self._inner_keep = [
            i for i, col in enumerate(inner_schema.columns)
            if not outer.schema.has(col.name)
        ]
        self._schema = Schema(outer.schema.columns + [
            col for col in inner_schema.columns
            if not outer.schema.has(col.name)
        ])

    @property
    def schema(self) -> Schema:
        """Outer columns then non-duplicate inner columns."""
        return self._schema

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Probe the index once per outer row."""
        if self.index.pool is not engine.pool:
            raise QueryError(
                "index must live in the engine's buffer pool"
            )
        clock = engine.pool.clock
        probed = 0
        emitted = 0
        for row in self.outer.rows(engine):
            probed += 1
            inner = self.index.lookup(row[self._outer_idx])
            if inner is None:
                continue
            if not isinstance(inner, tuple):
                raise QueryError(
                    "index payloads must be inner-row tuples"
                )
            emitted += 1
            yield row + tuple(inner[i] for i in self._inner_keep)
        clock.advance(probed * CPU_PROBE_NS + emitted * CPU_EMIT_NS)

    def estimated_cost_ns(self, outer_rows: int) -> float:
        """Planner estimate: probes x (tree height x level latency)."""
        # Approximate a probe by the pool's fastest-tier latency per
        # level; the executed cost reflects true placement.
        level_ns = self.index.pool.tiers[0].path.read_latency_ns()
        return outer_rows * (
            CPU_PROBE_NS + self.index.height * level_ns
        )
