"""Top-K: ORDER BY ... LIMIT k without a full sort.

TPC-H's Q3/Q10/Q18 all end in a LIMIT; a bounded heap does the job in
one pass with O(n log k) comparisons — no work-memory spill, no
sensitivity to where work memory lives. (That insensitivity is itself
a Sec 3.3 data point: operators with O(k) state are free to run
anywhere in the rack.)
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

from ..core.engine import ScaleUpEngine
from ..errors import QueryError
from .operators import CPU_EMIT_NS, Operator
from .schema import Schema
from .sort import CPU_COMPARE_NS


class TopK:
    """The *k* rows with the largest (default) or smallest key."""

    def __init__(self, child: Operator, key: str, k: int,
                 descending: bool = True) -> None:
        if k <= 0:
            raise QueryError(f"k must be positive: {k}")
        self.child = child
        self.k = k
        self.descending = descending
        self._key_idx = child.schema.index_of(key)

    @property
    def schema(self) -> Schema:
        """Same schema as the child."""
        return self.child.schema

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """One pass with a bounded heap; emits rows in key order."""
        clock = engine.pool.clock
        # Tie-break by a sequence number so rows never compare.
        counter = itertools.count()
        heap: list[tuple] = []
        seen = 0
        sign = 1.0 if self.descending else -1.0
        for row in self.child.rows(engine):
            seen += 1
            entry = (sign * self._rank(row), next(counter), row)
            if len(heap) < self.k:
                heapq.heappush(heap, entry)
            elif entry[0] > heap[0][0]:
                heapq.heapreplace(heap, entry)
        import math
        cpu = seen * CPU_COMPARE_NS * max(
            1.0, math.log2(max(self.k, 2))
        )
        clock.advance(cpu + len(heap) * CPU_EMIT_NS)
        ordered = sorted(heap, key=lambda e: (-e[0], e[1]))
        for _rank, _seq, row in ordered:
            yield row

    def _rank(self, row: tuple) -> float:
        value = row[self._key_idx]
        if isinstance(value, (int, float)):
            return float(value)
        raise QueryError(
            f"TopK key must be numeric, got {type(value).__name__}"
        )
