"""Physical operators: scan, filter, project, hash aggregation.

Operators pull rows from children and charge costs to the engine they
execute on: page accesses go through the tiered buffer pool (so data
placement matters — the whole point), CPU work is charged per row in
per-page batches to keep the interpreter overhead out of the measured
signal.
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol

from ..core.engine import ScaleUpEngine
from ..errors import QueryError
from ..sim.interconnect import AccessPath
from ..units import PAGE_SIZE
from .schema import Column, ColumnType, Schema
from .table import Table

#: CPU costs per row, in ns (calibrated to a few ops/cycle engine).
CPU_FILTER_NS = 3.0
CPU_PROJECT_NS = 1.5
CPU_AGG_NS = 5.0
CPU_EMIT_NS = 1.0

#: Rows whose aggregation state fits the CPU cache for free; beyond
#: this the hash table spills into memory and pays latency per probe.
LLC_RESIDENT_GROUPS = 4_096

#: Out-of-order CPUs keep several random loads in flight, so the
#: *effective* per-probe latency is the raw latency divided by this
#: memory-level-parallelism factor.
MEMORY_LEVEL_PARALLELISM = 4.0

Predicate = Callable[[tuple], bool]


class Operator(Protocol):
    """Interface every physical operator implements."""

    @property
    def schema(self) -> Schema:
        """Output schema."""

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Execute against an engine, yielding output rows."""


def collect(op: "Operator", engine: ScaleUpEngine
            ) -> tuple[list[tuple], float]:
    """Run an operator to completion; returns (rows, elapsed ns).

    Also the instrumentation chokepoint for the query layer: the run
    is wrapped in a trace span and accounted under the
    ``operator.<ClassName>`` metrics namespace, without touching the
    per-row loops inside the operators themselves.
    """
    ctx = engine.ctx
    name = type(op).__name__
    start = engine.pool.clock.now
    with ctx.span(f"operator:{name}", cat="query"):
        out = list(op.rows(engine))
    elapsed = engine.pool.clock.now - start
    scope = ctx.metrics.scope(f"operator.{name}")
    scope.incr("invocations")
    scope.incr("rows", len(out))
    scope.incr("total_ns", elapsed)
    if elapsed > 0:
        scope.observe("time_ns", elapsed)
    return out, elapsed


class TableScan:
    """Full scan with optional pushed-down predicate and projection."""

    def __init__(self, table: Table, predicate: Predicate | None = None,
                 projection: list[str] | None = None) -> None:
        self.table = table
        self.predicate = predicate
        self.projection = projection
        if projection is None:
            self._schema = table.schema
            self._proj_idx: list[int] | None = None
        else:
            self._schema = table.schema.project(projection)
            self._proj_idx = [table.schema.index_of(n) for n in projection]

    @property
    def schema(self) -> Schema:
        """Output schema (after projection)."""
        return self._schema

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Scan pages through the buffer pool, charging per-row CPU."""
        pool = engine.pool
        per_row_cpu = CPU_FILTER_NS if self.predicate else CPU_EMIT_NS
        # One batched call per page: rows are yielded between pages, so
        # parent operators may charge CPU mid-stream and longer runs
        # would reorder clock additions. access_batch keeps the exact
        # scalar sequence (access, then the per-page CPU charge).
        access_batch = pool.access_batch
        for page_id, records in self.table.pages():
            access_batch((page_id,), nbytes=PAGE_SIZE, is_scan=True,
                         post_ns=len(records) * per_row_cpu)
            for row in records:
                if self.predicate is not None and not self.predicate(row):
                    continue
                if self._proj_idx is not None:
                    yield tuple(row[i] for i in self._proj_idx)
                else:
                    yield row


class Filter:
    """Row filter over any child operator."""

    def __init__(self, child: Operator, predicate: Predicate) -> None:
        self.child = child
        self.predicate = predicate

    @property
    def schema(self) -> Schema:
        """Same schema as the child."""
        return self.child.schema

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Yield child rows passing the predicate."""
        clock = engine.pool.clock
        batch_cpu = 0.0
        for row in self.child.rows(engine):
            batch_cpu += CPU_FILTER_NS
            if batch_cpu >= 10_000.0:
                clock.advance(batch_cpu)
                batch_cpu = 0.0
            if self.predicate(row):
                yield row
        clock.advance(batch_cpu)


class Project:
    """Column projection over any child operator."""

    def __init__(self, child: Operator, columns: list[str]) -> None:
        self.child = child
        self._schema = child.schema.project(columns)
        self._indices = [child.schema.index_of(n) for n in columns]

    @property
    def schema(self) -> Schema:
        """The projected schema."""
        return self._schema

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Yield projected rows."""
        clock = engine.pool.clock
        batch_cpu = 0.0
        for row in self.child.rows(engine):
            batch_cpu += CPU_PROJECT_NS
            if batch_cpu >= 10_000.0:
                clock.advance(batch_cpu)
                batch_cpu = 0.0
            yield tuple(row[i] for i in self._indices)
        clock.advance(batch_cpu)


#: Supported aggregate functions.
AGG_FUNCS = {"sum", "count", "min", "max", "avg"}


class HashAggregate:
    """Group-by aggregation with a hash table in work memory.

    ``aggs`` is a list of (output name, function, input column). When
    the number of groups exceeds the cache-resident threshold and a
    ``work_path`` is given, every input row pays one work-memory
    probe latency — this is how "hashing at rack scale" (Sec 3.3)
    becomes measurably sensitive to where work memory lives.
    """

    def __init__(self, child: Operator, group_by: list[str],
                 aggs: list[tuple[str, str, str | None]],
                 work_path: AccessPath | None = None) -> None:
        for _out, func, _col in aggs:
            if func not in AGG_FUNCS:
                raise QueryError(f"unknown aggregate {func!r}")
        self.child = child
        self.group_by = group_by
        self.aggs = aggs
        self.work_path = work_path
        self._group_idx = [child.schema.index_of(n) for n in group_by]
        self._agg_idx = [
            child.schema.index_of(col) if col is not None else -1
            for _out, _func, col in aggs
        ]
        columns = [child.schema.columns[i] for i in self._group_idx]
        columns += [Column(out, ColumnType.FLOAT) for out, _f, _c in aggs]
        self._schema = Schema(columns)

    @property
    def schema(self) -> Schema:
        """Group-by columns followed by aggregate outputs."""
        return self._schema

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Consume the child fully, then emit one row per group."""
        clock = engine.pool.clock
        groups: dict[tuple, list] = {}
        input_rows = 0
        for row in self.child.rows(engine):
            input_rows += 1
            key = tuple(row[i] for i in self._group_idx)
            state = groups.get(key)
            if state is None:
                state = [self._init_state(func) for _o, func, _c in self.aggs]
                groups[key] = state
            for slot, (idx, (_out, func, _col)) in enumerate(
                    zip(self._agg_idx, self.aggs)):
                value = row[idx] if idx >= 0 else 1
                self._fold(state, slot, func, value)
        cpu = input_rows * (CPU_AGG_NS + 2.5 * len(self.aggs))
        if self.work_path is not None and \
                len(groups) > LLC_RESIDENT_GROUPS:
            cpu += input_rows * (self.work_path.timing().read_latency_ns
                                 / MEMORY_LEVEL_PARALLELISM)
        clock.advance(cpu + len(groups) * CPU_EMIT_NS)
        for key, state in groups.items():
            outs = tuple(
                self._finish(state[slot], func)
                for slot, (_out, func, _col) in enumerate(self.aggs)
            )
            yield key + outs

    @staticmethod
    def _init_state(func: str):
        if func == "min":
            return float("inf")
        if func == "max":
            return float("-inf")
        if func == "avg":
            return [0.0, 0]
        return 0.0

    @staticmethod
    def _fold(state: list, slot: int, func: str, value) -> None:
        if func in ("sum",):
            state[slot] += value
        elif func == "count":
            state[slot] += 1
        elif func == "min":
            state[slot] = min(state[slot], value)
        elif func == "max":
            state[slot] = max(state[slot], value)
        else:  # avg
            state[slot][0] += value
            state[slot][1] += 1

    @staticmethod
    def _finish(state, func: str):
        if func == "avg":
            total, count = state
            return total / count if count else 0.0
        return state
