"""A small cost-based planner for the decisions the paper raises.

Two choices are modelled:

* **hash vs sort** for a join given input cardinalities and the
  location of work memory (Sec 3.3: "accepted wisdom regarding when
  to use each one may change" at rack scale);
* **NDP offload** for a selective scan (Sec 4: which portions of
  query processing should run near the data).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ndp import NDPController
from ..errors import QueryError
from ..sim.interconnect import AccessPath
from .hashjoin import HashJoin
from .operators import Operator
from .sort import SortMergeJoin


@dataclass(frozen=True)
class JoinChoice:
    """The planner's decision and its cost estimates."""

    algorithm: str            # 'hash' or 'sort-merge'
    hash_cost_ns: float
    sort_cost_ns: float

    @property
    def advantage(self) -> float:
        """Cost ratio of the rejected plan over the chosen one."""
        best = min(self.hash_cost_ns, self.sort_cost_ns)
        worst = max(self.hash_cost_ns, self.sort_cost_ns)
        if best <= 0:
            return 1.0
        return worst / best


class JoinPlanner:
    """Chooses join algorithms from cost estimates."""

    def __init__(self, work_path: AccessPath | None = None,
                 work_mem_rows: int = 1_000_000) -> None:
        self.work_path = work_path
        self.work_mem_rows = work_mem_rows

    def choose_join(self, left: Operator, right: Operator,
                    left_key: str, right_key: str,
                    left_rows: int, right_rows: int
                    ) -> tuple[Operator, JoinChoice]:
        """Return (operator, decision) for the cheaper join algorithm."""
        if left_rows < 0 or right_rows < 0:
            raise QueryError("cardinalities must be non-negative")
        hash_join = HashJoin(left, right, left_key, right_key,
                             work_path=self.work_path,
                             work_mem_rows=self.work_mem_rows)
        sort_join = SortMergeJoin(left, right, left_key, right_key,
                                  work_path=self.work_path,
                                  work_mem_rows=self.work_mem_rows)
        hash_cost = hash_join.estimated_cost_ns(left_rows, right_rows)
        sort_cost = sort_join.estimated_cost_ns(left_rows, right_rows)
        choice = JoinChoice(
            algorithm="hash" if hash_cost <= sort_cost else "sort-merge",
            hash_cost_ns=hash_cost,
            sort_cost_ns=sort_cost,
        )
        op = hash_join if choice.algorithm == "hash" else sort_join
        return op, choice


@dataclass(frozen=True)
class OffloadChoice:
    """NDP offload decision for a selective scan."""

    offload: bool
    host_cost_ns: float
    ndp_cost_ns: float

    @property
    def speedup(self) -> float:
        """Host cost over the chosen plan's cost."""
        chosen = self.ndp_cost_ns if self.offload else self.host_cost_ns
        if chosen <= 0:
            return 1.0
        return self.host_cost_ns / chosen


def choose_scan_site(controller: NDPController, num_pages: int,
                     selectivity: float) -> OffloadChoice:
    """Should a selective scan run on the host or on the controller?"""
    host = controller.host_filter_time(num_pages, selectivity)
    ndp = controller.offload_filter_time(num_pages, selectivity)
    return OffloadChoice(
        offload=ndp.time_ns < host.time_ns,
        host_cost_ns=host.time_ns,
        ndp_cost_ns=ndp.time_ns,
    )
