"""Relational schemas.

Records are plain tuples; a :class:`Schema` names and types their
fields and resolves column references for operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import QueryError


class ColumnType(enum.Enum):
    """Supported column types (sizes drive page-fill estimates)."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"  # stored as int days


#: Approximate stored width per type, in bytes.
COLUMN_WIDTH = {
    ColumnType.INT: 8,
    ColumnType.FLOAT: 8,
    ColumnType.DATE: 4,
    ColumnType.STR: 24,
}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    kind: ColumnType = ColumnType.INT

    @property
    def width_bytes(self) -> int:
        """Approximate stored width."""
        return COLUMN_WIDTH[self.kind]


class Schema:
    """An ordered set of columns."""

    def __init__(self, columns: list[Column]) -> None:
        if not columns:
            raise QueryError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate column names in {names}")
        self.columns = list(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}

    def index_of(self, name: str) -> int:
        """Position of a column in each record tuple."""
        try:
            return self._index[name]
        except KeyError:
            raise QueryError(
                f"no column {name!r}; have {list(self._index)}"
            ) from None

    def has(self, name: str) -> bool:
        """Whether a column exists."""
        return name in self._index

    @property
    def names(self) -> list[str]:
        """Column names, in order."""
        return [c.name for c in self.columns]

    @property
    def record_width_bytes(self) -> int:
        """Approximate bytes per record."""
        return sum(c.width_bytes for c in self.columns)

    def project(self, names: list[str]) -> "Schema":
        """A new schema keeping only *names*, in the given order."""
        return Schema([self.columns[self.index_of(n)] for n in names])

    def __len__(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.kind.value}" for c in self.columns)
        return f"Schema({cols})"
