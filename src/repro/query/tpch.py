"""TPC-H-shaped dataset and queries.

Microsoft's Pond reported that TPC-H under CXL latency shows
"highly query-dependent" overheads, "mostly below 20%" (Sec 2.4).
This module provides a synthetic dataset and nine query shapes
spanning the spectrum Pond saw: selective scans (Q6), heavy scans
with wide aggregation (Q1), join-dominated plans (Q3/Q5/Q10/Q12/Q14),
a semi-join (Q4), and a big group-by with HAVING + LIMIT (Q18).
Cardinality ratios follow TPC-H (orders = lineitem/4,
customer = orders/10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..core.engine import ScaleUpEngine
from ..storage.file import PageFile
from .hashjoin import HashJoin
from .operators import Filter, HashAggregate, TableScan, collect
from .schema import Column, ColumnType, Schema
from .table import Table
from .topk import TopK

LINEITEM_SCHEMA = Schema([
    Column("orderkey"), Column("partkey"),
    Column("quantity", ColumnType.FLOAT),
    Column("extendedprice", ColumnType.FLOAT),
    Column("discount", ColumnType.FLOAT),
    Column("returnflag", ColumnType.STR),
    Column("linestatus", ColumnType.STR),
    Column("shipdate", ColumnType.DATE),
    Column("shipmode", ColumnType.STR),
])

ORDERS_SCHEMA = Schema([
    Column("orderkey"), Column("custkey"),
    Column("orderdate", ColumnType.DATE),
    Column("totalprice", ColumnType.FLOAT),
    Column("orderpriority", ColumnType.STR),
])

CUSTOMER_SCHEMA = Schema([
    Column("custkey"), Column("nationkey"),
    Column("mktsegment", ColumnType.STR),
])

PART_SCHEMA = Schema([
    Column("partkey"), Column("ptype", ColumnType.STR),
])

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
SHIPMODES = ["AIR", "MAIL", "RAIL", "SHIP", "TRUCK"]
PTYPES = ["PROMO BRUSHED", "PROMO PLATED", "STANDARD BRUSHED",
          "ECONOMY PLATED", "MEDIUM BURNISHED"]


@dataclass
class TPCHDataset:
    """The four tables plus convenience cardinalities."""

    lineitem: Table
    orders: Table
    customer: Table
    part: Table

    @property
    def total_pages(self) -> int:
        """Pages across all tables."""
        return (self.lineitem.page_count + self.orders.page_count
                + self.customer.page_count + self.part.page_count)


def generate(pagefile: PageFile, lineitem_rows: int = 30_000,
             seed: int = 19) -> TPCHDataset:
    """Build a dataset with TPC-H cardinality ratios."""
    rng = random.Random(seed)
    num_orders = max(1, lineitem_rows // 4)
    num_customers = max(1, num_orders // 10)
    num_parts = max(1, lineitem_rows // 15)

    customer = Table("customer", CUSTOMER_SCHEMA, pagefile)
    customer.bulk_load(
        (k, rng.randrange(25), rng.choice(SEGMENTS))
        for k in range(num_customers)
    )
    orders = Table("orders", ORDERS_SCHEMA, pagefile)
    orders.bulk_load(
        (k, rng.randrange(num_customers), rng.randrange(2_400),
         rng.uniform(1_000.0, 300_000.0),
         rng.choice(["1-URGENT", "2-HIGH", "3-MEDIUM"]))
        for k in range(num_orders)
    )
    part = Table("part", PART_SCHEMA, pagefile)
    part.bulk_load(
        (k, rng.choice(PTYPES)) for k in range(num_parts)
    )
    lineitem = Table("lineitem", LINEITEM_SCHEMA, pagefile)
    lineitem.bulk_load(
        (rng.randrange(num_orders), rng.randrange(num_parts),
         float(rng.randint(1, 50)),
         rng.uniform(100.0, 10_000.0),
         rng.uniform(0.0, 0.1),
         rng.choice("ANR"), rng.choice("OF"),
         rng.randrange(2_400), rng.choice(SHIPMODES))
        for _ in range(lineitem_rows)
    )
    return TPCHDataset(lineitem=lineitem, orders=orders,
                       customer=customer, part=part)


#: A query takes (engine, dataset) and returns its result rows.
Query = Callable[[ScaleUpEngine, TPCHDataset], list[tuple]]


def q1(engine: ScaleUpEngine, data: TPCHDataset) -> list[tuple]:
    """Pricing summary: heavy scan + wide aggregation."""
    shipdate_idx = LINEITEM_SCHEMA.index_of("shipdate")
    scan = TableScan(data.lineitem,
                     predicate=lambda r: r[shipdate_idx] <= 2_200)
    agg = HashAggregate(
        scan, group_by=["returnflag", "linestatus"],
        aggs=[("sum_qty", "sum", "quantity"),
              ("sum_price", "sum", "extendedprice"),
              ("avg_disc", "avg", "discount"),
              ("count_order", "count", None)],
    )
    return collect(agg, engine)[0]


def q3(engine: ScaleUpEngine, data: TPCHDataset) -> list[tuple]:
    """Shipping priority: 3-way join + aggregation."""
    seg_idx = CUSTOMER_SCHEMA.index_of("mktsegment")
    cust = TableScan(data.customer,
                     predicate=lambda r: r[seg_idx] == "BUILDING")
    orderdate_idx = ORDERS_SCHEMA.index_of("orderdate")
    orders = TableScan(data.orders,
                       predicate=lambda r: r[orderdate_idx] < 1_200)
    join1 = HashJoin(cust, orders, "custkey", "custkey")
    join2 = HashJoin(join1, TableScan(data.lineitem),
                     "orderkey", "orderkey")
    agg = HashAggregate(
        join2, group_by=["orderkey"],
        aggs=[("revenue", "sum", "extendedprice")],
    )
    top = TopK(agg, "revenue", k=10)
    return collect(top, engine)[0]


def q5(engine: ScaleUpEngine, data: TPCHDataset) -> list[tuple]:
    """Local supplier volume: join + nation grouping."""
    join1 = HashJoin(TableScan(data.customer), TableScan(data.orders),
                     "custkey", "custkey")
    join2 = HashJoin(join1, TableScan(data.lineitem),
                     "orderkey", "orderkey")
    agg = HashAggregate(
        join2, group_by=["nationkey"],
        aggs=[("revenue", "sum", "extendedprice")],
    )
    return collect(agg, engine)[0]


def q6(engine: ScaleUpEngine, data: TPCHDataset) -> list[tuple]:
    """Forecasting revenue change: highly selective scan."""
    s = LINEITEM_SCHEMA
    ship, disc, qty = (s.index_of("shipdate"), s.index_of("discount"),
                       s.index_of("quantity"))

    def predicate(r: tuple) -> bool:
        return (1_000 <= r[ship] < 1_365 and 0.05 <= r[disc] <= 0.07
                and r[qty] < 24)

    scan = TableScan(data.lineitem, predicate=predicate)
    agg = HashAggregate(
        scan, group_by=["linestatus"],
        aggs=[("revenue", "sum", "extendedprice")],
    )
    return collect(agg, engine)[0]


def q12(engine: ScaleUpEngine, data: TPCHDataset) -> list[tuple]:
    """Shipping modes: selective join + grouping."""
    mode_idx = LINEITEM_SCHEMA.index_of("shipmode")
    line = TableScan(data.lineitem,
                     predicate=lambda r: r[mode_idx] in ("MAIL", "SHIP"))
    join = HashJoin(line, TableScan(data.orders), "orderkey", "orderkey")
    agg = HashAggregate(
        join, group_by=["shipmode"],
        aggs=[("order_count", "count", None)],
    )
    return collect(agg, engine)[0]


def q14(engine: ScaleUpEngine, data: TPCHDataset) -> list[tuple]:
    """Promotion effect: join with part + scan aggregation."""
    ship_idx = LINEITEM_SCHEMA.index_of("shipdate")
    line = TableScan(data.lineitem,
                     predicate=lambda r: 1_100 <= r[ship_idx] < 1_130)
    join = HashJoin(line, TableScan(data.part), "partkey", "partkey")
    agg = HashAggregate(
        join, group_by=["ptype"],
        aggs=[("revenue", "sum", "extendedprice")],
    )
    return collect(agg, engine)[0]


def q4(engine: ScaleUpEngine, data: TPCHDataset) -> list[tuple]:
    """Order priority checking: semi-join shaped (orders having at
    least one qualifying lineitem), grouped by priority."""
    date_idx = ORDERS_SCHEMA.index_of("orderdate")
    orders = TableScan(data.orders,
                       predicate=lambda r: 800 <= r[date_idx] < 900)
    # Build the qualifying-order key set from lineitem first.
    ship_idx = LINEITEM_SCHEMA.index_of("shipdate")
    line = TableScan(data.lineitem,
                     predicate=lambda r: r[ship_idx] < 1_200,
                     projection=["orderkey"])
    qualifying = {row[0] for row in line.rows(engine)}
    key_idx = ORDERS_SCHEMA.index_of("orderkey")
    semi = Filter(orders, lambda r: r[key_idx] in qualifying)
    agg = HashAggregate(
        semi, group_by=["orderpriority"],
        aggs=[("order_count", "count", None)],
    )
    return collect(agg, engine)[0]


def q10(engine: ScaleUpEngine, data: TPCHDataset) -> list[tuple]:
    """Returned-item reporting: customer x orders x lineitem with a
    returnflag filter, revenue per customer."""
    flag_idx = LINEITEM_SCHEMA.index_of("returnflag")
    line = TableScan(data.lineitem,
                     predicate=lambda r: r[flag_idx] == "R")
    join1 = HashJoin(TableScan(data.orders), line,
                     "orderkey", "orderkey")
    join2 = HashJoin(TableScan(data.customer), join1,
                     "custkey", "custkey")
    agg = HashAggregate(
        join2, group_by=["custkey"],
        aggs=[("revenue", "sum", "extendedprice")],
    )
    return collect(agg, engine)[0]


def q18(engine: ScaleUpEngine, data: TPCHDataset) -> list[tuple]:
    """Large-volume customers: big group-by with a HAVING-style
    post-filter on total quantity."""
    per_order = HashAggregate(
        TableScan(data.lineitem), group_by=["orderkey"],
        aggs=[("total_qty", "sum", "quantity")],
    )
    qty_idx = 1
    big = Filter(per_order, lambda r: r[qty_idx] > 300)
    join = HashJoin(big, TableScan(data.orders),
                    "orderkey", "orderkey")
    agg = HashAggregate(
        join, group_by=["custkey"],
        aggs=[("orders", "count", None),
              ("qty", "sum", "total_qty")],
    )
    top = TopK(agg, "qty", k=100)
    return collect(top, engine)[0]


QUERIES: dict[str, Query] = {
    "Q1": q1, "Q3": q3, "Q4": q4, "Q5": q5, "Q6": q6,
    "Q10": q10, "Q12": q12, "Q14": q14, "Q18": q18,
}
