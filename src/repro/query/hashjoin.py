"""Partitioned (Grace-style) hash join.

Build the smaller input into a hash table in work memory; when the
build side exceeds the work-memory budget, both inputs are partitioned
to the spill tier first. Work-memory probes and spill traffic are
charged against access paths, so where the hash table lives —
local DRAM, CXL expander, GFAM — shifts the cost, exactly the
"hashing at rack scale" question of Sec 3.3.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..core.engine import ScaleUpEngine
from ..errors import QueryError
from ..sim.interconnect import AccessPath
from .operators import (
    CPU_EMIT_NS,
    LLC_RESIDENT_GROUPS,
    MEMORY_LEVEL_PARALLELISM,
    Operator,
)
from .schema import Schema

#: CPU per build row (hash + insert) and per probe row.
CPU_BUILD_NS = 6.0
CPU_PROBE_NS = 5.0


class HashJoin:
    """Equi-join: ``left.left_key == right.right_key``.

    The left input is the build side. ``work_path`` locates work
    memory (hash table and partitions); ``work_mem_rows`` is the
    build-side capacity before partitioning kicks in.
    """

    def __init__(self, left: Operator, right: Operator,
                 left_key: str, right_key: str,
                 work_path: AccessPath | None = None,
                 work_mem_rows: int = 1_000_000) -> None:
        if work_mem_rows <= 0:
            raise QueryError("work_mem_rows must be positive")
        self.left = left
        self.right = right
        self._left_idx = left.schema.index_of(left_key)
        self._right_idx = right.schema.index_of(right_key)
        self.work_path = work_path
        self.work_mem_rows = work_mem_rows
        self._schema = Schema(left.schema.columns + [
            col for col in right.schema.columns
            if not left.schema.has(col.name)
        ])
        self._right_keep = [
            i for i, col in enumerate(right.schema.columns)
            if not left.schema.has(col.name)
        ]

    @property
    def schema(self) -> Schema:
        """Left columns then non-duplicate right columns."""
        return self._schema

    def rows(self, engine: ScaleUpEngine) -> Iterator[tuple]:
        """Execute the join against an engine."""
        clock = engine.pool.clock
        build = list(self.left.rows(engine))
        num_partitions = max(
            1, math.ceil(len(build) / self.work_mem_rows)
        )
        if num_partitions == 1:
            yield from self._join_partition(
                engine, build, self.right.rows(engine)
            )
            return
        # Grace: partition both sides through work memory, then join
        # partition pairs. Spill traffic charged at work-path bandwidth.
        probe = list(self.right.rows(engine))
        if self.work_path is not None:
            spill_bytes = (
                (len(build) * self.left.schema.record_width_bytes
                 + len(probe) * self.right.schema.record_width_bytes)
            )
            # Written once and read once.
            clock.advance(self.work_path.write_time(spill_bytes))
            clock.advance(self.work_path.read_time(spill_bytes))
        build_parts: list[list[tuple]] = [[] for _ in range(num_partitions)]
        probe_parts: list[list[tuple]] = [[] for _ in range(num_partitions)]
        for row in build:
            build_parts[hash(row[self._left_idx]) % num_partitions].append(row)
        for row in probe:
            probe_parts[hash(row[self._right_idx]) % num_partitions].append(row)
        for b_part, p_part in zip(build_parts, probe_parts):
            yield from self._join_partition(engine, b_part, iter(p_part))

    def _join_partition(self, engine: ScaleUpEngine, build: list[tuple],
                        probe: Iterator[tuple]) -> Iterator[tuple]:
        clock = engine.pool.clock
        table: dict[object, list[tuple]] = {}
        for row in build:
            table.setdefault(row[self._left_idx], []).append(row)
        build_cpu = len(build) * CPU_BUILD_NS
        probe_latency = 0.0
        if self.work_path is not None and len(table) > LLC_RESIDENT_GROUPS:
            timing = self.work_path.timing()
            probe_latency = (timing.read_latency_ns
                             / MEMORY_LEVEL_PARALLELISM)
            build_cpu += len(build) * (timing.write_latency_ns
                                       / MEMORY_LEVEL_PARALLELISM)
        clock.advance(build_cpu)
        probed = 0
        emitted = 0
        for row in probe:
            probed += 1
            matches = table.get(row[self._right_idx])
            if not matches:
                continue
            right_part = tuple(row[i] for i in self._right_keep)
            for match in matches:
                emitted += 1
                yield match + right_part
        clock.advance(
            probed * (CPU_PROBE_NS + probe_latency)
            + emitted * CPU_EMIT_NS
        )

    def estimated_cost_ns(self, build_rows: int, probe_rows: int) -> float:
        """Planner-facing cost estimate (no execution)."""
        latency = 0.0
        if self.work_path is not None and build_rows > LLC_RESIDENT_GROUPS:
            latency = (self.work_path.timing().read_latency_ns
                       / MEMORY_LEVEL_PARALLELISM)
        passes = max(1, math.ceil(build_rows / self.work_mem_rows))
        spill = 0.0
        if passes > 1 and self.work_path is not None:
            bytes_ = (build_rows * self.left.schema.record_width_bytes
                      + probe_rows * self.right.schema.record_width_bytes)
            spill = 2 * bytes_ / self.work_path.read_bandwidth
        return (build_rows * (CPU_BUILD_NS + latency)
                + probe_rows * (CPU_PROBE_NS + latency) + spill)
