"""Tables: schemas bound to page ranges in a page file.

Rows live as tuples on :class:`~repro.storage.page.Page` payloads; a
table allocates its pages from a shared :class:`~repro.storage.file.PageFile`
so multiple tables coexist in one tablespace and the buffer pool
faults their pages like any disk-based engine would.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import QueryError
from ..storage.file import PageFile
from ..storage.page import PageId
from ..units import PAGE_SIZE
from .schema import Schema


class Table:
    """A row-store table over a contiguous page range."""

    def __init__(self, name: str, schema: Schema, pagefile: PageFile,
                 fill_factor: float = 0.9) -> None:
        if not 0.0 < fill_factor <= 1.0:
            raise QueryError(f"fill factor must be in (0,1]: {fill_factor}")
        self.name = name
        self.schema = schema
        self.pagefile = pagefile
        usable = int(PAGE_SIZE * fill_factor)
        self.records_per_page = max(
            1, usable // schema.record_width_bytes
        )
        self._page_ids: list[PageId] = []
        self._row_count = 0

    # -- loading -----------------------------------------------------------

    def bulk_load(self, rows: Iterable[tuple]) -> int:
        """Append rows, packing pages to the fill factor. Returns the
        number of rows loaded."""
        loaded = 0
        current = None
        for row in rows:
            if len(row) != len(self.schema):
                raise QueryError(
                    f"{self.name}: row arity {len(row)} !="
                    f" schema arity {len(self.schema)}"
                )
            if current is None or \
                    len(current.records) >= self.records_per_page:
                current = self.pagefile.allocate_page()
                self._page_ids.append(current.page_id)
            current.records.append(row)
            loaded += 1
        self._row_count += loaded
        return loaded

    # -- shape --------------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Rows loaded so far."""
        return self._row_count

    @property
    def page_count(self) -> int:
        """Pages the table occupies."""
        return len(self._page_ids)

    @property
    def page_ids(self) -> list[PageId]:
        """The table's page ids, in order."""
        return list(self._page_ids)

    @property
    def size_bytes(self) -> int:
        """On-disk footprint."""
        return self.page_count * PAGE_SIZE

    # -- raw iteration (untimed; operators add timing) -------------------------

    def pages(self) -> Iterator[tuple[PageId, list[tuple]]]:
        """Iterate (page_id, records) pairs without timing."""
        for page_id in self._page_ids:
            yield page_id, self.pagefile.peek(page_id).records

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self._row_count:,},"
            f" pages={self.page_count:,})"
        )
