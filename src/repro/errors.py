"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A device, link, or engine was configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TopologyError(ReproError):
    """Invalid rack topology (unknown node, no route, port exhaustion...)."""


class CoherenceError(ReproError):
    """Coherence protocol violation or domain-limit overflow."""


class AddressError(ReproError):
    """Out-of-range or unmapped physical address."""


class BufferPoolError(ReproError):
    """Buffer-manager misuse (unpin of unpinned frame, pool exhaustion...)."""


class PageFaultError(BufferPoolError):
    """A page could not be brought into the pool."""


class StorageError(ReproError):
    """Storage-device failure or out-of-range page id."""


class TransactionError(ReproError):
    """Transaction aborted or used after completion."""


class DeadlockError(TransactionError):
    """Lock acquisition aborted by deadlock prevention."""


class QueryError(ReproError):
    """Malformed query plan or schema mismatch."""


class PoolingError(ReproError):
    """Memory-pool carving/lease errors (Sec 3.2 architecture)."""


class DeviceFailure(ReproError):
    """An injected hardware failure surfaced to the caller."""
