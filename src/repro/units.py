"""Unit conventions and helpers used throughout the simulator.

The whole code base sticks to three base units:

* **time**: nanoseconds, as ``float``;
* **size**: bytes, as ``int``;
* **bandwidth**: bytes per nanosecond, as ``float``.

The bandwidth convention is chosen because ``1 GB/s == 1e9 B / 1e9 ns ==
1 B/ns``: a bandwidth expressed in GB/s is *numerically identical* to the
same bandwidth in bytes/ns, which makes configuration values (vendor
datasheets quote GB/s) directly usable without conversion bugs.
"""

from __future__ import annotations

# --- sizes (bytes) ----------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

CACHE_LINE = 64
PAGE_SIZE = 4 * KIB

# --- time (ns) --------------------------------------------------------------

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SECOND = 1_000_000_000.0

# --- bandwidth (bytes/ns == GB/s) -------------------------------------------

GBPS = 1.0          # 1 GB/s expressed in bytes/ns
MBPS = 1.0 / 1000.0  # 1 MB/s expressed in bytes/ns


def gib(n: float) -> int:
    """Return *n* GiB in bytes."""
    return int(n * GIB)


def mib(n: float) -> int:
    """Return *n* MiB in bytes."""
    return int(n * MIB)


def kib(n: float) -> int:
    """Return *n* KiB in bytes."""
    return int(n * KIB)


def us(n: float) -> float:
    """Return *n* microseconds in nanoseconds."""
    return n * US


def ms(n: float) -> float:
    """Return *n* milliseconds in nanoseconds."""
    return n * MS


def seconds(n: float) -> float:
    """Return *n* seconds in nanoseconds."""
    return n * SECOND


def transfer_time_ns(size_bytes: int, bandwidth_bytes_per_ns: float) -> float:
    """Time to move *size_bytes* at the given bandwidth, in ns.

    Raises :class:`ValueError` on a non-positive bandwidth so that a
    mis-configured (zero-bandwidth) device fails loudly instead of
    producing infinite transfer times silently.
    """
    if bandwidth_bytes_per_ns <= 0:
        raise ValueError(
            f"bandwidth must be positive, got {bandwidth_bytes_per_ns}"
        )
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return size_bytes / bandwidth_bytes_per_ns


def fmt_bytes(size_bytes: float) -> str:
    """Human-readable size, e.g. ``fmt_bytes(3 * GIB) == '3.0 GiB'``."""
    value = float(size_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_ns(t_ns: float) -> str:
    """Human-readable duration, e.g. ``fmt_ns(2500) == '2.50 us'``."""
    if t_ns < US:
        return f"{t_ns:.0f} ns"
    if t_ns < MS:
        return f"{t_ns / US:.2f} us"
    if t_ns < SECOND:
        return f"{t_ns / MS:.2f} ms"
    return f"{t_ns / SECOND:.3f} s"
