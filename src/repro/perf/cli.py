"""``repro perfbench`` — time the simulator's own hot path.

Examples::

    repro perfbench                      # run + print the table
    repro perfbench --out results/bench/BENCH_PR7.json
    repro perfbench --check              # gate against the committed baseline
    repro perfbench --benches scan,oltp --repeats 5
    repro perfbench --history            # speedup trajectory across BENCH_PR*
    repro perfbench --profile            # cProfile the fast lane per bench
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import ReproError
from .bench import MICROBENCHES
from .history import (
    BENCH_DIR,
    check_targets,
    collect_history,
    format_history,
    load_targets,
)
from .runner import (
    BENCH_BASELINE_PATH,
    DEFAULT_TOLERANCE,
    check_report,
    load_baseline,
    profile_perfbench,
    run_perfbench,
    write_report,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro perfbench",
        description=(
            "Wall-clock microbenchmarks of the simulator hot path:"
            " batched fast lane vs scalar compat lane, with simulated"
            " results asserted byte-identical between the two."
        ),
    )
    parser.add_argument(
        "--benches",
        help="comma-separated subset to run"
             f" (default: all of {', '.join(sorted(MICROBENCHES))})",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="repetitions per (bench, lane); minimum wall time is kept",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (shrink for smoke tests)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the report as JSON to PATH",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate the run against the committed baseline"
             f" ({BENCH_BASELINE_PATH}); non-zero exit on failure",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=str(BENCH_BASELINE_PATH),
        help="baseline file for --check",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="fraction of each bench's speedup floor required by"
             " --check (generous by default to absorb runner noise)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-repetition progress lines",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="print the speedup trajectory across committed"
             f" {BENCH_DIR}/BENCH_PR*.json baselines (regressions"
             " listed before wins) instead of running benches, and"
             " gate it against <bench-dir>/TARGETS.json when present"
             " (per-bench floors, geomean target, regression ratchet);"
             " non-zero exit on a target failure",
    )
    parser.add_argument(
        "--bench-dir", metavar="DIR", default=str(BENCH_DIR),
        help="baseline directory for --history",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="instead of timing, run each selected bench's fast lane"
             " once under cProfile and write profile-<bench>.txt"
             " (top functions by cumulative and total time) into"
             " --profile-dir",
    )
    parser.add_argument(
        "--profile-dir", metavar="DIR", default=str(BENCH_DIR),
        help="output directory for --profile reports",
    )
    parser.add_argument(
        "--profile-top", type=int, default=30,
        help="functions per sort order in --profile reports",
    )
    parser.add_argument(
        "--targets", metavar="PATH",
        help="targets file for the --history gate (default:"
             " <bench-dir>/TARGETS.json; gate is skipped when the"
             " default is absent)",
    )
    return parser


def _print_table(report: dict, stream) -> None:
    rows = [("bench", "compat (s)", "fast (s)", "speedup", "floor", "equal")]
    for name, entry in sorted(report.get("benches", {}).items()):
        rows.append((
            name,
            f"{entry.get('compat_wall_s', float('nan')):.4f}",
            f"{entry.get('fast_wall_s', float('nan')):.4f}",
            f"{entry.get('speedup', float('nan')):.2f}x",
            f"{entry.get('min_speedup', 1.0):.1f}x",
            "yes" if entry.get("lanes_equivalent") else "NO",
        ))
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    for i, row in enumerate(rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        print(line.rstrip(), file=stream)
        if i == 0:
            print("  ".join("-" * width for width in widths), file=stream)


def perfbench_main(argv: list[str]) -> int:
    """Entry point for ``repro perfbench``; returns an exit code."""
    args = _build_parser().parse_args(argv)
    if args.history:
        try:
            history = collect_history(args.bench_dir)
            if args.targets:
                targets = load_targets(args.targets)
                if targets is None:
                    raise ReproError(
                        f"targets file not found at {args.targets}"
                    )
            else:
                targets = load_targets(Path(args.bench_dir) / "TARGETS.json")
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_history(history))
        if targets is not None:
            failures = check_targets(history, targets)
            if failures:
                for failure in failures:
                    print(f"PERF TARGET FAIL: {failure}", file=sys.stderr)
                return 1
            print("perf targets gate: PASS", file=sys.stderr)
        return 0
    benches = None
    if args.benches:
        benches = [name.strip() for name in args.benches.split(",")
                   if name.strip()]

    def progress(message: str) -> None:
        if not args.quiet:
            print(f"  {message}", file=sys.stderr)

    if args.profile:
        try:
            paths = profile_perfbench(
                benches=benches,
                scale=args.scale,
                out_dir=args.profile_dir,
                top=args.profile_top,
                progress=progress,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for path in paths:
            print(f"profile written to {path}")
        return 0

    try:
        report = run_perfbench(
            benches=benches,
            repeats=args.repeats,
            scale=args.scale,
            progress=progress,
        )
        _print_table(report, sys.stdout)
        if args.out:
            out = write_report(report, args.out)
            print(f"report written to {out}", file=sys.stderr)
        if args.check:
            baseline = load_baseline(args.baseline)
            failures = check_report(
                report, baseline, tolerance=args.tolerance
            )
            if failures:
                for failure in failures:
                    print(f"PERFBENCH FAIL: {failure}", file=sys.stderr)
                return 1
            print("perfbench gate: PASS", file=sys.stderr)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0
