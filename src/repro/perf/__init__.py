"""Wall-clock performance benchmarking for the simulator itself.

Unlike ``benchmarks/`` (which measures *simulated* time — the physics),
``repro.perf`` measures *wall-clock* time — how fast the simulator runs
on the host. The perfbench harness times a small set of microbenchmarks
in both the batched fast lane and the scalar compat lane, asserts that
both lanes produce byte-identical simulated results, and gates the
speedup ratio against a committed baseline (``results/bench/``) so CI
fails on wall-clock regressions the same way the sweep gate fails on
shape regressions.
"""

from .bench import MICROBENCHES, BenchSpec, run_microbench
from .runner import (
    BENCH_BASELINE_PATH,
    check_report,
    load_baseline,
    run_perfbench,
    write_report,
)

__all__ = [
    "BENCH_BASELINE_PATH",
    "BenchSpec",
    "MICROBENCHES",
    "check_report",
    "load_baseline",
    "run_microbench",
    "run_perfbench",
    "write_report",
]
