"""Microbenchmark definitions for ``repro perfbench``.

Each microbenchmark times one hot path of the simulator in two lanes
and requires both to produce **byte-identical results**:

* Engine benches (``scan``, ``oltp``, ``htap``, ``htap-blocks``) build
  a fresh engine, warm the pool, and drive one workload through
  ``engine.run``. ``fast`` is the batched fast lane
  (``BufferPool.access_batch`` + precomputed latency tables, plus the
  columnar block consumer for ``htap-blocks``); ``compat`` is the
  scalar reference lane that recomputes per-access arithmetic the way
  the pre-fast-lane simulator did. The digest covers every simulated
  quantity of the run.
* The trace-generation bench (``trace-gen``) times workload
  *generation*: the columnar block emitters (``fast``) against the
  scalar per-``Access`` generators (``compat``). The digest covers the
  elementwise content of the generated trace.
* The tenant-population bench (``tenant-gen``) times serving-scale
  population generation: the columnar SoA draw into a ``TenantTable``
  (``fast``) against object-per-tenant materialisation (``compat``).
  The digest covers the raw bytes of every tenant attribute column.

Traces for engine benches are materialised before the timed region so
the measurement captures the simulator hot path, not the generator.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import config
from ..core.buffer import Tier, TieredBufferPool
from ..core.engine import EngineReport, ScaleUpEngine
from ..core.placement import OSPagingPolicy, StaticPolicy
from ..core.sessions import ClientSession, SessionRunReport
from ..errors import ConfigError
from ..sim.context import SimContext
from ..sim.interconnect import AccessPath, Link
from ..sim.memory import MemoryDevice
from ..units import PAGE_SIZE
from ..workloads.scans import (
    mixed_htap_blocks,
    mixed_htap_trace,
    scan_blocks,
    scan_trace,
)
from ..serving.tenants import TenantTable
from ..workloads.cloudmix import generate_population
from ..workloads.traces import Access, AccessBlock
from ..workloads.ycsb import YCSBConfig, ycsb_blocks, ycsb_trace


@dataclass(frozen=True, slots=True)
class BenchSpec:
    """A named wall-clock microbenchmark with its speedup floor.

    ``runner(fast, scale)`` executes one lane and returns
    ``(wall_seconds, digest)``; the digest must agree across lanes.
    """

    name: str
    description: str
    min_speedup: float
    runner: Callable[[bool, float], tuple[float, str]]


def _set_lane(engine: ScaleUpEngine, fast: bool) -> None:
    """Select the execution lane on *engine*'s pool.

    Tolerates pools that predate the fast lane (everything is then the
    scalar path) so the harness can record pre-change timings.
    """
    pool = engine.pool
    if hasattr(pool, "set_fast_lane"):
        pool.set_fast_lane(fast)


def _digest_report(engine: ScaleUpEngine, report: EngineReport) -> str:
    """A content digest over every simulated quantity the run produced.

    Floats are serialised with ``repr`` so the digest is sensitive to
    the last ulp — the byte-identity contract, not an approximation.
    """
    stats = engine.pool.stats
    payload = {
        "total_ns": repr(report.total_ns),
        "demand_ns": repr(report.demand_ns),
        "think_ns": repr(report.think_ns),
        "ops": report.ops,
        "misses": report.misses,
        "migrations": report.migrations,
        "hit_rate": repr(report.hit_rate),
        "tier_hit_rates": [repr(rate) for rate in report.tier_hit_rates],
        "clock_now": repr(engine.pool.clock.now),
        "pool": {
            "accesses": stats.accesses,
            "misses": stats.misses,
            "writebacks": stats.writebacks,
            "migrations": stats.migrations,
            "demand_time_ns": repr(stats.demand_time_ns),
            "fault_time_ns": repr(stats.fault_time_ns),
            "migration_time_ns": repr(stats.migration_time_ns),
            "per_tier": [tier.snapshot() for tier in stats.per_tier],
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _digest_trace(page_id, write, is_scan, nbytes, think_ns) -> str:
    """Digest the elementwise content of a trace from its columns."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(page_id, np.int64).tobytes())
    digest.update(np.ascontiguousarray(write, np.bool_).tobytes())
    digest.update(np.ascontiguousarray(is_scan, np.bool_).tobytes())
    digest.update(np.ascontiguousarray(nbytes, np.int64).tobytes())
    digest.update(np.ascontiguousarray(think_ns, np.float64).tobytes())
    return digest.hexdigest()


def _digest_blocks(blocks: list[AccessBlock]) -> str:
    return _digest_trace(
        np.concatenate([b.page_id for b in blocks]),
        np.concatenate([b.write for b in blocks]),
        np.concatenate([b.is_scan for b in blocks]),
        np.concatenate([b.nbytes for b in blocks]),
        np.concatenate([b.think_ns for b in blocks]),
    )


def _digest_accesses(accesses: list) -> str:
    n = len(accesses)
    return _digest_trace(
        np.fromiter((a.page_id for a in accesses), np.int64, n),
        np.fromiter((a.write for a in accesses), np.bool_, n),
        np.fromiter((a.is_scan for a in accesses), np.bool_, n),
        np.fromiter((a.nbytes for a in accesses), np.int64, n),
        np.fromiter((a.think_ns for a in accesses), np.float64, n),
    )


# -- engine microbenchmark builders ------------------------------------------
#
# Builders return ``(engine, trace)`` with the pool already warmed; the
# runner times only ``engine.run(trace)``. ``scale`` shrinks the
# workload for tests (scale < 1) without changing its shape.


def _scan_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """Sequential scan over a CXL-resident table: the E5/A8 shape.

    After warming, every access is a tier hit, so the run measures the
    pure hit-path cost — where the block lane resolves whole columnar
    runs against the residency table in a handful of array ops. The
    trace is the block twin of the scalar scan (elementwise
    identical), so the digest matches the object-trace runs exactly.
    """
    pages = max(64, int(3000 * scale))
    repeats = 8
    engine = ScaleUpEngine.build(
        dram_pages=max(32, pages // 6),
        cxl_pages=pages + pages // 2,
        name="perf-scan",
    )
    engine.preload(np.arange(pages, dtype=np.int64),
                   nbytes=PAGE_SIZE, is_scan=True)
    trace = list(scan_blocks(0, pages, repeats=repeats))
    return engine, trace


def _oltp_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """Zipfian YCSB-B point traffic over a DRAM+CXL split: the E7 shape.

    The working set fits across DRAM + CXL — the paper's capacity
    thesis — so after warming the run is hit-dominated: short mixed
    read/write runs, live migrations from the cost-based placement
    policy, and frequent shape changes at write boundaries. The trace
    is the columnar twin of the scalar YCSB-B stream, driving the
    block lane's lean short-segment walk.
    """
    pages = max(64, int(3000 * scale))
    ops = max(256, int(30_000 * scale))
    engine = ScaleUpEngine.build(
        dram_pages=max(16, pages // 5),
        cxl_pages=pages,
        name="perf-oltp",
    )
    # Fault every page in, then heat the Zipf head so placement has
    # realistic temperatures (and live promotions) during the run.
    engine.preload(np.arange(pages, dtype=np.int64),
                   nbytes=PAGE_SIZE, is_scan=True)
    engine.warm_with(ycsb_trace(YCSBConfig(
        mix="C", num_pages=pages, num_ops=min(ops, 4 * pages), seed=7,
    )))
    trace = list(ycsb_blocks(YCSBConfig(
        mix="B", num_pages=pages, num_ops=ops, seed=11,
    )))
    return engine, trace


def _htap_params(scale: float) -> tuple[int, int, dict]:
    oltp_pages = max(64, int(1500 * scale))
    olap_pages = max(64, int(4000 * scale))
    params = dict(
        oltp_pages=oltp_pages,
        olap_pages=olap_pages,
        oltp_ops=max(256, int(8_000 * scale)),
        olap_repeats=2,
        oltp_per_olap=1,
        seed=23,
    )
    return oltp_pages, olap_pages, params


def _htap_engine(scale: float) -> tuple[ScaleUpEngine, dict]:
    oltp_pages, olap_pages, params = _htap_params(scale)
    engine = ScaleUpEngine.build(
        dram_pages=max(32, oltp_pages),
        cxl_pages=olap_pages + olap_pages // 2,
        name="perf-htap",
    )
    engine.preload(np.arange(oltp_pages + olap_pages, dtype=np.int64),
                   nbytes=PAGE_SIZE, is_scan=True)
    return engine, params


def _htap_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """Interleaved OLTP + scan traffic as scalar ``Access`` objects.

    With ``oltp_per_olap=1`` the access shape changes on *every*
    operation, so each coalesced run has length one and the batch lane
    degenerates to its scalar fallback — this bench guards the floor
    of the object-trace path (timing tables only), not its ceiling.
    """
    engine, params = _htap_engine(scale)
    trace = list(mixed_htap_trace(**params))
    return engine, trace


def _htap_blocks_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """The same per-op alternating HTAP mix, delivered as blocks.

    This is the coalescer worst case attacked by the columnar
    pipeline: the vectorised boundary scan replaces the per-access
    Python peek, and length-one runs route straight to the pool's
    table-based scalar access without object churn.
    """
    engine, params = _htap_engine(scale)
    trace = list(mixed_htap_blocks(**params))
    return engine, trace


def _fault_storm_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """Cold pool, repeated over-capacity scans, plus a write-heavy tail.

    Every parameter conspires to make faults the dominant cost: the
    pool starts empty (no ``warm_with``), the scan set is ~9x pool
    capacity so each repeat re-faults everything through eviction and
    demotion cascades, and the YCSB-A tail mixes zipfian writes over
    the same cold range so dirty-writeback and short-run miss paths
    stay exercised.  The fault lane resolves whole miss runs in array
    ops (bulk backing reads, ``choose_admit_tiers``, ``victim_batch``
    cascades, array installs); the compat lane walks the same faults
    one page at a time.
    """
    pages = max(256, int(40_000 * scale))
    engine = ScaleUpEngine.build(
        dram_pages=max(64, int(512 * scale)),
        cxl_pages=max(256, int(4_096 * scale)),
        placement=OSPagingPolicy(),
        name="perf-fault-storm",
    )
    trace = list(scan_blocks(0, pages, repeats=3))
    trace += list(ycsb_blocks(YCSBConfig(
        mix="A",
        num_pages=pages,
        num_ops=max(64, int(8_000 * scale)),
        seed=13,
    )))
    return engine, trace


def _engine_runner(
    builder: Callable[[float], tuple[ScaleUpEngine, list]],
    label: str,
) -> Callable[[bool, float], tuple[float, str]]:
    def run(fast: bool, scale: float) -> tuple[float, str]:
        engine, trace = builder(scale)
        _set_lane(engine, fast)
        start = time.perf_counter()
        report = engine.run(trace, label=f"perf:{label}")
        wall_s = time.perf_counter() - start
        return wall_s, _digest_report(engine, report)
    return run


# -- concurrent-session microbenchmark ---------------------------------------


def _digest_session_report(engine: ScaleUpEngine,
                           report: SessionRunReport) -> str:
    """Digest every simulated quantity of a concurrent session run.

    Covers the run report (per-session demand/think/wait/cursor floats,
    name-keyed and name-sorted, so the digest is permutation-invariant
    by construction) and the pool's accumulated state.
    """
    stats = engine.pool.stats
    payload = {
        "makespan_ns": repr(report.makespan_ns),
        "clock_now": repr(engine.pool.clock.now),
        "policy": report.policy,
        "sessions": {
            name: {
                "ops": session.ops,
                "demand_ns": repr(session.demand_ns),
                "think_ns": repr(session.think_ns),
                "wait_ns": repr(session.wait_ns),
                "end_ns": repr(session.end_ns),
                "misses": session.misses,
                "migrations": session.migrations,
            }
            for name, session in sorted(report.sessions.items())
        },
        "pool": {
            "accesses": stats.accesses,
            "misses": stats.misses,
            "writebacks": stats.writebacks,
            "migrations": stats.migrations,
            "demand_time_ns": repr(stats.demand_time_ns),
            "fault_time_ns": repr(stats.fault_time_ns),
            "migration_time_ns": repr(stats.migration_time_ns),
            "per_tier": [tier.snapshot() for tier in stats.per_tier],
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _contended_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """Eight readahead scan sessions sharing one expander.

    Every session streams a disjoint CXL-resident range with 64 KiB
    requests, so the run is bandwidth-bound and every quantum both
    waits on and re-occupies the shared link/device queues — the
    session scheduler's hot path.
    """
    num_sessions = 8
    pages_per = max(64, int(4_000 * scale))
    repeats = 8
    total = num_sessions * pages_per
    engine = ScaleUpEngine.build(
        dram_pages=1, cxl_pages=total + 16,
        placement=StaticPolicy(lambda _p: 1),
        name="perf-contended",
    )
    engine.preload(np.arange(total, dtype=np.int64),
                   nbytes=PAGE_SIZE, is_scan=True)
    chunk = 16
    sessions = []
    for index in range(num_sessions):
        base = index * pages_per
        trace = [
            Access(page_id=base + start, is_scan=True,
                   nbytes=chunk * 4096, think_ns=0.0)
            for _ in range(repeats)
            for start in range(0, pages_per, chunk)
        ]
        sessions.append(ClientSession(f"scan-{index}", trace))
    return engine, sessions


def _two_expander_engine(cxl_pages: int, stripe_pages: int) -> ScaleUpEngine:
    """A DRAM stub plus two independently-linked CXL expanders.

    Pages stripe across the expanders in *stripe_pages* extents, so
    half the sessions' traffic folds on each device queue and port —
    contention on two resource sets instead of one. Extent (not page)
    granularity keeps a session's runs on one tier, matching how a
    partitioned engine would actually place per-tenant heaps.
    """
    ctx = SimContext.ambient()
    dram = MemoryDevice(config.local_ddr5(), name="oc-dram", ctx=ctx)
    tiers = [Tier(name="dram", path=AccessPath(device=dram),
                  capacity_pages=1)]
    for i in range(2):
        dev = MemoryDevice(config.cxl_expander_ddr5(),
                           name=f"oc-cxl{i}", ctx=ctx)
        port = Link(config.cxl_port(), name=f"oc-port{i}", ctx=ctx)
        tiers.append(Tier(name=f"cxl{i}",
                          path=AccessPath(device=dev, links=(port,)),
                          capacity_pages=cxl_pages))
    pool = TieredBufferPool(
        tiers=tiers, backing=None,
        placement=StaticPolicy(lambda p: 1 + ((p // stripe_pages) & 1)),
        page_size=PAGE_SIZE, ctx=ctx)
    return ScaleUpEngine(pool, name="perf-oltp-contended")


def _oltp_contended_builder(scale: float) -> tuple[ScaleUpEngine, list]:
    """Eight YCSB-B point-traffic sessions over two shared expanders.

    The transactional twin of the scan-contended bench: short mixed
    read/write runs (write boundaries cut segments every ~20 ops),
    per-op think time, and zipfian skew within each session's disjoint
    page range. Exercises the session scheduler's short-segment and
    think-bearing paths rather than the long pure-scan ladders.
    """
    num_sessions = 8
    pages_per = max(128, int(2_000 * scale))
    ops_per = max(256, int(2_200 * scale))
    total = num_sessions * pages_per
    engine = _two_expander_engine(total + 16, pages_per)
    engine.preload(np.arange(total, dtype=np.int64),
                   nbytes=PAGE_SIZE, is_scan=True)
    sessions = []
    for index in range(num_sessions):
        base = index * pages_per
        shifted = [
            Access(a.page_id + base, a.write, a.is_scan, a.nbytes,
                   a.think_ns)
            for a in ycsb_trace(YCSBConfig(
                mix="B", num_pages=pages_per, num_ops=ops_per,
                theta=0.9, seed=900 + index))
        ]
        sessions.append(ClientSession(f"ycsb-{index}", shifted))
    return engine, sessions


def _oltp_contended_runner(fast: bool, scale: float) -> tuple[float, str]:
    engine, sessions = _oltp_contended_builder(scale)
    _set_lane(engine, fast)
    start = time.perf_counter()
    report = engine.run_sessions(sessions, label="perf:oltp-contended",
                                 morsel_ops=64)
    wall_s = time.perf_counter() - start
    return wall_s, _digest_session_report(engine, report)


def _contended_runner(fast: bool, scale: float) -> tuple[float, str]:
    engine, sessions = _contended_builder(scale)
    _set_lane(engine, fast)
    start = time.perf_counter()
    # A 128-access quantum keeps scheduling fine-grained (each session
    # runs thousands of accesses) while letting the batched lane
    # amortise per-access bookkeeping across whole quanta.
    report = engine.run_sessions(sessions, label="perf:scan-contended",
                                 morsel_ops=128)
    wall_s = time.perf_counter() - start
    return wall_s, _digest_session_report(engine, report)


# -- trace-generation microbenchmark -----------------------------------------


def _trace_gen_params(scale: float) -> tuple[YCSBConfig, dict]:
    ycsb_config = YCSBConfig(
        mix="E",
        num_pages=max(64, int(20_000 * scale)),
        num_ops=max(256, int(8_000 * scale)),
        seed=17,
    )
    htap_params = dict(
        oltp_pages=max(64, int(4_000 * scale)),
        olap_pages=max(64, int(10_000 * scale)),
        oltp_ops=max(256, int(20_000 * scale)),
        olap_repeats=2,
        oltp_per_olap=4,
        seed=29,
    )
    return ycsb_config, htap_params


def _trace_gen_runner(fast: bool, scale: float) -> tuple[float, str]:
    """Time trace *generation*: columnar emitters vs scalar generators.

    Covers the whole pipeline — vectorised op-mix decode, insert
    cursors, scan expansion (YCSB mix E) and the block-aware HTAP
    interleave. The digest is over elementwise trace content, so both
    lanes must generate the identical access sequence.
    """
    ycsb_config, htap_params = _trace_gen_params(scale)
    if fast:
        start = time.perf_counter()
        ycsb_part = list(ycsb_blocks(ycsb_config))
        htap_part = list(mixed_htap_blocks(**htap_params))
        wall_s = time.perf_counter() - start
        digest = hashlib.sha256(
            (_digest_blocks(ycsb_part)
             + _digest_blocks(htap_part)).encode()
        ).hexdigest()
    else:
        start = time.perf_counter()
        ycsb_part = list(ycsb_trace(ycsb_config))
        htap_part = list(mixed_htap_trace(**htap_params))
        wall_s = time.perf_counter() - start
        digest = hashlib.sha256(
            (_digest_accesses(ycsb_part)
             + _digest_accesses(htap_part)).encode()
        ).hexdigest()
    return wall_s, digest


def _digest_table(table: TenantTable) -> str:
    """A content digest over every tenant attribute column.

    Raw little-endian column bytes, so both lanes must agree on every
    bit of every attribute of every tenant.
    """
    digest = hashlib.sha256()
    for name, column in table.columns().items():
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(column).tobytes())
    return digest.hexdigest()


def _tenant_gen_runner(fast: bool, scale: float) -> tuple[float, str]:
    """Time tenant *population* generation: columnar vs object-per-tenant.

    ``fast`` draws every attribute column-major straight into the SoA
    ``TenantTable``; ``compat`` materialises one ``CloudWorkload``
    object per tenant the way the pre-serving generator did (packing
    the objects back into columns happens outside the timed region).
    The digest covers the raw bytes of every column.
    """
    count = max(1_000, int(100_000 * scale))
    if fast:
        start = time.perf_counter()
        table = TenantTable.generate(count=count, num_ops=2_000, seed=7)
        wall_s = time.perf_counter() - start
    else:
        start = time.perf_counter()
        workloads = generate_population(count=count, num_ops=2_000, seed=7)
        wall_s = time.perf_counter() - start
        table = TenantTable.from_workloads(workloads)
    return wall_s, _digest_table(table)


MICROBENCHES: dict[str, BenchSpec] = {
    "scan": BenchSpec(
        name="scan",
        description="sequential scan, warm CXL-resident table (hit path)",
        min_speedup=10.0,
        runner=_engine_runner(_scan_builder, "scan"),
    ),
    "oltp": BenchSpec(
        name="oltp",
        description="zipfian YCSB-B point traffic, DRAM+CXL with live placement",
        min_speedup=5.0,
        runner=_engine_runner(_oltp_builder, "oltp"),
    ),
    "htap": BenchSpec(
        name="htap",
        description="per-op alternating OLTP/scan mix, object trace"
                    " (coalescer worst case, object path)",
        min_speedup=1.0,
        runner=_engine_runner(_htap_builder, "htap"),
    ),
    "htap-blocks": BenchSpec(
        name="htap-blocks",
        description="per-op alternating OLTP/scan mix, columnar blocks"
                    " (coalescer worst case, block path)",
        min_speedup=5.0,
        runner=_engine_runner(_htap_blocks_builder, "htap-blocks"),
    ),
    "fault-storm": BenchSpec(
        name="fault-storm",
        description=("cold-scan fault storm: bulk fault resolution, "
                     "eviction/demotion cascades, dirty writebacks"),
        min_speedup=2.0,
        runner=_engine_runner(_fault_storm_builder, "fault-storm"),
    ),
    "scan-contended": BenchSpec(
        name="scan-contended",
        description="8 concurrent scan sessions contending for one"
                    " expander (session scheduler hot path)",
        min_speedup=8.0,
        runner=_contended_runner,
    ),
    "oltp-contended": BenchSpec(
        name="oltp-contended",
        description="8 mixed YCSB-B sessions striped over two expanders"
                    " (scheduler short-segment / think-bearing path)",
        min_speedup=3.0,
        runner=_oltp_contended_runner,
    ),
    "trace-gen": BenchSpec(
        name="trace-gen",
        description="workload generation: columnar block emitters vs"
                    " scalar per-Access generators",
        min_speedup=3.0,
        runner=_trace_gen_runner,
    ),
    "tenant-gen": BenchSpec(
        name="tenant-gen",
        description="tenant population generation: columnar SoA draw"
                    " vs object-per-tenant materialisation",
        min_speedup=10.0,
        runner=_tenant_gen_runner,
    ),
}


def run_microbench(name: str, fast: bool,
                   scale: float = 1.0) -> tuple[float, str]:
    """Run one microbenchmark in one lane.

    Returns ``(wall_seconds, sim_digest)`` where the digest covers
    everything the lane computed (simulated run state for engine
    benches, elementwise trace content for generation benches).
    """
    spec = MICROBENCHES.get(name)
    if spec is None:
        raise ConfigError(
            f"unknown microbenchmark {name!r};"
            f" known: {', '.join(sorted(MICROBENCHES))}"
        )
    return spec.runner(fast, scale)
